"""Parameter sweeps: where the guarantees break.

The paper's experiments sit at one operating point; a downstream user
wants to know the *envelope*: as cross traffic grows, when does PGOS stop
admitting the workload, and how do attainment and fairness degrade for
each algorithm before that?  :func:`sweep_cross_traffic` answers both,
and is the engine behind ``benchmarks/bench_sweep.py``.

Every sweep is built from *pure per-point functions*
(:func:`cross_traffic_point`, :func:`measurement_noise_point`) whose RNG
seeds are derived from the point's own identity via :func:`point_seed`
rather than threaded through as one shared scalar.  Points are therefore
order-independent: ``repro.runner`` can fan them out across worker
processes and reassemble bit-identical results to the serial loops here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.apps.smartpointer import (
    BOND1_MBPS,
    make_scheduler,
    smartpointer_streams,
)
from repro.baselines.optsched import OptSchedScheduler
from repro.core.admission import AdmissionController
from repro.harness.experiment import run_schedule_experiment
from repro.harness.metrics import fraction_of_time_at_least
from repro.monitoring.cdf import EmpiricalCDF
from repro.network.emulab import make_figure8_testbed


def point_seed(base_seed: int, label: str) -> int:
    """Derive an order-independent RNG seed for one sweep point.

    Mixes the sweep's base seed with the point's identity label through
    SHA-256 (stable across processes — unlike Python's randomized
    ``hash()``), so each point's realization depends only on *what* it
    is, never on where in the sweep — or on which worker — it ran.
    """
    digest = hashlib.sha256(
        f"{base_seed}|{label}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class SweepPoint:
    """Results at one cross-traffic intensity."""

    scale: float
    admitted: bool
    suggested_probability: float | None
    #: per algorithm: fraction of time Bond1 received its required rate
    attainment: dict[str, float] = field(default_factory=dict)
    #: per algorithm: aggregate mean throughput (work conservation check)
    total_mbps: dict[str, float] = field(default_factory=dict)


def cross_traffic_point(
    scale: float,
    algorithms: Sequence[str] = ("MSFQ", "PGOS"),
    seed: int = 7,
    duration: float = 90.0,
    dt: float = 0.1,
    warmup_intervals: int = 200,
) -> SweepPoint:
    """One cross-traffic intensity, as a pure spec->result function.

    The realization's seed is :func:`point_seed`-derived from
    ``(seed, scale)``, so this point computes identically whether it
    runs inside :func:`sweep_cross_traffic`'s serial loop or fanned out
    to a ``repro.runner`` worker.
    """
    if scale < 0:
        raise ConfigurationError(f"scale must be >= 0, got {scale}")
    realization_seed = point_seed(seed, f"xtraffic/{scale:.6g}")
    testbed = make_figure8_testbed(xtraffic_scale=scale)
    realization = testbed.realize(
        seed=realization_seed, duration=duration, dt=dt
    )
    cdfs = {
        p: EmpiricalCDF(
            realization.available[p].window(0, warmup_intervals)
        )
        for p in realization.path_names()
    }
    decision = AdmissionController(tw=1.0).try_admit(
        smartpointer_streams(), cdfs
    )
    attainment: dict[str, float] = {}
    totals: dict[str, float] = {}
    for name in algorithms:
        scheduler = make_scheduler(name)
        if isinstance(scheduler, OptSchedScheduler):
            scheduler.set_oracle(
                {
                    p: realization.available[p].available_mbps
                    for p in realization.path_names()
                }
            )
        result = run_schedule_experiment(
            scheduler,
            realization,
            smartpointer_streams(),
            warmup_intervals=warmup_intervals,
        )
        bond1 = result.stream_series("Bond1")
        attainment[name] = fraction_of_time_at_least(
            bond1, BOND1_MBPS * 0.999
        )
        totals[name] = float(result.total_series().mean())
    return SweepPoint(
        scale=scale,
        admitted=decision.admitted,
        suggested_probability=decision.suggested_probability,
        attainment=attainment,
        total_mbps=totals,
    )


def sweep_cross_traffic(
    scales: Sequence[float],
    algorithms: Sequence[str] = ("MSFQ", "PGOS"),
    seed: int = 7,
    duration: float = 90.0,
    dt: float = 0.1,
    warmup_intervals: int = 200,
) -> list[SweepPoint]:
    """Sweep cross-traffic intensity over the SmartPointer workload.

    For each scale: (1) check admission of the paper's stream set against
    a monitored probe of the scaled testbed; (2) run each algorithm and
    record Bond1's guarantee attainment and the aggregate throughput.
    """
    if not scales:
        raise ConfigurationError("scales must be non-empty")
    return [
        cross_traffic_point(
            scale,
            algorithms=algorithms,
            seed=seed,
            duration=duration,
            dt=dt,
            warmup_intervals=warmup_intervals,
        )
        for scale in scales
    ]


@dataclass(frozen=True)
class NoisePoint:
    """Guarantee attainment at one probing-quality level."""

    label: str
    attainment: float


#: The probing-quality sweep's critical demand on the steady-vs-wild path
#: pair: high enough that the steady path's guarantee is < 1.0, so a
#: smoothed (dip-blind) view of the wild path can win the placement.
DECEPTIVE_CRITICAL_MBPS = 47.0


def measurement_noise_point(
    label: str,
    probe: Optional[object],
    seed: int = 7,
    duration: float = 90.0,
    dt: float = 0.1,
    warmup_intervals: int = 200,
) -> NoisePoint:
    """One probing-quality level, as a pure spec->result function.

    The *realization* seed is the sweep's base seed — the deceptive
    steady-vs-wild scenario is the controlled variable every point
    shares — but the probe's own noise RNG is :func:`point_seed`-derived
    from the point's label, so noisy-probe points are order- and
    worker-independent rather than inheriting whatever seed the
    realization happened to carry.
    """
    from repro.core.spec import StreamSpec

    testbed = make_figure8_testbed(profile_a="steady", profile_b="wild")
    realization = testbed.realize(seed=seed, duration=duration, dt=dt)
    streams = [
        StreamSpec(
            name="crit",
            required_mbps=DECEPTIVE_CRITICAL_MBPS,
            probability=0.95,
        ),
        StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
    ]
    result = run_schedule_experiment(
        make_scheduler("PGOS"),
        realization,
        streams,
        warmup_intervals=warmup_intervals,
        probe=probe,
        probe_seed=point_seed(seed, f"noise/{label}"),
    )
    return NoisePoint(
        label=label,
        attainment=fraction_of_time_at_least(
            result.stream_series("crit"),
            DECEPTIVE_CRITICAL_MBPS * 0.999,
        ),
    )


def sweep_measurement_noise(
    probes: Sequence[tuple[str, object]],
    seed: int = 7,
    duration: float = 90.0,
    dt: float = 0.1,
    warmup_intervals: int = 200,
) -> list[NoisePoint]:
    """Sweep probing quality: how wrong can monitoring be before PGOS slips?

    ``probes`` is a list of ``(label, ProbingEstimator-or-None)`` pairs;
    each point reports the critical stream's guarantee attainment on the
    *deceptive* steady-vs-wild path pair (42 Mbps @ 95 %).  That scenario
    is where probing quality matters: multiplicative noise and bias
    preserve the relative ordering of the two paths' distributions (and
    PGOS shrugs them off), but probe *smoothing* smears the wild path's
    short dips away and can fool the percentile placement onto it.
    """
    if not probes:
        raise ConfigurationError("probes must be non-empty")
    return [
        measurement_noise_point(
            label,
            probe,
            seed=seed,
            duration=duration,
            dt=dt,
            warmup_intervals=warmup_intervals,
        )
        for label, probe in probes
    ]


def admission_crossover(points: Sequence[SweepPoint]) -> float | None:
    """Smallest swept scale at which admission fails (None if it never does)."""
    for point in sorted(points, key=lambda p: p.scale):
        if not point.admitted:
            return point.scale
    return None


def render_sweep(points: Sequence[SweepPoint]) -> str:
    """ASCII table of a sweep (one row per intensity)."""
    from repro.harness.report import format_table

    algorithms = sorted(
        {name for point in points for name in point.attainment}
    )
    headers = ["x-traffic scale", "admitted"] + [
        f"{a} attainment" for a in algorithms
    ] + [f"{a} total Mbps" for a in algorithms]
    rows = []
    for point in sorted(points, key=lambda p: p.scale):
        row: list[object] = [f"{point.scale:.2f}", str(point.admitted)]
        row += [point.attainment.get(a) for a in algorithms]
        row += [point.total_mbps.get(a) for a in algorithms]
        rows.append(row)
    return format_table(headers, rows)
