"""Figure 10: throughput CDFs of the four algorithms.

The CDF view of the same SmartPointer runs: under PGOS the critical
streams' CDFs are near-vertical steps at their required bandwidths (low
variance), whereas under WFQ/MSFQ they are smeared.  Key in-text claims:

* "PGOS provides the two critical streams at least 99.5% of their
  required bandwidth for 95% of the time" — Bond1's 5th-percentile
  throughput is 22.068 of 22.148 Mbps;
* "MSFQ can only provide about 87% of their required bandwidth for 95%
  of the time" — 19.248 Mbps for Bond1.
"""

from __future__ import annotations

from repro.apps.smartpointer import BOND1_MBPS
from repro.harness.figures.base import FigureResult
from repro.harness.figures.smartpointer_runs import (
    ALGORITHMS,
    params_for,
    smartpointer_results,
)
from repro.harness.metrics import bandwidth_at_time_fraction
from repro.harness.report import cdf_table


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 7


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Reproduce Figure 10 (a-d)."""
    duration, warmup = params_for(fast)
    results = smartpointer_results(seed, duration, warmup_intervals=warmup)

    result = FigureResult(
        figure_id="fig10",
        title="Throughput CDF Comparison of Four Algorithms",
    )
    for alg in ALGORITHMS:
        res = results[alg]
        series = {}
        for stream in ("Atom", "Bond1", "Bond2"):
            if alg in ("PGOS", "OptSched"):
                for path in res.paths_used(stream):
                    series[f"{stream}-P{path}"] = res.substream_series(
                        stream, path
                    )
            else:
                series[stream] = res.stream_series(stream)
        result.add_section(f"{alg} throughput quantiles (Mbps)", cdf_table(series))

    pgos_b1 = bandwidth_at_time_fraction(
        results["PGOS"].stream_series("Bond1"), 0.95
    )
    msfq_b1 = bandwidth_at_time_fraction(
        results["MSFQ"].stream_series("Bond1"), 0.95
    )
    result.measured = {
        "pgos_bond1_p95_time_mbps": pgos_b1,
        "msfq_bond1_p95_time_mbps": msfq_b1,
        "pgos_bond1_attainment_p95": pgos_b1 / BOND1_MBPS,
        "msfq_bond1_attainment_p95": msfq_b1 / BOND1_MBPS,
    }
    result.paper = {
        "pgos_bond1_p95_time_mbps": 22.068,
        "msfq_bond1_p95_time_mbps": 19.248,
        "pgos_bond1_attainment_p95": 0.995,
        "msfq_bond1_attainment_p95": 0.87,
    }
    return result
