"""Sweep "figure": the guarantee envelope over cross-traffic intensity
and monitoring quality.

Not a paper figure — the operating envelope a downstream adopter needs:
where admission crosses over as shared load grows, and how much probing
error the statistical machinery tolerates.
"""

from __future__ import annotations

from repro.harness.figures.base import FigureResult
from repro.harness.report import format_table
from repro.harness.sweep import (
    admission_crossover,
    render_sweep,
    sweep_cross_traffic,
    sweep_measurement_noise,
)


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 7


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Run the load and measurement-noise sweeps."""
    duration = 50.0 if fast else 90.0
    warmup = 150 if fast else 200

    result = FigureResult(
        figure_id="sweep",
        title="Guarantee envelope: load and monitoring-quality sweeps",
    )
    points = sweep_cross_traffic(
        scales=(0.6, 1.0, 1.4, 1.8),
        seed=seed,
        duration=duration,
        warmup_intervals=warmup,
    )
    result.add_section("cross-traffic intensity sweep", render_sweep(points))

    from repro.monitoring.probe import ProbingEstimator

    noise_points = sweep_measurement_noise(
        [
            ("perfect", None),
            ("noise cv 0.15", ProbingEstimator(noise_cv=0.15)),
            ("bias 1.5x", ProbingEstimator(noise_cv=0.0, bias=1.5)),
            (
                "smoothing 10 s",
                ProbingEstimator(noise_cv=0.0, smoothing_intervals=100),
            ),
        ],
        seed=seed,
        duration=duration,
        warmup_intervals=warmup,
    )
    result.add_section(
        "probing-quality sweep (PGOS, deceptive steady-vs-wild paths, "
        "47 Mbps @ 95%)",
        format_table(
            ["probe", "attainment"],
            [(p.label, p.attainment) for p in noise_points],
        ),
    )

    crossover = admission_crossover(points)
    result.measured = {
        "admission_crossover_scale": (
            crossover if crossover is not None else float("nan")
        ),
        "pgos_attainment_at_nominal_load": next(
            p.attainment["PGOS"] for p in points if p.scale == 1.0
        ),
        "attainment_with_15pct_probe_noise": noise_points[1].attainment,
        "attainment_with_smoothed_probes": noise_points[3].attainment,
    }
    result.paper = {key: None for key in result.measured}
    result.notes = [
        "reproduction-only analysis; the paper evaluates one operating "
        "point per experiment",
    ]
    return result
