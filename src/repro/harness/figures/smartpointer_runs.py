"""Shared SmartPointer runs for Figures 9, 10, and 11.

The three figures are three views of the same experiment (time series,
CDFs, and summary bars), so the four algorithm runs are computed once and
memoized on their parameters.
"""

from __future__ import annotations

from functools import lru_cache

from repro.apps.smartpointer import run_smartpointer
from repro.harness.experiment import ExperimentResult

#: The algorithm lineup of Figures 9-11, in the paper's panel order.
ALGORITHMS = ("WFQ", "MSFQ", "PGOS", "OptSched")


@lru_cache(maxsize=8)
def smartpointer_results(
    seed: int, duration: float, dt: float = 0.1, warmup_intervals: int = 300
) -> dict[str, ExperimentResult]:
    """Run all four algorithms on the same realization (memoized)."""
    return {
        alg: run_smartpointer(
            alg,
            seed=seed,
            duration=duration,
            dt=dt,
            warmup_intervals=warmup_intervals,
        )
        for alg in ALGORITHMS
    }


def params_for(fast: bool) -> tuple[float, int]:
    """(duration, warmup_intervals) for normal vs fast mode."""
    return (90.0, 200) if fast else (210.0, 300)
