"""Layered-video extension (the paper's third application).

The HPDC paper defers the MPEG-4 FGS experiments to its technical report
but states the outcome: IQ-Paths improves the smoothness of layered video
playback by protecting the base layer with a statistical guarantee while
enhancement data fills remaining bandwidth.  This experiment reproduces
that *shape*: base-layer stalls and quality variance under PGOS vs MSFQ
vs single-path WFQ.
"""

from __future__ import annotations

from repro.apps.video import BASE_LAYER_MBPS, playback_quality, run_video
from repro.harness.figures.base import FigureResult
from repro.harness.metrics import summarize_stream
from repro.harness.report import format_table

ALGORITHMS = ("WFQ", "MSFQ", "PGOS")


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 23


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Run the layered-video comparison."""
    duration = 60.0 if fast else 150.0
    warmup = 200 if fast else 300

    result = FigureResult(
        figure_id="video",
        title="Layered video streaming (tech-report extension)",
    )
    rows = []
    qualities = {}
    for alg in ALGORITHMS:
        res = run_video(
            alg, seed=seed, duration=duration, warmup_intervals=warmup
        )
        quality = playback_quality(res)
        qualities[alg] = quality
        base = summarize_stream(
            res.stream_series("base"), "base", alg, BASE_LAYER_MBPS
        )
        rows.append(
            (
                alg,
                base.mean_mbps,
                base.std_mbps,
                quality.stall_fraction,
                quality.mean_quality,
                quality.quality_std,
            )
        )
    result.add_section(
        "base layer + playback quality",
        format_table(
            [
                "algorithm",
                "base mean",
                "base std",
                "stall frac",
                "quality mean",
                "quality std",
            ],
            rows,
        ),
    )
    result.measured = {
        "pgos_stall_fraction": qualities["PGOS"].stall_fraction,
        "msfq_stall_fraction": qualities["MSFQ"].stall_fraction,
        "pgos_quality_std": qualities["PGOS"].quality_std,
        "msfq_quality_std": qualities["MSFQ"].quality_std,
    }
    result.paper = {key: None for key in result.measured}
    result.notes = [
        "the HPDC paper defers quantitative video results to its tech "
        "report; the claim under test is qualitative (base layer protected "
        "under PGOS, smoother playback)",
    ]
    return result
