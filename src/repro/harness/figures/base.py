"""Common result container for figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class FigureResult:
    """A reproduced figure: rendered tables plus key scalar comparisons.

    Attributes
    ----------
    figure_id:
        ``"fig9"`` etc., matching the paper's numbering.
    title:
        The figure's caption (abbreviated).
    sections:
        Ordered ``(caption, rendered_text)`` blocks.
    measured:
        Key measured scalars, by name.
    paper:
        The paper-reported value for each key where the paper gives one
        (``None`` where the paper only shows a curve).
    notes:
        Free-form caveats (substitutions, calibration remarks).
    """

    figure_id: str
    title: str
    sections: list[tuple[str, str]] = field(default_factory=list)
    measured: dict[str, float] = field(default_factory=dict)
    paper: dict[str, Optional[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_section(self, caption: str, text: str) -> None:
        self.sections.append((caption, text))

    def comparison_rows(self) -> list[tuple[str, Optional[float], float]]:
        """(key, paper value, measured value) for every measured scalar."""
        return [
            (key, self.paper.get(key), value)
            for key, value in self.measured.items()
        ]

    def render(self) -> str:
        """Full human-readable report for this figure."""
        lines = [f"== {self.figure_id}: {self.title} ==", ""]
        for caption, text in self.sections:
            lines.append(f"-- {caption} --")
            lines.append(text)
            lines.append("")
        if self.measured:
            lines.append("-- paper vs measured --")
            from repro.harness.report import paper_vs_measured_table

            lines.append(
                paper_vs_measured_table(
                    [
                        (k, p if p is not None else "-", m)
                        for k, p, m in self.comparison_rows()
                    ]
                )
            )
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
