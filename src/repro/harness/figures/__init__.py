"""One module per paper figure.

Each exposes ``run(seed=CANONICAL_SEED, fast=False) -> FigureResult`` —
a *pure* function of its arguments (no hidden state beyond per-process
derived-value memoization), which is what lets ``repro.runner`` fan
figures out across worker processes and cache their results by content
hash.  The registry maps CLI/bench/runner names to those entry points;
:data:`CANONICAL_SEEDS` records the seed each figure's EXPERIMENTS.md
numbers were produced with.  ``fast=True`` shrinks durations for
CI-speed runs without changing the experiment's structure.
"""

from repro.harness.figures.base import FigureResult
from repro.harness.figures import (
    ablations,
    fig4,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    sweep_fig,
    video_ext,
)

#: Registry used by the CLI, the benchmark harness, and repro.runner.
FIGURES = {
    "fig4": fig4.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "ablations": ablations.run,
    "video": video_ext.run,
    "sweep": sweep_fig.run,
}

#: The seed behind each figure's recorded EXPERIMENTS.md numbers; the
#: runner's default suite pins these on its figure RunSpecs so runner
#: output is byte-identical to ``python -m repro.harness <figure>``.
CANONICAL_SEEDS = {
    "fig4": fig4.CANONICAL_SEED,
    "fig9": fig9.CANONICAL_SEED,
    "fig10": fig10.CANONICAL_SEED,
    "fig11": fig11.CANONICAL_SEED,
    "fig12": fig12.CANONICAL_SEED,
    "fig13": fig13.CANONICAL_SEED,
    "ablations": ablations.CANONICAL_SEED,
    "video": video_ext.CANONICAL_SEED,
    "sweep": sweep_fig.CANONICAL_SEED,
}

__all__ = ["FigureResult", "FIGURES", "CANONICAL_SEEDS"]
