"""One module per paper figure.

Each exposes ``run(seed=..., fast=False) -> FigureResult``; the registry
maps CLI/bench names to those entry points.  ``fast=True`` shrinks
durations for CI-speed runs without changing the experiment's structure.
"""

from repro.harness.figures.base import FigureResult
from repro.harness.figures import (
    ablations,
    fig4,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    sweep_fig,
    video_ext,
)

#: Registry used by the CLI and the benchmark harness.
FIGURES = {
    "fig4": fig4.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "ablations": ablations.run,
    "video": video_ext.run,
    "sweep": sweep_fig.run,
}

__all__ = ["FigureResult", "FIGURES"]
