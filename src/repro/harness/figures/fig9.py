"""Figure 9: SmartPointer throughput time series under four algorithms.

Panels (a) WFQ on a single path, (b) MSFQ over two paths, (c) PGOS,
(d) OptSched.  The claims verified here:

* WFQ/MSFQ cannot pin the critical streams' absolute throughput — Atom
  and Bond1 fluctuate with the paths' available bandwidth;
* PGOS delivers the two critical streams at stable required rates, and
  splits Bond2 into two sub-streams (Bond2-PathA, Bond2-PathB) whose sum
  matches MSFQ's Bond2 average ("not compromised");
* PGOS tracks the offline OptSched oracle closely.
"""

from __future__ import annotations

from repro.apps.smartpointer import ATOM_MBPS, BOND1_MBPS
from repro.harness.figures.base import FigureResult
from repro.harness.figures.smartpointer_runs import (
    ALGORITHMS,
    params_for,
    smartpointer_results,
)
from repro.harness.report import format_table, series_block


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 7


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Reproduce Figure 9 (a-d)."""
    duration, warmup = params_for(fast)
    results = smartpointer_results(seed, duration, warmup_intervals=warmup)

    result = FigureResult(
        figure_id="fig9",
        title="Throughput Time Series Comparison of Four Algorithms",
    )
    for alg in ALGORITHMS:
        res = results[alg]
        blocks = []
        for stream in ("Atom", "Bond1", "Bond2"):
            if alg in ("PGOS", "OptSched"):
                for path in res.paths_used(stream):
                    blocks.append(
                        series_block(
                            f"{stream}-Path{path}",
                            res.substream_series(stream, path),
                        )
                    )
            else:
                blocks.append(series_block(stream, res.stream_series(stream)))
        result.add_section(f"{alg} throughput (Mbps)", "\n".join(blocks))

    rows = []
    for alg in ALGORITHMS:
        res = results[alg]
        atom = res.stream_series("Atom")
        bond1 = res.stream_series("Bond1")
        bond2 = res.stream_series("Bond2")
        rows.append(
            (
                alg,
                float(atom.mean()),
                float(atom.std()),
                float(bond1.mean()),
                float(bond1.std()),
                float(bond2.mean()),
            )
        )
    result.add_section(
        "stream means/stds (targets: Atom 3.249, Bond1 22.148)",
        format_table(
            [
                "algorithm",
                "Atom mean",
                "Atom std",
                "Bond1 mean",
                "Bond1 std",
                "Bond2 mean",
            ],
            rows,
        ),
    )

    pgos = results["PGOS"]
    msfq = results["MSFQ"]
    result.measured = {
        "pgos_atom_mean": float(pgos.stream_series("Atom").mean()),
        "pgos_bond1_mean": float(pgos.stream_series("Bond1").mean()),
        "pgos_bond1_std": float(pgos.stream_series("Bond1").std()),
        "msfq_bond1_std": float(msfq.stream_series("Bond1").std()),
        "bond2_mean_ratio_pgos_over_msfq": float(
            pgos.stream_series("Bond2").mean()
            / max(msfq.stream_series("Bond2").mean(), 1e-9)
        ),
        "pgos_bond2_paths_used": float(len(pgos.paths_used("Bond2"))),
    }
    result.paper = {
        "pgos_atom_mean": ATOM_MBPS,
        "pgos_bond1_mean": BOND1_MBPS,
        "pgos_bond1_std": None,
        "msfq_bond1_std": None,
        # "the average throughput of stream Bond2 is almost the same as
        # that achieved by MSFQ"
        "bond2_mean_ratio_pgos_over_msfq": 1.0,
        # Bond2 is divided into Bond2-PathA and Bond2-PathB.
        "pgos_bond2_paths_used": 2.0,
    }
    return result
