"""Figure 4: bandwidth prediction — mean predictors vs percentile prediction.

The paper analyzes >8 GB of NLANR header traces and reports that common
average-bandwidth predictors (MA, EWMA, SMA) show roughly 20 % mean
relative error while its percentile prediction method fails less than 4 %
of the time, across bandwidth measurement windows from 0.1 s to 1.0 s.

We sweep the same measurement windows over synthetic NLANR-like
available-bandwidth traces (both bottleneck profiles of the Figure-8
testbed), score the same predictor lineup, and report both curves.
"""

from __future__ import annotations

import numpy as np

from repro.harness.figures.base import FigureResult
from repro.harness.report import format_table
from repro.monitoring.errors import (
    error_exceedance_fraction,
    mean_relative_error,
    percentile_prediction_failure_rate,
)
from repro.monitoring.predictors import default_average_predictors
from repro.network.emulab import make_figure8_testbed
from repro.traces.io import Trace
from repro.traces.stats import fraction_steady, mean_steady_period

#: Measurement windows swept on the figure's x axis (seconds).
WINDOWS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _trace_pool(seed: int, duration: float, dt: float) -> list[Trace]:
    """Availability traces of both testbed paths for several seeds."""
    traces = []
    for offset in range(2):
        testbed = make_figure8_testbed()
        realization = testbed.realize(
            seed=seed + offset, duration=duration, dt=dt
        )
        for p in realization.path_names():
            traces.append(
                Trace(
                    realization.available[p].available_mbps,
                    dt,
                    name=f"{p}/seed{seed + offset}",
                )
            )
    return traces


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 3


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Reproduce Figure 4 (and the Section-4 in-text error claims)."""
    duration = 600.0 if fast else 2400.0
    dt = 0.1
    traces = _trace_pool(seed, duration, dt)

    rows = []
    mean_curve = []
    fail_curve = []
    for window in WINDOWS:
        window = round(window, 1)
        errors = []
        failures = []
        for trace in traces:
            resampled = trace.resample(window)
            series = resampled.rates
            history = min(500, max(10, series.size // 3))
            horizon = 5
            if series.size < history + horizon + 10:
                continue
            errors.extend(
                mean_relative_error(pred, series)
                for pred in default_average_predictors()
            )
            failures.append(
                percentile_prediction_failure_rate(
                    series, q=10.0, history=history, horizon=horizon
                )
            )
        mean_err = float(np.mean(errors))
        fail = float(np.mean(failures))
        mean_curve.append(mean_err)
        fail_curve.append(fail)
        rows.append((f"{window:.1f}", mean_err, fail))

    # The in-text [34] comparison: fraction of mean predictions off by >20 %.
    exceed20 = float(
        np.mean(
            [
                error_exceedance_fraction(pred, trace.rates, 0.2)
                for trace in traces
                for pred in default_average_predictors()
            ]
        )
    )

    # Zhang et al.'s steadiness framing, which the paper adopts: how long
    # does bandwidth stay within a max/min factor of rho?
    steadiness_rows = []
    for rho in (1.2, 1.5, 2.0):
        fractions = [
            fraction_steady(trace.rates, rho=rho, horizon=10)
            for trace in traces
        ]
        periods = [
            mean_steady_period(trace.rates, rho=rho) for trace in traces
        ]
        steadiness_rows.append(
            (f"{rho:.1f}", float(np.mean(fractions)), float(np.mean(periods)))
        )

    result = FigureResult(
        figure_id="fig4",
        title="Bandwidth Prediction (mean error vs percentile failure rate)",
    )
    result.add_section(
        "prediction error vs measurement window",
        format_table(
            ["BW window (s)", "mean predict error", "percentile failure rate"],
            rows,
        ),
    )
    result.add_section(
        "bandwidth steadiness (Zhang et al. framing, 0.1 s samples)",
        format_table(
            [
                "rho (max/min)",
                "frac of 1s windows steady",
                "mean steady period (samples)",
            ],
            steadiness_rows,
        ),
    )
    result.measured = {
        "mean_prediction_error_avg": float(np.mean(mean_curve)),
        "percentile_failure_rate_max": float(np.max(fail_curve)),
        "percentile_failure_rate_avg": float(np.mean(fail_curve)),
        "fraction_mean_errors_above_20pct": exceed20,
    }
    result.paper = {
        "mean_prediction_error_avg": 0.20,
        "percentile_failure_rate_max": 0.04,
        "percentile_failure_rate_avg": None,
        "fraction_mean_errors_above_20pct": 0.40,
    }
    result.notes = [
        "traces are synthetic NLANR-like profiles (see DESIGN.md): the "
        "claim under test is the gap between mean prediction error and "
        "percentile-prediction failure, not absolute trace statistics",
        "percentile failures score the Lemma-1 guarantee semantics: the "
        "aggregate bandwidth over the prediction horizon vs the historic "
        "10th percentile",
    ]
    return result
