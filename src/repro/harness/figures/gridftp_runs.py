"""Shared GridFTP runs for Figures 12 and 13 (memoized)."""

from __future__ import annotations

from functools import lru_cache

from repro.apps.gridftp import run_gridftp
from repro.harness.experiment import ExperimentResult

#: Transport lineup of Figures 12/13.
TRANSPORTS = ("GridFTP", "IQPG")


@lru_cache(maxsize=8)
def gridftp_results(
    seed: int, duration: float, dt: float = 0.1, warmup_intervals: int = 300
) -> dict[str, ExperimentResult]:
    """Run both transports on the same realization (memoized)."""
    return {
        name: run_gridftp(
            name,
            seed=seed,
            duration=duration,
            dt=dt,
            warmup_intervals=warmup_intervals,
        )
        for name in TRANSPORTS
    }


def params_for(fast: bool) -> tuple[float, int]:
    """(duration, warmup_intervals) for normal vs fast mode."""
    return (90.0, 200) if fast else (210.0, 300)
