"""Figure 11: per-stream summary bars (target / mean / 95 %-time /
99 %-time throughput and standard deviation) for Atom and Bond1 under
Non-Overlay FQ, MSFQ, and PGOS — plus the in-text frame-jitter numbers
(2.0 ms under MSFQ vs 1.4 ms under PGOS).
"""

from __future__ import annotations

from repro.apps.smartpointer import (
    ATOM_MBPS,
    BOND1_MBPS,
    FRAME_RATE,
    frame_bytes,
)
from repro.harness.figures.base import FigureResult
from repro.harness.figures.smartpointer_runs import params_for, smartpointer_results
from repro.harness.metrics import frame_jitter_ms, summarize_stream
from repro.harness.report import format_table

#: Figure 11 compares three on-line algorithms (OptSched is Figure 9/10 only).
FIG11_ALGORITHMS = ("WFQ", "MSFQ", "PGOS")


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 7


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Reproduce Figure 11 (a: Atom, b: Bond1) plus the jitter claim."""
    duration, warmup = params_for(fast)
    results = smartpointer_results(seed, duration, warmup_intervals=warmup)

    result = FigureResult(
        figure_id="fig11",
        title="Throughput Achieved by Three Algorithms (target, mean, "
        "95%/99% of the time, std dev)",
    )
    targets = {"Atom": ATOM_MBPS, "Bond1": BOND1_MBPS}
    for stream, target in targets.items():
        rows = []
        for alg in FIG11_ALGORITHMS:
            summary = summarize_stream(
                results[alg].stream_series(stream), stream, alg, target
            )
            rows.append(
                (
                    alg,
                    target,
                    summary.mean_mbps,
                    summary.p95_time_mbps,
                    summary.p99_time_mbps,
                    summary.std_mbps,
                )
            )
        result.add_section(
            f"stream {stream}",
            format_table(
                ["algorithm", "target", "mean", "95% time", "99% time", "std"],
                rows,
            ),
        )

    # Frame jitter of the critical visualization stream (Bond1 carries the
    # bulk of each frame): mean |inter-delivery - 40 ms| in milliseconds.
    fb = frame_bytes(BOND1_MBPS)
    jitter = {
        alg: frame_jitter_ms(
            results[alg].stream_series("Bond1"),
            results[alg].dt,
            fb,
            FRAME_RATE,
        )
        for alg in FIG11_ALGORITHMS
    }
    result.add_section(
        "application frame jitter (ms)",
        format_table(
            ["algorithm", "frame jitter (ms)"],
            [(alg, jitter[alg]) for alg in FIG11_ALGORITHMS],
        ),
    )

    pgos_atom = summarize_stream(
        results["PGOS"].stream_series("Atom"), "Atom", "PGOS", ATOM_MBPS
    )
    pgos_bond1 = summarize_stream(
        results["PGOS"].stream_series("Bond1"), "Bond1", "PGOS", BOND1_MBPS
    )
    msfq_bond1 = summarize_stream(
        results["MSFQ"].stream_series("Bond1"), "Bond1", "MSFQ", BOND1_MBPS
    )
    result.measured = {
        "pgos_atom_p95_time": pgos_atom.p95_time_mbps,
        "pgos_bond1_p95_time": pgos_bond1.p95_time_mbps,
        "msfq_bond1_p95_time": msfq_bond1.p95_time_mbps,
        "pgos_bond1_std": pgos_bond1.std_mbps,
        "msfq_bond1_std": msfq_bond1.std_mbps,
        "msfq_jitter_ms": jitter["MSFQ"],
        "pgos_jitter_ms": jitter["PGOS"],
    }
    result.paper = {
        "pgos_atom_p95_time": ATOM_MBPS * 0.995,
        "pgos_bond1_p95_time": 22.068,
        "msfq_bond1_p95_time": 19.248,
        "pgos_bond1_std": None,
        "msfq_bond1_std": None,
        "msfq_jitter_ms": 2.0,
        "pgos_jitter_ms": 1.4,
    }
    result.notes = [
        "jitter model: deviation of frame completion spacing from the 40 ms "
        "period, reconstructed from interval throughput (see "
        "repro.harness.metrics.frame_jitter_ms); the ordering "
        "(PGOS < MSFQ) is the claim under test",
    ]
    return result
