"""Figure 12: GridFTP vs IQPG-GridFTP throughput time series.

Claims verified:

* IQPG-GridFTP delivers DT1 and DT2 their required bandwidths (25
  records/second) consistently while DT3 is transferred as fast as the
  leftover bandwidth allows;
* standard GridFTP's blocked layout makes all data types compete, so DT1
  fluctuates: paper reports DT1 mean 33.94 Mbps with std 1.4297 under
  GridFTP vs mean 34.55 Mbps with std 0.4040 under IQPG-GridFTP;
* under IQPG, DT3 is split across both paths (DT3-P1 / DT3-P2 curves).
"""

from __future__ import annotations

from repro.apps.gridftp import records_per_second
from repro.harness.figures.base import FigureResult
from repro.harness.figures.gridftp_runs import TRANSPORTS, gridftp_results, params_for
from repro.harness.report import format_table, series_block


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 11


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Reproduce Figure 12 (a-b)."""
    duration, warmup = params_for(fast)
    results = gridftp_results(seed, duration, warmup_intervals=warmup)

    result = FigureResult(
        figure_id="fig12",
        title="Throughput Achieved by GridFTP and IQPG-GridFTP",
    )
    for name in TRANSPORTS:
        res = results[name]
        blocks = []
        for stream in ("DT1", "DT2", "DT3"):
            if name == "IQPG" and stream == "DT3":
                for path in res.paths_used(stream):
                    blocks.append(
                        series_block(
                            f"DT3-P{path}", res.substream_series(stream, path)
                        )
                    )
            blocks.append(
                series_block(
                    f"{stream}-All" if stream == "DT3" else stream,
                    res.stream_series(stream),
                )
            )
        result.add_section(f"{res.scheduler_name} throughput (Mbps)", "\n".join(blocks))

    rows = []
    for name in TRANSPORTS:
        res = results[name]
        dt1 = res.stream_series("DT1")
        dt2 = res.stream_series("DT2")
        dt3 = res.stream_series("DT3")
        rows.append(
            (
                res.scheduler_name,
                float(dt1.mean()),
                float(dt1.std()),
                float(dt2.mean()),
                float(dt2.std()),
                float(dt3.mean()),
                records_per_second(res, "DT1"),
            )
        )
    result.add_section(
        "summary (targets: DT1 34.56, DT2 25.60 Mbps; 25 records/s)",
        format_table(
            [
                "transport",
                "DT1 mean",
                "DT1 std",
                "DT2 mean",
                "DT2 std",
                "DT3 mean",
                "DT1 rec/s",
            ],
            rows,
        ),
    )

    gftp = results["GridFTP"]
    iqpg = results["IQPG"]
    result.measured = {
        "gridftp_dt1_mean": float(gftp.stream_series("DT1").mean()),
        "gridftp_dt1_std": float(gftp.stream_series("DT1").std()),
        "iqpg_dt1_mean": float(iqpg.stream_series("DT1").mean()),
        "iqpg_dt1_std": float(iqpg.stream_series("DT1").std()),
        "iqpg_dt1_records_per_s": records_per_second(iqpg, "DT1"),
        "iqpg_dt2_records_per_s": records_per_second(iqpg, "DT2"),
        "iqpg_dt3_paths_used": float(len(iqpg.paths_used("DT3"))),
    }
    result.paper = {
        "gridftp_dt1_mean": 33.94,
        "gridftp_dt1_std": 1.4297,
        "iqpg_dt1_mean": 34.55,
        "iqpg_dt1_std": 0.4040,
        "iqpg_dt1_records_per_s": 25.0,
        "iqpg_dt2_records_per_s": 25.0,
        "iqpg_dt3_paths_used": 2.0,
    }
    result.notes = [
        "targets DT1 34.56 / DT2 25.60 Mbps derive from 25 records/s with "
        "decimal-KB component sizes (the paper's own in-text means imply "
        "decimal KB)",
    ]
    return result
