"""Figure 13: GridFTP vs IQPG-GridFTP throughput CDFs.

The CDF view of the Figure-12 runs: under IQPG-GridFTP the DT1 and DT2
curves are near-vertical at their required rates while DT3 absorbs all
the bandwidth variation; under standard GridFTP every component's CDF is
smeared by the competition.
"""

from __future__ import annotations

from repro.apps.gridftp import DT1_MBPS, DT2_MBPS
from repro.harness.figures.base import FigureResult
from repro.harness.figures.gridftp_runs import TRANSPORTS, gridftp_results, params_for
from repro.harness.metrics import bandwidth_at_time_fraction
from repro.harness.report import cdf_table


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 11


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Reproduce Figure 13 (a-b)."""
    duration, warmup = params_for(fast)
    results = gridftp_results(seed, duration, warmup_intervals=warmup)

    result = FigureResult(
        figure_id="fig13",
        title="GridFTP and IQPG-GridFTP Throughput CDF Comparison",
    )
    for name in TRANSPORTS:
        res = results[name]
        series = {
            "DT1": res.stream_series("DT1"),
            "DT2": res.stream_series("DT2"),
            "DT3-All": res.stream_series("DT3"),
        }
        if name == "IQPG":
            for path in res.paths_used("DT3"):
                series[f"DT3-P{path}"] = res.substream_series("DT3", path)
        result.add_section(
            f"{res.scheduler_name} throughput quantiles (Mbps)",
            cdf_table(series),
        )

    gftp = results["GridFTP"]
    iqpg = results["IQPG"]
    result.measured = {
        "iqpg_dt1_p95_time": bandwidth_at_time_fraction(
            iqpg.stream_series("DT1"), 0.95
        ),
        "gridftp_dt1_p95_time": bandwidth_at_time_fraction(
            gftp.stream_series("DT1"), 0.95
        ),
        "iqpg_dt2_p95_time": bandwidth_at_time_fraction(
            iqpg.stream_series("DT2"), 0.95
        ),
        "iqpg_dt1_attainment_p95": bandwidth_at_time_fraction(
            iqpg.stream_series("DT1"), 0.95
        )
        / DT1_MBPS,
        "gridftp_dt1_attainment_p95": bandwidth_at_time_fraction(
            gftp.stream_series("DT1"), 0.95
        )
        / DT1_MBPS,
    }
    result.paper = {
        # Figure 13 is a plot; the in-text anchors are the Figure 12 means,
        # so paper values here are the qualitative step positions.
        "iqpg_dt1_p95_time": DT1_MBPS,
        "gridftp_dt1_p95_time": None,
        "iqpg_dt2_p95_time": DT2_MBPS,
        "iqpg_dt1_attainment_p95": 1.0,
        "gridftp_dt1_attainment_p95": None,
    }
    return result
