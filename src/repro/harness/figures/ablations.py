"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper figure — these isolate *why* PGOS wins:

1. **Statistical vs mean prediction** — on a *deceptive* path pair
   (steady ~50 Mbps vs wild ~58 Mbps mean with heavy dips) a
   mean-prediction scheduler routes the critical stream to the path with
   the higher average and violates its guarantee; PGOS reads the
   distribution's tail and picks the steady path.  This is the paper's
   core argument reduced to one decision.
2. **Single-path-first vs forced even split** — the paper prefers a
   single path per guaranteed stream "whenever possible"; forcing an even
   split exposes the critical stream to the noisier path's dips
   (variance and deadline misses grow).
3. **Remap-trigger (KS threshold) sensitivity** — how often PGOS rebuilds
   its scheduling vectors vs the guarantee it sustains.
"""

from __future__ import annotations

from repro.apps.smartpointer import BOND1_MBPS, run_smartpointer
from repro.baselines.meanpred import MeanPredictionScheduler
from repro.core.pgos import PGOSScheduler
from repro.core.spec import StreamSpec
from repro.harness.experiment import run_schedule_experiment
from repro.harness.figures.base import FigureResult
from repro.harness.metrics import (
    bandwidth_at_time_fraction,
    deadline_miss_rate,
    summarize_stream,
)
from repro.harness.report import format_table
from repro.network.emulab import make_figure8_testbed

#: The prediction ablation's critical demand: feasible at 95 % only on
#: the steady path (residual ~50±2), not on the wild one (mean ~58 but
#: 5th percentile far lower).
DECEPTIVE_CRITICAL_MBPS = 42.0


def _deceptive_run(scheduler, seed: int, duration: float, warmup: int):
    testbed = make_figure8_testbed(profile_a="steady", profile_b="wild")
    realization = testbed.realize(seed=seed, duration=duration, dt=0.1)
    streams = [
        StreamSpec(
            name="crit",
            required_mbps=DECEPTIVE_CRITICAL_MBPS,
            probability=0.95,
        ),
        StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
    ]
    return run_schedule_experiment(
        scheduler, realization, streams, warmup_intervals=warmup
    )


#: The seed EXPERIMENTS.md's recorded numbers were produced with;
#: the runner's default suite pins it on this figure's RunSpec.
CANONICAL_SEED = 7


def run(seed: int = CANONICAL_SEED, fast: bool = False) -> FigureResult:
    """Run the three ablations."""
    duration = 90.0 if fast else 180.0
    warmup = 200 if fast else 300

    result = FigureResult(
        figure_id="ablations",
        title="Design-choice ablations",
    )

    # 1. statistical vs mean prediction on the deceptive path pair
    rows = []
    attainment = {}
    for label, scheduler in (
        ("PGOS (percentile)", PGOSScheduler()),
        ("MeanPred (EWMA)", MeanPredictionScheduler()),
        ("MeanPred derated 0.9", MeanPredictionScheduler(headroom=0.9)),
    ):
        res = _deceptive_run(scheduler, seed, duration, warmup)
        summary = summarize_stream(
            res.stream_series("crit"),
            "crit",
            label,
            DECEPTIVE_CRITICAL_MBPS,
        )
        attainment[label] = summary.p95_time_mbps / DECEPTIVE_CRITICAL_MBPS
        rows.append(
            (
                label,
                summary.mean_mbps,
                summary.std_mbps,
                summary.p95_time_mbps,
                summary.fraction_meeting_target,
            )
        )
    result.add_section(
        "prediction ablation: critical stream "
        f"({DECEPTIVE_CRITICAL_MBPS} Mbps @ 95%) over steady-vs-wild paths",
        format_table(
            ["variant", "mean", "std", "95% time", "frac >= target"], rows
        ),
    )

    # 2. single-path-first vs forced even split (SmartPointer scenario)
    rows = []
    split_stats = {}
    for label, strategy in (
        ("single-path-first", "single-first"),
        ("forced even split", "even"),
    ):
        scheduler = PGOSScheduler(split_strategy=strategy)
        res = run_smartpointer(
            scheduler, seed=seed, duration=duration, warmup_intervals=warmup
        )
        series = res.stream_series("Bond1")
        split_stats[label] = {
            "std": float(series.std()),
            "miss": deadline_miss_rate(series, res.dt, BOND1_MBPS),
        }
        rows.append(
            (
                label,
                float(series.mean()),
                split_stats[label]["std"],
                split_stats[label]["miss"],
            )
        )
    result.add_section(
        "split ablation: Bond1 (22.148 Mbps @ 95%)",
        format_table(
            ["variant", "mean", "std", "interval miss rate"], rows
        ),
    )

    # 3. KS remap-threshold sensitivity
    rows = []
    remaps = {}
    for ks in (0.05, 0.2, 0.5):
        scheduler = PGOSScheduler(ks_threshold=ks)
        res = run_smartpointer(
            scheduler, seed=seed, duration=duration, warmup_intervals=warmup
        )
        p95 = bandwidth_at_time_fraction(res.stream_series("Bond1"), 0.95)
        remaps[ks] = scheduler.remap_count
        rows.append((f"KS={ks}", scheduler.remap_count, p95))
    result.add_section(
        "remap-trigger sensitivity: Bond1",
        format_table(["threshold", "remaps", "Bond1 95% time"], rows),
    )

    result.measured = {
        "pgos_crit_attainment_p95": attainment["PGOS (percentile)"],
        "meanpred_crit_attainment_p95": attainment["MeanPred (EWMA)"],
        "single_first_bond1_std": split_stats["single-path-first"]["std"],
        "even_split_bond1_std": split_stats["forced even split"]["std"],
        "single_first_bond1_miss": split_stats["single-path-first"]["miss"],
        "even_split_bond1_miss": split_stats["forced even split"]["miss"],
        "remaps_at_ks_0.05": float(remaps[0.05]),
        "remaps_at_ks_0.5": float(remaps[0.5]),
    }
    result.paper = {key: None for key in result.measured}
    result.notes = [
        "these are this reproduction's ablations; the paper reports only "
        "the end-to-end comparisons",
    ]
    return result
