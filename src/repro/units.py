"""Unit conversions used throughout the reproduction.

The paper mixes units freely (Mbps link rates, KB message sizes, packets per
scheduling window, records per second).  Centralizing the conversions keeps
every module honest about *bits vs bytes* and avoids scattering ``1e6`` and
``8`` literals through the code.

Conventions
-----------
* Bandwidth is expressed in **Mbps** (``1 Mbps = 1e6 bits/s``) at API
  boundaries, matching the paper's figures.
* Data sizes are expressed in **bytes**; ``KB`` means ``1024`` bytes, as used
  by the paper's record sizes (e.g. the 172.8 KB climate record component).
* Time is expressed in **seconds** (floats of virtual time).
"""

from __future__ import annotations

#: Bits per megabit.
BITS_PER_MEGABIT = 1_000_000

#: Bytes per kilobyte (the paper's data sizes use binary KB).
BYTES_PER_KB = 1024

#: Bytes per megabyte.
BYTES_PER_MB = 1024 * 1024

#: Default packet payload size in bytes (Ethernet-MTU sized, as on the
#: paper's fast-ethernet testbed).
DEFAULT_PACKET_SIZE = 1500


def mbps_to_bytes_per_s(mbps: float) -> float:
    """Convert a rate in Mbps to bytes per second."""
    return mbps * BITS_PER_MEGABIT / 8.0


def bytes_per_s_to_mbps(bps: float) -> float:
    """Convert a rate in bytes per second to Mbps."""
    return bps * 8.0 / BITS_PER_MEGABIT


def bytes_in_interval(mbps: float, dt: float) -> float:
    """Number of bytes a rate of ``mbps`` delivers in ``dt`` seconds."""
    return mbps_to_bytes_per_s(mbps) * dt


def mbps_from_bytes(nbytes: float, dt: float) -> float:
    """Rate in Mbps that delivers ``nbytes`` bytes in ``dt`` seconds."""
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    return bytes_per_s_to_mbps(nbytes / dt)


def packets_per_window(mbps: float, packet_size: int, tw: float) -> int:
    """Packets of ``packet_size`` bytes needed per window to sustain ``mbps``.

    This is the paper's ``x_i`` for a stream whose utility specification is a
    minimum bandwidth: the number of packets that must be serviced per
    scheduling window ``tw`` (Section 5.1).  Rounded up so the guarantee is
    conservative.
    """
    if packet_size <= 0:
        raise ValueError(f"packet_size must be positive, got {packet_size}")
    if tw <= 0:
        raise ValueError(f"tw must be positive, got {tw}")
    nbytes = bytes_in_interval(mbps, tw)
    whole, frac = divmod(nbytes, packet_size)
    return int(whole) + (1 if frac > 1e-9 else 0)


def rate_of_packets(num_packets: float, packet_size: int, tw: float) -> float:
    """Mbps sustained by ``num_packets`` packets per window of ``tw`` seconds."""
    return mbps_from_bytes(num_packets * packet_size, tw)
