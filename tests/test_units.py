"""Unit-conversion sanity: the bit/byte/packet arithmetic everything rests on."""

import pytest

from repro import units


class TestRateConversions:
    def test_mbps_to_bytes_round_trip(self):
        assert units.bytes_per_s_to_mbps(units.mbps_to_bytes_per_s(34.56)) == (
            pytest.approx(34.56)
        )

    def test_one_mbps_is_125000_bytes_per_s(self):
        assert units.mbps_to_bytes_per_s(1.0) == 125_000.0

    def test_bytes_in_interval(self):
        # 100 Mbps for 0.1 s = 1.25 MB
        assert units.bytes_in_interval(100.0, 0.1) == pytest.approx(1_250_000)

    def test_mbps_from_bytes(self):
        assert units.mbps_from_bytes(1_250_000, 0.1) == pytest.approx(100.0)

    def test_mbps_from_bytes_rejects_zero_dt(self):
        with pytest.raises(ValueError):
            units.mbps_from_bytes(100, 0.0)


class TestPacketsPerWindow:
    def test_exact_fit(self):
        # 1500-byte packets, 1 s window, 12 Mbps = 1000 packets exactly.
        assert units.packets_per_window(12.0, 1500, 1.0) == 1000

    def test_rounds_up(self):
        assert units.packets_per_window(12.001, 1500, 1.0) == 1001

    def test_zero_rate(self):
        assert units.packets_per_window(0.0, 1500, 1.0) == 0

    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            units.packets_per_window(10.0, 0, 1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            units.packets_per_window(10.0, 1500, -1.0)

    def test_rate_of_packets_inverts(self):
        x = units.packets_per_window(25.0, 1500, 1.0)
        rate = units.rate_of_packets(x, 1500, 1.0)
        assert rate >= 25.0
        assert rate == pytest.approx(25.0, rel=1e-3)

    def test_paper_atom_stream(self):
        # SmartPointer Atom: 3.249 Mbps with 1500 B packets, tw = 1 s.
        x = units.packets_per_window(3.249, 1500, 1.0)
        assert x == 271  # ceil(3.249e6 / 8 / 1500)
