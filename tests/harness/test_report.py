"""ASCII rendering."""

import numpy as np

from repro.harness.report import (
    cdf_table,
    format_table,
    paper_vs_measured_table,
    series_block,
    sparkline,
)


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [("a", 1.0), ("bbbb", 22.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "22.500" in lines[3]

    def test_none_rendered_as_dash(self):
        text = format_table(["x"], [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_non_float_cells(self):
        text = format_table(["x"], [(7,), ("text",)])
        assert "7" in text and "text" in text


class TestSparkline:
    def test_length_capped(self):
        assert len(sparkline(np.arange(1000), width=40)) == 40

    def test_short_series_kept(self):
        assert len(sparkline(np.arange(5), width=40)) == 5

    def test_constant_series(self):
        s = sparkline(np.full(10, 3.0))
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline(np.array([])) == ""

    def test_monotone_increases(self):
        s = sparkline(np.arange(9), width=9)
        assert s == "".join(sorted(s))


class TestBlocks:
    def test_series_block_annotations(self):
        text = series_block("Atom", np.array([1.0, 2.0, 3.0]))
        assert "Atom" in text
        assert "mean=  2.00" in text

    def test_cdf_table_quantiles(self):
        table = cdf_table({"s": np.arange(1.0, 101.0)}, probabilities=(0.5,))
        assert "0.50" in table
        assert "50.500" in table

    def test_paper_vs_measured(self):
        table = paper_vs_measured_table([("metric", 1.0, 1.1)])
        assert "metric" in table
        assert "1.100" in table
