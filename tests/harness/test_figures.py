"""Figure reproductions (fast mode): the paper's shape claims hold."""

import pytest

from repro.harness.figures import FIGURES
from repro.harness.figures import fig4, fig9, fig10, fig11, fig12, fig13


@pytest.fixture(scope="module")
def fig4_result():
    return fig4.run(fast=True)


@pytest.fixture(scope="module")
def fig9_result():
    return fig9.run(fast=True)


@pytest.fixture(scope="module")
def fig10_result():
    return fig10.run(fast=True)


@pytest.fixture(scope="module")
def fig11_result():
    return fig11.run(fast=True)


@pytest.fixture(scope="module")
def fig12_result():
    return fig12.run(fast=True)


@pytest.fixture(scope="module")
def fig13_result():
    return fig13.run(fast=True)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig4",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablations",
            "video",
            "sweep",
        }


class TestFig4:
    def test_percentile_beats_mean_prediction(self, fig4_result):
        m = fig4_result.measured
        assert (
            m["percentile_failure_rate_avg"]
            < m["mean_prediction_error_avg"] / 2
        )

    def test_failure_rate_low(self, fig4_result):
        assert fig4_result.measured["percentile_failure_rate_max"] < 0.08

    def test_mean_error_substantial(self, fig4_result):
        assert fig4_result.measured["mean_prediction_error_avg"] > 0.08

    def test_renders(self, fig4_result):
        text = fig4_result.render()
        assert "BW window" in text and "paper vs measured" in text


class TestFig9:
    def test_pgos_hits_targets(self, fig9_result):
        m = fig9_result.measured
        assert m["pgos_atom_mean"] == pytest.approx(3.249, rel=0.02)
        assert m["pgos_bond1_mean"] == pytest.approx(22.148, rel=0.02)

    def test_pgos_stabler_than_msfq(self, fig9_result):
        m = fig9_result.measured
        assert m["pgos_bond1_std"] < m["msfq_bond1_std"] / 2

    def test_bond2_not_compromised(self, fig9_result):
        assert fig9_result.measured[
            "bond2_mean_ratio_pgos_over_msfq"
        ] == pytest.approx(1.0, abs=0.05)

    def test_bond2_split_across_paths(self, fig9_result):
        assert fig9_result.measured["pgos_bond2_paths_used"] == 2.0


class TestFig10:
    def test_pgos_attainment_near_full(self, fig10_result):
        assert fig10_result.measured["pgos_bond1_attainment_p95"] >= 0.97

    def test_msfq_attainment_degraded(self, fig10_result):
        m = fig10_result.measured
        assert m["msfq_bond1_attainment_p95"] < 0.95
        assert (
            m["msfq_bond1_p95_time_mbps"] < m["pgos_bond1_p95_time_mbps"]
        )


class TestFig11:
    def test_jitter_ordering(self, fig11_result):
        m = fig11_result.measured
        assert m["pgos_jitter_ms"] < m["msfq_jitter_ms"]

    def test_pgos_atom_p95(self, fig11_result):
        assert fig11_result.measured["pgos_atom_p95_time"] >= 3.249 * 0.99

    def test_std_ordering(self, fig11_result):
        m = fig11_result.measured
        assert m["pgos_bond1_std"] < m["msfq_bond1_std"]


class TestFig12:
    def test_iqpg_record_rate(self, fig12_result):
        m = fig12_result.measured
        assert m["iqpg_dt1_records_per_s"] == pytest.approx(25.0, rel=0.01)
        assert m["iqpg_dt2_records_per_s"] == pytest.approx(25.0, rel=0.01)

    def test_iqpg_stabler_than_gridftp(self, fig12_result):
        m = fig12_result.measured
        assert m["iqpg_dt1_std"] < m["gridftp_dt1_std"] / 2

    def test_means_near_paper(self, fig12_result):
        m = fig12_result.measured
        assert m["gridftp_dt1_mean"] == pytest.approx(33.94, rel=0.05)
        assert m["iqpg_dt1_mean"] == pytest.approx(34.55, rel=0.02)

    def test_dt3_split(self, fig12_result):
        assert fig12_result.measured["iqpg_dt3_paths_used"] == 2.0


class TestFig13:
    def test_iqpg_cdf_step_at_requirement(self, fig13_result):
        m = fig13_result.measured
        assert m["iqpg_dt1_attainment_p95"] >= 0.99

    def test_gridftp_cdf_smeared(self, fig13_result):
        m = fig13_result.measured
        assert m["gridftp_dt1_attainment_p95"] < m["iqpg_dt1_attainment_p95"]


class TestAuxiliaryFigures:
    """Fast-mode structure checks for the non-paper figures."""

    def test_ablations(self):
        from repro.harness.figures import ablations

        result = ablations.run(fast=True)
        m = result.measured
        assert m["pgos_crit_attainment_p95"] >= m["meanpred_crit_attainment_p95"]
        assert "prediction ablation" in result.render()

    def test_video(self):
        from repro.harness.figures import video_ext

        result = video_ext.run(fast=True)
        assert result.measured["pgos_stall_fraction"] <= 0.05
        assert "base layer" in result.render()

    def test_sweep(self):
        from repro.harness.figures import sweep_fig

        result = sweep_fig.run(fast=True)
        assert result.measured["pgos_attainment_at_nominal_load"] >= 0.9
        rendered = result.render()
        assert "x-traffic scale" in rendered
        assert "probing-quality sweep" in rendered


class TestFigureResultContainer:
    def test_comparison_rows_pair_paper_values(self):
        from repro.harness.figures.base import FigureResult

        result = FigureResult(figure_id="x", title="t")
        result.measured = {"a": 1.0, "b": 2.0}
        result.paper = {"a": 1.5}
        rows = dict(
            (key, (paper, measured))
            for key, paper, measured in result.comparison_rows()
        )
        assert rows == {"a": (1.5, 1.0), "b": (None, 2.0)}

    def test_render_includes_notes_and_sections(self):
        from repro.harness.figures.base import FigureResult

        result = FigureResult(figure_id="x", title="t")
        result.add_section("cap", "body")
        result.notes = ["careful"]
        text = result.render()
        assert "== x: t ==" in text
        assert "-- cap --" in text and "body" in text
        assert "note: careful" in text
