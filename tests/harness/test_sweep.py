"""Cross-traffic sweep utilities."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.sweep import (
    SweepPoint,
    admission_crossover,
    render_sweep,
    sweep_cross_traffic,
)


@pytest.fixture(scope="module")
def points():
    return sweep_cross_traffic(
        scales=(0.8, 1.4),
        algorithms=("MSFQ", "PGOS"),
        duration=40.0,
        warmup_intervals=100,
    )


class TestSweep:
    def test_one_point_per_scale(self, points):
        assert [p.scale for p in points] == [0.8, 1.4]

    def test_light_load_admitted(self, points):
        assert points[0].admitted
        assert points[0].attainment["PGOS"] >= 0.9

    def test_heavy_load_rejected_with_hint(self, points):
        heavy = points[1]
        assert not heavy.admitted
        assert heavy.suggested_probability is not None

    def test_attainment_degrades_with_load(self, points):
        assert (
            points[1].attainment["PGOS"] <= points[0].attainment["PGOS"]
        )

    def test_crossover(self, points):
        assert admission_crossover(points) == 1.4

    def test_crossover_none_when_all_admitted(self):
        ok = [
            SweepPoint(scale=0.5, admitted=True, suggested_probability=None)
        ]
        assert admission_crossover(ok) is None

    def test_render(self, points):
        text = render_sweep(points)
        assert "x-traffic scale" in text
        assert "PGOS attainment" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_cross_traffic(scales=())
        with pytest.raises(ConfigurationError):
            sweep_cross_traffic(scales=(-1.0,), duration=10.0)


class TestNoiseSweep:
    def test_noise_tolerated_smoothing_not(self):
        from repro.harness.sweep import sweep_measurement_noise
        from repro.monitoring.probe import ProbingEstimator

        points = sweep_measurement_noise(
            [
                ("perfect", None),
                ("noisy", ProbingEstimator(noise_cv=0.15)),
                (
                    "smoothed",
                    ProbingEstimator(noise_cv=0.0, smoothing_intervals=100),
                ),
            ],
            duration=90.0,
            warmup_intervals=200,
        )
        perfect, noisy, smoothed = (p.attainment for p in points)
        # Multiplicative noise barely matters (ordering preserved)...
        assert perfect >= 0.95
        assert noisy >= perfect - 0.05
        # ...but dip-blind smoothing misleads the percentile placement.
        assert smoothed < perfect - 0.02

    def test_empty_levels_rejected(self):
        from repro.harness.sweep import sweep_measurement_noise

        with pytest.raises(ConfigurationError):
            sweep_measurement_noise([])
