"""Evaluation metrics: percentile-of-time, jitter, CDF points."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness.metrics import (
    bandwidth_at_time_fraction,
    deadline_miss_rate,
    empirical_cdf_points,
    fraction_of_time_at_least,
    frame_delivery_times,
    frame_jitter_ms,
    summarize_stream,
)
from repro.units import mbps_to_bytes_per_s


class TestTimeFractionMetrics:
    def test_p95_is_5th_percentile(self):
        x = np.arange(1.0, 101.0)
        assert bandwidth_at_time_fraction(x, 0.95) == pytest.approx(
            np.percentile(x, 5)
        )

    def test_constant_series(self):
        x = np.full(100, 22.148)
        assert bandwidth_at_time_fraction(x, 0.95) == pytest.approx(22.148)
        assert fraction_of_time_at_least(x, 22.148) == 1.0

    def test_fraction_of_time(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert fraction_of_time_at_least(x, 2.5) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bandwidth_at_time_fraction(np.ones(3), 1.0)
        with pytest.raises(ConfigurationError):
            fraction_of_time_at_least(np.array([]), 1.0)


class TestSummary:
    def test_summary_fields(self, rng):
        x = 20 + rng.standard_normal(1000)
        s = summarize_stream(x, "s", "PGOS", target_mbps=19.0)
        assert s.mean_mbps == pytest.approx(20.0, abs=0.2)
        assert s.p99_time_mbps <= s.p95_time_mbps <= s.mean_mbps
        assert 0.0 <= s.fraction_meeting_target <= 1.0

    def test_no_target(self, rng):
        s = summarize_stream(rng.random(100), "s", "X")
        assert s.target_mbps is None
        assert s.fraction_meeting_target is None
        assert s.target_attainment_at() is None

    def test_attainment(self):
        x = np.full(100, 19.0)
        s = summarize_stream(x, "s", "X", target_mbps=20.0)
        assert s.target_attainment_at("p95") == pytest.approx(0.95)


class TestFrameDelivery:
    def test_steady_rate_steady_frames(self):
        # 10 Mbps, frames of 125000 bytes -> one frame per 0.1 s interval.
        x = np.full(50, 10.0)
        times = frame_delivery_times(x, 0.1, mbps_to_bytes_per_s(10.0) * 0.1)
        gaps = np.diff(times)
        assert np.allclose(gaps, 0.1)

    def test_jitter_zero_for_cbr_delivery(self):
        x = np.full(100, 10.0)
        frame = mbps_to_bytes_per_s(10.0) / 25.0
        assert frame_jitter_ms(x, 0.1, frame, 25.0) == pytest.approx(0.0, abs=1e-6)

    def test_jitter_positive_for_fluctuating_delivery(self, rng):
        x = np.clip(10.0 + 3.0 * rng.standard_normal(500), 0.1, None)
        frame = mbps_to_bytes_per_s(10.0) / 25.0
        assert frame_jitter_ms(x, 0.1, frame, 25.0) > 0.5

    def test_jitter_ordering_matches_stability(self, rng):
        frame = mbps_to_bytes_per_s(10.0) / 25.0
        stable = np.clip(10.0 + 0.2 * rng.standard_normal(500), 0.1, None)
        noisy = np.clip(10.0 + 3.0 * rng.standard_normal(500), 0.1, None)
        assert frame_jitter_ms(stable, 0.1, frame, 25.0) < frame_jitter_ms(
            noisy, 0.1, frame, 25.0
        )

    def test_incomplete_frames_dropped(self):
        x = np.full(3, 1.0)  # 37.5 kB total
        times = frame_delivery_times(x, 0.1, 30_000.0)
        assert times.size == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            frame_delivery_times(np.ones(5), 0.1, 0.0)
        with pytest.raises(ConfigurationError):
            frame_jitter_ms(np.ones(5), 0.1, 100.0, 0.0)


class TestWindowConstraint:
    def test_all_windows_satisfied_at_rate(self):
        from repro.harness.metrics import window_constraint_satisfaction

        # 12 Mbps steady = 1000 pkts of 1500 B per 1 s window.
        x = np.full(100, 12.0)
        sat = window_constraint_satisfaction(
            x, dt=0.1, tw=1.0, x_packets=1000, packet_size=1500
        )
        assert sat == 1.0

    def test_half_windows_satisfied(self):
        from repro.harness.metrics import window_constraint_satisfaction

        # Alternate windows at 12 and 6 Mbps.
        x = np.concatenate([np.full(10, 12.0), np.full(10, 6.0)] * 5)
        sat = window_constraint_satisfaction(
            x, dt=0.1, tw=1.0, x_packets=1000, packet_size=1500
        )
        assert sat == pytest.approx(0.5)

    def test_zero_requirement_always_met(self):
        from repro.harness.metrics import window_constraint_satisfaction

        sat = window_constraint_satisfaction(
            np.zeros(20), dt=0.1, tw=1.0, x_packets=0, packet_size=1500
        )
        assert sat == 1.0

    def test_validation(self):
        from repro.harness.metrics import window_constraint_satisfaction

        with pytest.raises(ConfigurationError):
            window_constraint_satisfaction(
                np.ones(20), dt=0.1, tw=0.35, x_packets=1, packet_size=1500
            )
        with pytest.raises(ConfigurationError):
            window_constraint_satisfaction(
                np.ones(5), dt=0.1, tw=1.0, x_packets=1, packet_size=1500
            )
        with pytest.raises(ConfigurationError):
            window_constraint_satisfaction(
                np.ones(20), dt=0.1, tw=1.0, x_packets=-1, packet_size=1500
            )


class TestCDFPointsAndMissRate:
    def test_cdf_points_monotone(self, rng):
        x, f = empirical_cdf_points(rng.random(100))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(f) > 0)
        assert f[-1] == 1.0

    def test_deadline_miss_rate(self):
        x = np.array([10.0, 10.0, 5.0, 10.0])
        assert deadline_miss_rate(x, 0.1, 10.0) == pytest.approx(0.25)

    def test_miss_rate_tolerates_float_edge(self):
        x = np.full(10, 22.148) * (1 - 1e-12)
        assert deadline_miss_rate(x, 0.1, 22.148) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            deadline_miss_rate(np.ones(3), 0.1, 0.0)
        with pytest.raises(ConfigurationError):
            empirical_cdf_points(np.array([]))
