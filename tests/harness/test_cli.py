"""The figure-regeneration CLI."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig9", "--seed", "3", "--fast"])
        assert args.figure == "fig9"
        assert args.seed == 3
        assert args.fast

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_runs_one_figure(self, capsys):
        assert main(["fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "percentile failure rate" in out

    def test_seed_override(self, capsys):
        assert main(["fig4", "--fast", "--seed", "17"]) == 0
        assert "fig4" in capsys.readouterr().out

    def test_output_dir(self, capsys, tmp_path):
        out = tmp_path / "reports"
        assert main(["fig4", "--fast", "--output", str(out)]) == 0
        written = (out / "fig4.txt").read_text()
        assert "percentile failure rate" in written

    def test_all_runs_every_figure(self, capsys, tmp_path):
        from repro.harness.figures import FIGURES

        out = tmp_path / "reports"
        assert main(["all", "--fast", "--output", str(out)]) == 0
        written = {p.stem for p in out.glob("*.txt")}
        assert written == set(FIGURES)
