"""The interval-driven experiment runner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.pgos import PGOSScheduler
from repro.core.scheduler import PathShareRequest, SchedulerBase
from repro.core.spec import StreamSpec
from repro.harness.experiment import ExperimentResult, run_schedule_experiment


class GreedyScheduler(SchedulerBase):
    """Test double: every stream demands its full backlog on every path."""

    name = "Greedy"

    def allocate(self, interval, backlog_mbps):
        return {
            p: [
                PathShareRequest(
                    stream=s.name,
                    demand_mbps=backlog_mbps.get(s.name),
                    weight=s.weight,
                )
                for s in self.streams
            ]
            for p in self.path_names
        }


def specs():
    return [
        StreamSpec(name="cbr", required_mbps=10.0, probability=0.95),
        StreamSpec(name="fill", elastic=True, nominal_mbps=20.0),
    ]


class TestDriver:
    def test_throughput_bounded_by_availability(self, realization):
        res = run_schedule_experiment(
            GreedyScheduler(), realization, specs(), warmup_intervals=50
        )
        total = res.total_series()
        avail = sum(res.available_mbps[p] for p in res.path_names)
        assert np.all(total <= avail + 1e-6)

    def test_cbr_stream_capped_by_arrivals(self, realization):
        res = run_schedule_experiment(
            GreedyScheduler(), realization, specs(), warmup_intervals=50
        )
        cbr = res.stream_series("cbr")
        # Long-run mean cannot exceed the arrival rate.
        assert cbr.mean() <= 10.0 + 1e-6

    def test_elastic_stream_unbounded_by_arrivals(self, realization):
        res = run_schedule_experiment(
            GreedyScheduler(), realization, specs(), warmup_intervals=50
        )
        assert res.stream_series("fill").mean() > 20.0

    def test_warmup_excluded_from_results(self, realization):
        res = run_schedule_experiment(
            GreedyScheduler(), realization, specs(), warmup_intervals=100
        )
        assert res.n_intervals == realization.n_intervals - 100

    def test_invalid_warmup(self, realization):
        with pytest.raises(ConfigurationError):
            run_schedule_experiment(
                GreedyScheduler(),
                realization,
                specs(),
                warmup_intervals=realization.n_intervals,
            )

    def test_pgos_sees_warmup_history(self, realization):
        scheduler = PGOSScheduler(min_history=50)
        run_schedule_experiment(
            scheduler, realization, specs(), warmup_intervals=100
        )
        assert scheduler.has_history
        assert scheduler.remap_count >= 1

    def test_buffer_bound_drops_bytes(self, testbed):
        # A demand far beyond capacity must overflow the bounded buffer.
        realization = testbed.realize(seed=2, duration=30.0, dt=0.1)
        starved = [
            StreamSpec(name="cbr", required_mbps=500.0, probability=0.95)
        ]

        class NothingScheduler(SchedulerBase):
            name = "Nothing"

            def allocate(self, interval, backlog_mbps):
                return {p: [] for p in self.path_names}

        res = run_schedule_experiment(
            NothingScheduler(), realization, starved, warmup_intervals=10
        )
        assert res.dropped_bytes["cbr"] > 0
        assert np.all(res.stream_series("cbr") == 0.0)


class TestExperimentResult:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            scheduler_name="X",
            dt=0.1,
            stream_names=["a"],
            path_names=["A", "B"],
            delivered_mbps={
                "a": {"A": np.array([1.0, 2.0]), "B": np.array([0.5, 0.0])}
            },
            available_mbps={
                "A": np.array([10.0, 10.0]),
                "B": np.array([5.0, 5.0]),
            },
        )

    def test_stream_series_sums_paths(self):
        res = self._result()
        assert np.allclose(res.stream_series("a"), [1.5, 2.0])

    def test_substream_series(self):
        res = self._result()
        assert np.allclose(res.substream_series("a", "B"), [0.5, 0.0])

    def test_paths_used_filters_idle(self):
        res = self._result()
        assert res.paths_used("a") == ["A", "B"]
        assert res.paths_used("a", min_mbps=0.6) == ["A"]

    def test_times(self):
        res = self._result()
        assert np.allclose(res.times, [0.0, 0.1])

    def test_unknown_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            self._result().stream_series("ghost")
        with pytest.raises(ConfigurationError):
            self._result().substream_series("a", "C")
