"""Buffer-requirement and burstiness metrics (tech-report claims)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.harness.metrics import burstiness, required_playout_buffer_bytes
from repro.units import bytes_in_interval


class TestBufferRequirement:
    def test_zero_for_delivery_at_playout_rate(self):
        x = np.full(100, 10.0)
        assert required_playout_buffer_bytes(x, 0.1, 10.0) == 0.0

    def test_known_deficit(self):
        # One interval at half rate: deficit = half an interval of bytes.
        x = np.array([10.0, 5.0, 15.0, 10.0])
        expected = bytes_in_interval(5.0, 0.1)
        assert required_playout_buffer_bytes(x, 0.1, 10.0) == pytest.approx(
            expected
        )

    def test_grows_with_longer_outage(self):
        short = np.concatenate([np.full(5, 0.0), np.full(95, 11.0)])
        long = np.concatenate([np.full(20, 0.0), np.full(80, 13.0)])
        assert required_playout_buffer_bytes(
            long, 0.1, 10.0
        ) > required_playout_buffer_bytes(short, 0.1, 10.0)

    def test_smooth_needs_less_than_bursty_at_same_mean(self, rng):
        smooth = np.clip(10.0 + 0.2 * rng.standard_normal(1000), 0, None)
        bursty = np.clip(10.0 + 4.0 * rng.standard_normal(1000), 0, None)
        bursty *= smooth.mean() / bursty.mean()  # equalize means
        assert required_playout_buffer_bytes(
            smooth, 0.1, 9.9
        ) < required_playout_buffer_bytes(bursty, 0.1, 9.9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_playout_buffer_bytes(np.ones(5), 0.1, 0.0)
        with pytest.raises(ConfigurationError):
            required_playout_buffer_bytes(np.array([]), 0.1, 1.0)


class TestDownsideDeviation:
    def test_zero_when_target_always_met(self):
        from repro.harness.metrics import downside_deviation

        assert downside_deviation(np.full(50, 10.0), 9.0) == 0.0

    def test_known_shortfall(self):
        from repro.harness.metrics import downside_deviation

        x = np.array([10.0, 6.0, 10.0, 6.0])
        # Shortfalls of 0, 4, 0, 4 -> RMS = sqrt(8) ~ 2.828.
        assert downside_deviation(x, 10.0) == pytest.approx(np.sqrt(8.0))

    def test_spikes_above_target_are_free(self):
        from repro.harness.metrics import downside_deviation

        steady = np.full(100, 10.0)
        spiky = np.concatenate([np.full(50, 10.0), np.full(50, 100.0)])
        assert downside_deviation(spiky, 10.0) == downside_deviation(
            steady, 10.0
        )

    def test_validation(self):
        from repro.harness.metrics import downside_deviation

        with pytest.raises(ConfigurationError):
            downside_deviation(np.ones(5), 0.0)
        with pytest.raises(ConfigurationError):
            downside_deviation(np.array([]), 1.0)


class TestBurstiness:
    def test_zero_for_constant(self):
        assert burstiness(np.full(50, 7.0)) == 0.0

    def test_scales_with_variance(self, rng):
        quiet = 10 + 0.5 * rng.standard_normal(1000)
        loud = 10 + 3.0 * rng.standard_normal(1000)
        assert burstiness(loud) > burstiness(quiet)

    def test_zero_mean_series(self):
        assert burstiness(np.zeros(10)) == 0.0


class TestEndToEndBufferClaim:
    def test_pgos_needs_smaller_buffer_than_msfq(self):
        """The tech report's claim on the SmartPointer workload."""
        from repro.apps.smartpointer import BOND1_MBPS, run_smartpointer

        kwargs = dict(seed=7, duration=90.0, warmup_intervals=250)
        pgos = run_smartpointer("PGOS", **kwargs).stream_series("Bond1")
        msfq = run_smartpointer("MSFQ", **kwargs).stream_series("Bond1")
        playout = BOND1_MBPS * 0.98
        assert required_playout_buffer_bytes(
            pgos, 0.1, playout
        ) < required_playout_buffer_bytes(msfq, 0.1, playout)
        assert burstiness(pgos) < burstiness(msfq)
