"""Discrete-event engine: ordering, cancellation, run-until semantics."""

import pytest

from repro.errors import SimulationError
from repro.obs import Observability
from repro.obs.events import Category
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_priority_then_seq_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("late"), priority=5)
        sim.schedule(1.0, lambda: fired.append("first"), priority=0)
        sim.schedule(1.0, lambda: fired.append("second"), priority=0)
        sim.run()
        assert fired == ["first", "second", "late"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_during_run(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_len_excludes_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert len(sim) == 2
        e1.cancel()
        assert len(sim) == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.peek() == 2.0


class TestHeapCompaction:
    def test_cancelled_majority_triggers_compaction(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for e in events[:60]:
            e.cancel()
        # The 51st cancellation tips cancelled entries past half the
        # queue, rebuilding the heap without them.
        assert len(sim._queue) < 100
        assert sim.cancelled_events < 60
        assert len(sim) == 40

    def test_compacted_heap_still_fires_survivors_in_order(self):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
            for i in range(80)
        ]
        for e in events[: 80 - 10]:
            e.cancel()
        sim.run()
        assert fired == list(range(70, 80))

    def test_tiny_heaps_are_not_compacted(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        # Below the compaction floor the entry just waits to be popped.
        assert sim.cancelled_events == 1
        assert len(sim._queue) == 2
        assert len(sim) == 1

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        e = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e.cancel()
        e.cancel()
        assert sim.cancelled_events == 1

    def test_cancel_after_fire_does_not_skew_count(self):
        sim = Simulator()
        e = sim.schedule(1.0, lambda: None)
        sim.run()
        e.cancel()
        assert sim.cancelled_events == 0

    def test_peek_reclaims_popped_cancelled_entries(self):
        sim = Simulator()
        e1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e1.cancel()
        assert sim.peek() == 2.0
        assert sim.cancelled_events == 0

    def test_clear_resets_cancelled_count(self):
        sim = Simulator()
        e = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        e.cancel()
        sim.clear()
        assert sim.cancelled_events == 0
        assert len(sim) == 0

    def test_engine_metrics_and_compaction_trace(self):
        obs = Observability()
        sim = Simulator(obs=obs)
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for e in events[:60]:
            e.cancel()
        sim.run()
        metrics = obs.metrics
        assert metrics.get("engine.events_scheduled").value == 100
        assert metrics.get("engine.events_cancelled").value == 60
        assert metrics.get("engine.events_fired").value == 40
        assert metrics.get("engine.heap_compactions").value >= 1
        compactions = obs.trace.events(
            category=Category.ENGINE, name="heap_compacted"
        )
        assert compactions
        assert all(
            e.fields["after"] < e.fields["before"] for e in compactions
        )


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_clear_drops_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.clear()
        sim.run()
        assert fired == []

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False
