"""BatchState: row recycling, stable indirection, and scalar-order views."""

import numpy as np
import pytest

from repro.core.batchstate import BatchState
from repro.core.spec import StreamSpec
from repro.errors import ConfigurationError
from repro.sim.vectorized import (
    SIM_BACKENDS,
    default_sim_backend,
    resolve_sim_backend,
)
from repro.units import bytes_in_interval


def spec(name: str, required: float = 10.0) -> StreamSpec:
    return StreamSpec(name=name, required_mbps=required, probability=0.95)


def elastic_spec(name: str) -> StreamSpec:
    return StreamSpec(name=name, elastic=True, nominal_mbps=40.0)


def make_batch(n_columns: int = 20, capacity: int = 4) -> BatchState:
    return BatchState(
        n_columns=n_columns, dt=0.1, buffer_seconds=2.0, capacity=capacity
    )


class TestRowLifecycle:
    def test_open_precomputes_scalar_constants(self):
        batch = make_batch()
        row = batch.open(spec("s", required=12.5), stream_id=7, opened_col=3)
        assert batch.demand_mbps[row] == 12.5
        assert batch.arrival_bytes[row] == bytes_in_interval(12.5, 0.1)
        assert batch.limit_bytes[row] == bytes_in_interval(12.5, 2.0)
        assert batch.threshold_mbps[row] == 12.5 * 0.999
        assert batch.stream_id[row] == 7
        assert batch.opened_col[row] == 3

    def test_elastic_stream_has_nan_demand(self):
        batch = make_batch()
        row = batch.open(elastic_spec("e"), stream_id=1, opened_col=0)
        assert np.isnan(batch.demand_mbps[row])
        assert np.isnan(batch.required_mbps[row])
        assert batch.arrival_bytes[row] == 0.0

    def test_duplicate_open_rejected(self):
        batch = make_batch()
        batch.open(spec("s"), stream_id=1, opened_col=0)
        with pytest.raises(ConfigurationError):
            batch.open(spec("s"), stream_id=2, opened_col=0)

    def test_close_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_batch().close("ghost", cur_col=0)

    def test_free_list_reuse_is_lifo(self):
        batch = make_batch()
        rows = {
            name: batch.open(spec(name), stream_id=i, opened_col=0)
            for i, name in enumerate(["a", "b", "c"])
        }
        batch.close("a", cur_col=1)
        batch.close("c", cur_col=1)
        # LIFO: the most recently freed row ("c"'s) is recycled first.
        assert batch.open(spec("d"), 4, opened_col=1) == rows["c"]
        assert batch.open(spec("e"), 5, opened_col=1) == rows["a"]

    def test_reopen_moves_to_end_of_iteration_order(self):
        batch = make_batch()
        for i, name in enumerate(["a", "b", "c"]):
            batch.open(spec(name), stream_id=i, opened_col=0)
        batch.close("a", cur_col=2)
        batch.open(spec("a"), stream_id=9, opened_col=2)
        assert list(batch.names()) == ["b", "c", "a"]
        ordered = batch.rows_in_order()
        assert [batch.row(n) for n in ["b", "c", "a"]] == list(ordered)


class TestGrowth:
    def test_growth_preserves_live_rows(self):
        batch = make_batch(capacity=2)
        specs = [spec(f"s{i}", required=5.0 + i) for i in range(5)]
        for i, s in enumerate(specs):
            batch.open(s, stream_id=i, opened_col=0)
            batch.backlog_bytes[batch.row(s.name)] = 100.0 * i
            batch.history[batch.row(s.name), 0] = float(i)
        assert batch.capacity >= 5
        for i, s in enumerate(specs):
            row = batch.row(s.name)
            assert batch.demand_mbps[row] == 5.0 + i
            assert batch.backlog_bytes[row] == 100.0 * i
            assert batch.history[row, 0] == float(i)
            assert batch.stream_id[row] == i

    def test_growth_nan_fills_spec_columns(self):
        batch = make_batch(capacity=1)
        batch.open(spec("a"), stream_id=0, opened_col=0)
        batch.open(spec("b"), stream_id=1, opened_col=0)
        # Unused tail rows read as "no stream": NaN demand, zero counters.
        tail = np.arange(batch.n_open, batch.capacity)
        assert np.all(np.isnan(batch.demand_mbps[tail]))
        assert np.all(batch.shortfall_windows[tail] == 0)


class TestHistoryViews:
    def test_close_freezes_lifetime_slice(self):
        batch = make_batch()
        row = batch.open(spec("s"), stream_id=1, opened_col=2)
        batch.history[row, 2:5] = [1.0, 2.0, 3.0]
        batch.close("s", cur_col=5)
        np.testing.assert_array_equal(
            batch.history_array("s", cur_col=9), [1.0, 2.0, 3.0]
        )

    def test_open_stream_slices_to_current_column(self):
        batch = make_batch()
        row = batch.open(spec("s"), stream_id=1, opened_col=1)
        batch.history[row, 1:3] = [4.0, 5.0]
        np.testing.assert_array_equal(
            batch.history_array("s", cur_col=3), [4.0, 5.0]
        )

    def test_unknown_stream_reads_empty(self):
        assert len(make_batch().history_array("ghost", cur_col=3)) == 0

    def test_reopen_discards_frozen_history(self):
        batch = make_batch()
        row = batch.open(spec("s"), stream_id=1, opened_col=0)
        batch.history[row, 0] = 7.0
        batch.close("s", cur_col=1)
        batch.open(spec("s"), stream_id=2, opened_col=4)
        np.testing.assert_array_equal(
            batch.history_array("s", cur_col=4), np.zeros(0)
        )

    def test_load_history_roundtrip_and_overrun(self):
        batch = make_batch(n_columns=6)
        batch.open(spec("s"), stream_id=1, opened_col=2)
        batch.load_history("s", np.asarray([1.5, 2.5]))
        np.testing.assert_array_equal(
            batch.history_array("s", cur_col=4), [1.5, 2.5]
        )
        with pytest.raises(ConfigurationError):
            batch.load_history("s", np.zeros(5))

    def test_freeze_empty_marks_closed_stream(self):
        batch = make_batch()
        batch.freeze_empty("gone")
        assert len(batch.history_array("gone", cur_col=3)) == 0


class TestCountersAndBacklog:
    def test_backlog_items_follow_insertion_order(self):
        batch = make_batch()
        for i, name in enumerate(["x", "y"]):
            batch.open(spec(name), stream_id=i, opened_col=0)
        batch.set_backlog("x", 10.0)
        batch.set_backlog("y", 20.0)
        assert list(batch.backlog_items()) == [("x", 10.0), ("y", 20.0)]

    def test_telemetry_counters(self):
        batch = make_batch()
        row = batch.open(spec("s"), stream_id=1, opened_col=0)
        batch.delivered_bytes[row] += 1234.5
        batch.shortfall_windows[row] += 3
        assert batch.delivered_bytes_of("s") == 1234.5
        assert batch.shortfall_windows_of("s") == 3

    def test_close_zeroes_backlog(self):
        batch = make_batch()
        row = batch.open(spec("s"), stream_id=1, opened_col=0)
        batch.set_backlog("s", 99.0)
        batch.close("s", cur_col=1)
        assert batch.backlog_bytes[row] == 0.0

    def test_reset_drops_everything(self):
        batch = make_batch(n_columns=4)
        batch.open(spec("s"), stream_id=1, opened_col=0)
        batch.close("s", cur_col=1)
        batch.reset(n_columns=8)
        assert batch.n_open == 0
        assert batch.n_columns == 8
        assert len(batch.history_array("s", cur_col=2)) == 0


class TestValidation:
    def test_constructor_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            BatchState(n_columns=-1, dt=0.1, buffer_seconds=2.0)
        with pytest.raises(ConfigurationError):
            BatchState(n_columns=4, dt=0.0, buffer_seconds=2.0)
        with pytest.raises(ConfigurationError):
            BatchState(n_columns=4, dt=0.1, buffer_seconds=2.0, capacity=0)


class TestBackendResolver:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        assert default_sim_backend() == "vectorized"
        assert resolve_sim_backend(None) == "vectorized"

    def test_env_selects_backend(self, monkeypatch):
        for backend in SIM_BACKENDS:
            monkeypatch.setenv("REPRO_SIM_BACKEND", backend)
            assert default_sim_backend() == backend

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "quantum")
        with pytest.raises(ConfigurationError):
            default_sim_backend()

    def test_explicit_choice_validated(self):
        assert resolve_sim_backend("scalar") == "scalar"
        with pytest.raises(ConfigurationError):
            resolve_sim_backend("quantum")
