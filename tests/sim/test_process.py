"""Generator processes: timeouts, completion, interruption."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Process, Timeout, start


class TestProcess:
    def test_process_runs_to_completion(self):
        sim = Simulator()
        log = []

        def worker():
            log.append(("start", sim.now))
            yield Timeout(1.0)
            log.append(("mid", sim.now))
            yield Timeout(2.0)
            log.append(("end", sim.now))

        proc = start(sim, worker())
        sim.run()
        assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]
        assert proc.done

    def test_two_processes_interleave(self):
        sim = Simulator()
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield Timeout(period)
                log.append((name, sim.now))

        start(sim, ticker("fast", 1.0))
        start(sim, ticker("slow", 1.5))
        sim.run()
        # At the t=3.0 tie, "slow" fires first: its wake-up was scheduled
        # at t=1.5, before "fast" scheduled its own at t=2.0 (seq order).
        assert log == [
            ("fast", 1.0),
            ("slow", 1.5),
            ("fast", 2.0),
            ("slow", 3.0),
            ("fast", 3.0),
            ("slow", 4.5),
        ]

    def test_interrupt_stops_process(self):
        sim = Simulator()
        log = []

        def worker():
            while True:
                yield Timeout(1.0)
                log.append(sim.now)

        proc = start(sim, worker())
        sim.run(until=2.5)
        proc.interrupt()
        sim.run()
        assert log == [1.0, 2.0]
        assert proc.done

    def test_yielding_non_timeout_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        start(sim, bad())
        with pytest.raises(SimulationError, match="expected Timeout"):
            sim.run()

    def test_zero_delay_timeout_allowed(self):
        sim = Simulator()
        log = []

        def worker():
            yield Timeout(0.0)
            log.append(sim.now)

        start(sim, worker())
        sim.run()
        assert log == [0.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_process_name_defaults(self):
        sim = Simulator()

        def named():
            yield Timeout(0.0)

        proc = Process(sim, named(), name="my-proc")
        assert proc.name == "my-proc"
        sim.run()
