"""Random-stream determinism and independence."""

import numpy as np
import pytest

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_name_same_generator(self):
        streams = RandomStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_same_seed_same_draws(self):
        a = RandomStreams(7).get("path-A").random(10)
        b = RandomStreams(7).get("path-A").random(10)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = streams.fresh("x").random(100)
        b = streams.fresh("y").random(100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(7).fresh("x").random(10)
        b = RandomStreams(8).fresh("x").random(10)
        assert not np.array_equal(a, b)

    def test_fresh_replays(self):
        streams = RandomStreams(7)
        a = streams.fresh("trace").random(10)
        b = streams.fresh("trace").random(10)
        assert np.array_equal(a, b)

    def test_get_does_not_replay(self):
        streams = RandomStreams(7)
        a = streams.get("trace").random(10)
        b = streams.get("trace").random(10)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        # The key isolation property: draws keyed by name, not order.
        s1 = RandomStreams(7)
        only = s1.fresh("wanted").random(10)
        s2 = RandomStreams(7)
        s2.fresh("other-component").random(10)
        after = s2.fresh("wanted").random(10)
        assert np.array_equal(only, after)

    def test_spawn_is_deterministic_and_distinct(self):
        parent = RandomStreams(7)
        c1 = parent.spawn("child").fresh("x").random(10)
        c2 = RandomStreams(7).spawn("child").fresh("x").random(10)
        assert np.array_equal(c1, c2)
        assert not np.array_equal(c1, parent.fresh("x").random(10))

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]
