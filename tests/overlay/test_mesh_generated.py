"""Satellite 3: multi-route discovery on generated datacenter meshes.

`OverlayMesh.routes(k>1)` must return simple, node-disjoint routes on
meshes mirrored from the fat-tree and leaf-spine generators — and the
result must be a pure function of mesh *structure*, identical no matter
what order the logical links were inserted in.
"""

import pytest

from repro.errors import TopologyError
from repro.overlay.mesh import OverlayMesh
from repro.topo import (
    PRESETS,
    build_testbed,
    overlay_mesh_from_testbed,
    route_is_simple,
    routes_node_disjoint,
)


def _mesh(preset):
    return overlay_mesh_from_testbed(build_testbed(PRESETS[preset]))


def _reinserted(mesh, order):
    """Rebuild a mesh inserting the same logical links in a new order."""
    clone = OverlayMesh()
    for link in order:
        clone.add_link(
            link.src, link.dst,
            profile=link.profile,
            capacity_mbps=link.capacity_mbps,
        )
    return clone


@pytest.mark.parametrize(
    "preset,k",
    [("fat_tree_k4", 2), ("fat_tree_k8", 4), ("leaf_spine_4x8", 4)],
)
class TestGeneratedMeshRoutes:
    def test_routes_simple_and_node_disjoint(self, preset, k):
        routes = _mesh(preset).routes("SRV", "CLT", k=k)
        assert len(routes) == k
        for route in routes:
            assert route[0] == "SRV" and route[-1] == "CLT"
            assert route_is_simple(route)
        assert routes_node_disjoint(routes)

    def test_stable_under_insertion_order(self, preset, k):
        mesh = _mesh(preset)
        baseline = mesh.routes("SRV", "CLT", k=k)
        reversed_mesh = _reinserted(mesh, list(reversed(mesh.links)))
        shuffled = sorted(mesh.links, key=lambda l: (l.dst, l.src))
        shuffled_mesh = _reinserted(mesh, shuffled)
        assert reversed_mesh.routes("SRV", "CLT", k=k) == baseline
        assert shuffled_mesh.routes("SRV", "CLT", k=k) == baseline


class TestMeshMirrorsFabric:
    def test_hosts_excluded(self):
        mesh = _mesh("leaf_spine_4x8")
        assert not any(node.startswith("H") for node in mesh.nodes)
        assert "SRV" in mesh.nodes and "CLT" in mesh.nodes

    def test_profiles_are_structure_deterministic(self):
        a, b = _mesh("fat_tree_k4"), _mesh("fat_tree_k4")
        assert [
            (l.src, l.dst, l.profile, l.capacity_mbps) for l in a.links
        ] == [(l.src, l.dst, l.profile, l.capacity_mbps) for l in b.links]

    def test_over_requesting_routes_raises(self):
        with pytest.raises(TopologyError, match="node-disjoint"):
            _mesh("fat_tree_k4").routes("SRV", "CLT", k=5)
