"""Overlay meshes: logical links, routes, bottleneck composition."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.overlay.mesh import LogicalLink, OverlayMesh
from repro.traces.nlanr import PROFILES


def diamond_mesh() -> OverlayMesh:
    mesh = OverlayMesh()
    mesh.add_link("S", "R1", "calm")
    mesh.add_link("R1", "C", "calm")
    mesh.add_link("S", "R2", "light")
    mesh.add_link("R2", "C", "light")
    return mesh


class TestMesh:
    def test_add_and_lookup(self):
        mesh = diamond_mesh()
        assert mesh.link("S", "R1").name == "S->R1"
        assert len(mesh.links) == 4
        assert set(mesh.nodes) == {"S", "R1", "R2", "C"}

    def test_duplicate_link_rejected(self):
        mesh = diamond_mesh()
        with pytest.raises(TopologyError):
            mesh.add_link("S", "R1", "calm")

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlayMesh().add_link("a", "b", "nope")

    def test_profile_instance_accepted(self):
        mesh = OverlayMesh()
        link = mesh.add_link("a", "b", PROFILES["calm"])
        assert link.profile.name == "calm"

    def test_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            LogicalLink(src="a", dst="a", profile=PROFILES["calm"])

    def test_unknown_link_lookup(self):
        with pytest.raises(TopologyError):
            diamond_mesh().link("R1", "S")


class TestRoutes:
    def test_two_disjoint_routes(self):
        routes = diamond_mesh().routes("S", "C", k=2)
        middles = {route[1] for route in routes}
        assert middles == {"R1", "R2"}

    def test_insufficient_routes(self):
        with pytest.raises(TopologyError):
            diamond_mesh().routes("S", "C", k=3)

    def test_unknown_endpoint(self):
        with pytest.raises(TopologyError):
            diamond_mesh().routes("S", "ghost")


class TestRealization:
    def test_series_shapes_and_bounds(self):
        mesh = diamond_mesh()
        r = mesh.realize(seed=1, duration=20.0, dt=0.1)
        assert r.n_intervals == 200
        for link in mesh.links:
            series = r.link_series(link.src, link.dst)
            assert series.shape == (200,)
            assert np.all((series >= 0) & (series <= link.capacity_mbps))

    def test_deterministic(self):
        mesh = diamond_mesh()
        a = mesh.realize(seed=5, duration=10.0, dt=0.1)
        b = mesh.realize(seed=5, duration=10.0, dt=0.1)
        assert np.array_equal(
            a.link_series("S", "R1"), b.link_series("S", "R1")
        )

    def test_links_independent(self):
        mesh = diamond_mesh()
        r = mesh.realize(seed=5, duration=10.0, dt=0.1)
        assert not np.array_equal(
            r.link_series("S", "R1"), r.link_series("R1", "C")
        )

    def test_bottleneck_composition(self):
        mesh = OverlayMesh()
        mesh.add_link("S", "R", "calm", capacity_mbps=100.0)
        mesh.add_link("R", "C", "calm", capacity_mbps=30.0)
        r = mesh.realize(seed=2, duration=10.0, dt=0.1)
        route = r.route_bottleneck_series(["S", "R", "C"])
        assert np.all(route <= r.link_series("R", "C") + 1e-12)
        assert np.all(route <= r.link_series("S", "R") + 1e-12)

    def test_short_route_rejected(self):
        mesh = diamond_mesh()
        r = mesh.realize(seed=2, duration=5.0, dt=0.1)
        with pytest.raises(TopologyError):
            r.route_bottleneck_series(["S"])

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            diamond_mesh().realize(seed=1, duration=0.0, dt=0.1)
