"""Overlay multicast distribution."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.overlay.mesh import OverlayMesh
from repro.overlay.multicast import (
    MulticastTree,
    multicast_guaranteed_rate,
    run_multicast_session,
)


def fan_mesh() -> OverlayMesh:
    """S -> R -> {C1 (calm link), C2 (noisy link)}."""
    mesh = OverlayMesh()
    mesh.add_link("S", "R", "calm")
    mesh.add_link("R", "C1", "calm")
    mesh.add_link("R", "C2", "abilene-noisy")
    return mesh


def fan_tree() -> MulticastTree:
    return MulticastTree(
        source="S",
        children={"S": ("R",), "R": ("C1", "C2"), "C1": (), "C2": ()},
    )


@pytest.fixture(scope="module")
def realization():
    return fan_mesh().realize(seed=6, duration=60.0, dt=0.1)


class TestTree:
    def test_leaves(self):
        assert fan_tree().leaves == ["C1", "C2"]

    def test_paths_to_leaves(self):
        paths = fan_tree().paths_to_leaves()
        assert paths == {"C1": ["S", "R", "C1"], "C2": ["S", "R", "C2"]}

    def test_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            MulticastTree(
                source="S",
                children={"S": ("A", "B"), "A": ("B",), "B": ()},
            )

    def test_source_must_be_present(self):
        with pytest.raises(ConfigurationError):
            MulticastTree(source="S", children={"X": ()})


class TestGuaranteedRate:
    def test_rate_bounded_by_weakest_leaf(self, realization):
        rate = multicast_guaranteed_rate(realization, fan_tree(), 0.95)
        from repro.core.guarantees import guaranteed_rate_at
        from repro.monitoring.cdf import EmpiricalCDF

        noisy_leaf = guaranteed_rate_at(
            EmpiricalCDF(
                realization.route_bottleneck_series(["S", "R", "C2"])
            ),
            0.95,
        )
        assert rate == pytest.approx(noisy_leaf)

    def test_higher_probability_lower_rate(self, realization):
        r95 = multicast_guaranteed_rate(realization, fan_tree(), 0.95)
        r70 = multicast_guaranteed_rate(realization, fan_tree(), 0.70)
        assert r95 <= r70


class TestSession:
    def test_paced_rate_reaches_every_client(self, realization):
        rate = multicast_guaranteed_rate(realization, fan_tree(), 0.95)
        result = run_multicast_session(realization, fan_tree(), rate)
        for client in ("C1", "C2"):
            assert result.client_attainment(client, rate) >= 0.93, client
            assert result.dropped_bytes[client] == 0.0

    def test_overdriven_rate_starves_the_weak_subtree(self, realization):
        # Push at the strong leaf's sustainable rate: the noisy subtree
        # cannot keep up (drops at the bounded buffer) while C1 is fine.
        from repro.core.guarantees import guaranteed_rate_at
        from repro.monitoring.cdf import EmpiricalCDF

        strong = guaranteed_rate_at(
            EmpiricalCDF(
                realization.route_bottleneck_series(["S", "R", "C1"])
            ),
            0.95,
        )
        result = run_multicast_session(
            realization,
            fan_tree(),
            strong,
            node_buffer_bytes=2_000_000,
        )
        assert result.client_attainment("C1", strong) >= 0.9
        assert result.client_attainment("C2", strong) < 0.7
        assert result.dropped_bytes["C2"] > 0

    def test_delivery_conserves_rate(self, realization):
        result = run_multicast_session(realization, fan_tree(), 5.0)
        for client in ("C1", "C2"):
            assert result.delivered_mbps[client].mean() == pytest.approx(
                5.0, rel=0.02
            )

    def test_unknown_client_rejected(self, realization):
        result = run_multicast_session(realization, fan_tree(), 5.0)
        with pytest.raises(ConfigurationError):
            result.client_attainment("ghost", 1.0)

    def test_bad_rate_rejected(self, realization):
        with pytest.raises(ConfigurationError):
            run_multicast_session(realization, fan_tree(), 0.0)
