"""In-transit reduction operators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.overlay.mesh import OverlayMesh
from repro.overlay.operators import (
    ReductionOperator,
    run_processed_relay,
)


def tight_mesh() -> OverlayMesh:
    """S -> R -> C where the second hop cannot carry the full stream."""
    mesh = OverlayMesh()
    mesh.add_link("S", "R", "calm")                      # ~80 Mbps residual
    mesh.add_link("R", "C", "calm", capacity_mbps=45.0)  # ~25 Mbps residual
    return mesh


@pytest.fixture(scope="module")
def realization():
    return tight_mesh().realize(seed=14, duration=60.0, dt=0.1)


HALVER = ReductionOperator(name="downsample-2x", ratio=0.5, fidelity=0.7)


class TestOperator:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReductionOperator(name="bad", ratio=0.0, fidelity=0.5)
        with pytest.raises(ConfigurationError):
            ReductionOperator(name="bad", ratio=0.5, fidelity=1.5)


class TestProcessedRelay:
    def test_unprocessed_overload_stalls(self, realization):
        # 40 Mbps into a ~25 Mbps second hop without an operator: the
        # router drowns and effective delivery saturates at the hop rate.
        result = run_processed_relay(
            realization, ["S", "R", "C"], injection_mbps=40.0
        )
        assert result.delivered_mbps.mean() < 30.0
        assert result.mean_fidelity == 1.0
        assert result.reduced_fraction == 0.0

    def test_operator_restores_timeliness_at_fidelity_cost(self, realization):
        plain = run_processed_relay(
            realization, ["S", "R", "C"], injection_mbps=40.0
        )
        processed = run_processed_relay(
            realization,
            ["S", "R", "C"],
            injection_mbps=40.0,
            operators={"R": HALVER},
        )
        # Reduction engaged and fidelity dropped accordingly...
        assert processed.reduced_fraction > 0.5
        assert 0.7 <= processed.mean_fidelity < 1.0
        # ...but the router queue is far smaller than without it.
        assert (
            processed.peak_queue_bytes["R"]
            < plain.peak_queue_bytes["R"] / 2
        )

    def test_no_pressure_no_reduction(self, realization):
        # 10 Mbps fits the tight hop: the operator should never engage.
        result = run_processed_relay(
            realization,
            ["S", "R", "C"],
            injection_mbps=10.0,
            operators={"R": HALVER},
        )
        assert result.reduced_fraction < 0.05
        assert result.mean_fidelity > 0.98
        assert result.delivered_mbps.mean() == pytest.approx(10.0, rel=0.03)

    def test_operator_node_must_be_intermediate(self, realization):
        with pytest.raises(ConfigurationError, match="intermediate"):
            run_processed_relay(
                realization,
                ["S", "R", "C"],
                injection_mbps=10.0,
                operators={"S": HALVER},
            )

    def test_bad_rate_rejected(self, realization):
        with pytest.raises(ConfigurationError):
            run_processed_relay(realization, ["S", "R", "C"], 0.0)

    def test_short_route_rejected(self, realization):
        with pytest.raises(ConfigurationError):
            run_processed_relay(realization, ["S"], 10.0)
