"""Store-and-forward relaying: pacing keeps router queues bounded."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.guarantees import guaranteed_rate_at
from repro.monitoring.cdf import EmpiricalCDF
from repro.overlay.forwarding import RelayStream, run_relay_session
from repro.overlay.mesh import OverlayMesh


def chain_mesh(first="calm", second="abilene-moderate") -> OverlayMesh:
    """S -> R -> C with a fat first hop and a tighter second hop."""
    mesh = OverlayMesh()
    mesh.add_link("S", "R", first)
    mesh.add_link("R", "C", second)
    return mesh


@pytest.fixture(scope="module")
def realization():
    return chain_mesh().realize(seed=9, duration=60.0, dt=0.1)


class TestBasics:
    def test_paced_stream_delivered_in_full(self, realization):
        result = run_relay_session(
            realization, ["S", "R", "C"], [RelayStream("s", 10.0)]
        )
        assert result.delivered_mean("s") == pytest.approx(10.0, rel=0.02)

    def test_conservation_no_drops(self, realization):
        result = run_relay_session(
            realization, ["S", "R", "C"], [RelayStream("s", 10.0)]
        )
        injected = 10.0 * realization.n_intervals
        delivered = result.delivered_mbps["s"].sum()
        # Whatever was not delivered is still queued, never lost.
        assert delivered <= injected + 1e-6
        assert result.dropped_bytes["s"] == 0.0

    def test_two_streams_share_fifo(self, realization):
        result = run_relay_session(
            realization,
            ["S", "R", "C"],
            [RelayStream("a", 8.0), RelayStream("b", 8.0)],
        )
        assert result.delivered_mean("a") == pytest.approx(
            result.delivered_mean("b"), rel=0.05
        )

    def test_validation(self, realization):
        with pytest.raises(ConfigurationError):
            run_relay_session(realization, ["S"], [RelayStream("s", 1.0)])
        with pytest.raises(ConfigurationError):
            run_relay_session(realization, ["S", "R", "C"], [])
        with pytest.raises(ConfigurationError):
            run_relay_session(
                realization,
                ["S", "R", "C"],
                [RelayStream("s", 1.0), RelayStream("s", 2.0)],
            )
        with pytest.raises(ConfigurationError):
            RelayStream("s", 0.0)


class TestPacingClaim:
    """Scheduling against the end-to-end distribution bounds router queues."""

    def test_statistically_paced_source_keeps_router_queue_small(
        self, realization
    ):
        # Pace at the rate the end-to-end distribution sustains 95 % of
        # the time — what PGOS's Lemma-1 machinery would prescribe.
        route = ["S", "R", "C"]
        e2e = EmpiricalCDF(realization.route_bottleneck_series(route))
        paced_rate = guaranteed_rate_at(e2e, 0.95)
        paced = run_relay_session(
            realization, route, [RelayStream("s", paced_rate)]
        )
        greedy = run_relay_session(
            realization, route, [RelayStream("s", None)]
        )
        # The greedy source floods the router ahead of the bottleneck.
        assert (
            greedy.peak_queue_bytes["R"]
            > 10 * max(paced.peak_queue_bytes["R"], 1.0)
        )
        assert paced.delivered_mean("s") == pytest.approx(
            paced_rate, rel=0.02
        )

    def test_greedy_throughput_capped_by_bottleneck(self, realization):
        greedy = run_relay_session(
            realization, ["S", "R", "C"], [RelayStream("s", None)]
        )
        bottleneck = realization.link_series("R", "C").mean()
        assert greedy.delivered_mean("s") <= bottleneck * 1.02

    def test_bounded_router_buffer_drops_overflow(self, realization):
        greedy = run_relay_session(
            realization,
            ["S", "R", "C"],
            [RelayStream("s", None)],
            router_buffer_bytes=1_000_000,
        )
        assert greedy.dropped_bytes["s"] > 0
        assert greedy.peak_queue_bytes["R"] <= 1_000_000 + 1e-6
