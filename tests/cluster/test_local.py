"""Partition slices, the canonical merge, and the in-process baseline."""

import pytest

from repro.cluster.local import run_partitioned
from repro.errors import ConfigurationError
from repro.workload import merge_report_payloads, merged_checksum
from repro.workload.scenarios import (
    make_scenario,
    partition_ids,
    run_partition_slice,
)

SCENARIO = make_scenario("baseline", duration=8.0)
MAX_SESSIONS = 24


def _slice_payloads(seed=0):
    return {
        partition: run_partition_slice(
            SCENARIO, partition, seed=seed, max_sessions=MAX_SESSIONS
        ).to_dict()
        for partition in partition_ids()
    }


class TestSlices:
    def test_slices_cover_the_full_plan_exactly_once(self):
        payloads = _slice_payloads()
        indices = sorted(
            s["index"]
            for payload in payloads.values()
            for s in payload["sessions"]
        )
        assert indices == list(range(MAX_SESSIONS))

    def test_each_slice_holds_only_its_tenant(self):
        for partition, payload in _slice_payloads().items():
            assert set(payload["tenants"]) <= {partition}
            assert all(
                s["tenant"] == partition for s in payload["sessions"]
            )

    def test_slice_is_deterministic(self):
        a = run_partition_slice(
            SCENARIO, "gold", seed=3, max_sessions=MAX_SESSIONS
        )
        b = run_partition_slice(
            SCENARIO, "gold", seed=3, max_sessions=MAX_SESSIONS
        )
        assert a.to_dict() == b.to_dict()

    def test_unknown_partition_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown partition"):
            run_partition_slice(SCENARIO, "platinum")


class TestMerge:
    def test_merge_sums_counters_and_sorts_sessions(self):
        payloads = _slice_payloads()
        merged = merge_report_payloads(payloads)
        assert merged["offered"] == sum(
            p["offered"] for p in payloads.values()
        )
        assert merged["partitions"] == sorted(payloads)
        keys = [
            (s["tenant"], s["index"]) for s in merged["sessions"]
        ]
        assert keys == sorted(keys)

    def test_merge_is_independent_of_input_order(self):
        payloads = _slice_payloads()
        reversed_view = dict(sorted(payloads.items(), reverse=True))
        assert merged_checksum(
            merge_report_payloads(payloads)
        ) == merged_checksum(merge_report_payloads(reversed_view))

    def test_merge_never_embeds_shard_count(self):
        merged = merge_report_payloads(_slice_payloads())
        assert "shards" not in merged

    def test_empty_merge_rejected(self):
        with pytest.raises(ConfigurationError, match="zero"):
            merge_report_payloads({})

    def test_invariant_disagreement_rejected(self):
        payloads = _slice_payloads()
        payloads["gold"] = dict(payloads["gold"], seed=99)
        with pytest.raises(ConfigurationError, match="disagree on 'seed'"):
            merge_report_payloads(payloads)

    def test_overlapping_tenants_rejected(self):
        payloads = _slice_payloads()
        payloads["bronze"] = dict(payloads["gold"])
        with pytest.raises(ConfigurationError, match="more than one"):
            merge_report_payloads(payloads)


class TestBaseline:
    def test_run_partitioned_equals_manual_slice_merge(self):
        report = run_partitioned(
            "baseline", seed=0, duration=8.0, max_sessions=MAX_SESSIONS
        )
        manual = merge_report_payloads(_slice_payloads())
        assert report.merged == manual
        assert report.checksum() == merged_checksum(manual)

    def test_baseline_totals_match_session_population(self):
        report = run_partitioned(
            "baseline", seed=0, duration=8.0, max_sessions=MAX_SESSIONS
        )
        assert report.offered == MAX_SESSIONS
        assert len(report.merged["sessions"]) == MAX_SESSIONS
