"""Frame codec and message contract of the cluster wire protocol."""

import io

import pytest

from repro.cluster import protocol
from repro.errors import ClusterProtocolError


def _round_trip(message):
    stream = io.BytesIO()
    protocol.write_frame(stream, message)
    stream.seek(0)
    return protocol.read_frame(stream)


class TestFrames:
    def test_round_trip(self):
        message = protocol.hello(3, 1234, "abc123")
        assert _round_trip(message) == message

    def test_encoding_is_deterministic(self):
        a = protocol.encode_frame({"type": "x", "b": 1, "a": 2})
        b = protocol.encode_frame({"type": "x", "a": 2, "b": 1})
        assert a == b

    def test_length_prefix_is_big_endian_4_bytes(self):
        frame = protocol.encode_frame({"type": "x"})
        assert int.from_bytes(frame[:4], "big") == len(frame) - 4

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_truncated_header_raises(self):
        with pytest.raises(ClusterProtocolError, match="truncated"):
            protocol.read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_body_raises(self):
        frame = protocol.encode_frame({"type": "x"})
        with pytest.raises(ClusterProtocolError, match="truncated"):
            protocol.read_frame(io.BytesIO(frame[:-2]))

    def test_absurd_length_rejected_before_read(self):
        header = (protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(ClusterProtocolError, match="length"):
            protocol.read_frame(io.BytesIO(header))

    def test_zero_length_rejected(self):
        with pytest.raises(ClusterProtocolError, match="length"):
            protocol.read_frame(io.BytesIO(b"\x00\x00\x00\x00"))

    def test_non_json_body_rejected(self):
        body = b"not json"
        stream = io.BytesIO(len(body).to_bytes(4, "big") + body)
        with pytest.raises(ClusterProtocolError, match="undecodable"):
            protocol.read_frame(stream)

    def test_untyped_message_rejected(self):
        body = b'{"a": 1}'
        stream = io.BytesIO(len(body).to_bytes(4, "big") + body)
        with pytest.raises(ClusterProtocolError, match="typed"):
            protocol.read_frame(stream)

    def test_multiple_frames_in_sequence(self):
        stream = io.BytesIO()
        protocol.write_frame(stream, protocol.epoch_go(0, 1))
        protocol.write_frame(stream, protocol.epoch_done(0, 1, 20))
        stream.seek(0)
        assert protocol.read_frame(stream)["type"] == "epoch_go"
        assert protocol.read_frame(stream)["type"] == "epoch_done"
        assert protocol.read_frame(stream) is None


class TestExpect:
    def test_matching_type_passes_through(self):
        message = protocol.welcome()
        assert protocol.expect(message, "welcome") is message

    def test_mismatch_raises_with_both_types(self):
        with pytest.raises(ClusterProtocolError, match="welcome.*hello"):
            protocol.expect(protocol.hello(0, 1, "f"), "welcome")

    def test_none_raises_eof_flavored(self):
        with pytest.raises(ClusterProtocolError, match="closed"):
            protocol.expect(None, "welcome")

    def test_peer_error_is_surfaced_verbatim(self):
        with pytest.raises(ClusterProtocolError, match="shard on fire"):
            protocol.expect(protocol.error("shard on fire"), "welcome")

    def test_expected_error_passes_through(self):
        message = protocol.error("fine")
        assert protocol.expect(message, "error") is message
