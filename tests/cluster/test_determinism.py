"""Satellite: byte-identity of the merged report across shard counts.

The cluster's core contract: the merged report is a pure function of
(scenario, seed) — shard count, placement, and process boundaries must
never leak into it.  Every case below compares full payload dicts and
checksums, not summaries.
"""

import pytest

from repro.cluster import run_cluster_scenario, run_partitioned

DURATION = 6.0
MAX_SESSIONS = 24
EPOCH_S = 2.0
SHARD_COUNTS = (1, 2, 4)


def _cluster(scenario, shards, seed=0):
    return run_cluster_scenario(
        scenario,
        seed=seed,
        shards=shards,
        duration=DURATION,
        max_sessions=MAX_SESSIONS,
        epoch_s=EPOCH_S,
    )


class TestShardCountInvariance:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_baseline_scenario_matches_in_process(self, shards):
        report = _cluster("baseline", shards)
        baseline = run_partitioned(
            "baseline", seed=0, duration=DURATION, max_sessions=MAX_SESSIONS
        )
        assert report.merged == baseline.merged
        assert report.checksum() == baseline.checksum()

    def test_all_shard_counts_agree_with_each_other(self):
        checksums = {
            shards: _cluster("baseline", shards).checksum()
            for shards in SHARD_COUNTS
        }
        assert len(set(checksums.values())) == 1

    def test_repeated_runs_are_byte_identical(self):
        first = _cluster("baseline", 2)
        second = _cluster("baseline", 2)
        assert first.merged == second.merged
        assert first.checksum() == second.checksum()


class TestFaultCampaignInvariance:
    """A mid-run FaultCampaign (flash-crowd-chaos) must shard cleanly too."""

    @pytest.mark.parametrize("shards", (1, 2))
    def test_chaos_scenario_matches_in_process(self, shards):
        report = run_cluster_scenario(
            "flash-crowd-chaos",
            seed=7,
            shards=shards,
            duration=DURATION,
            max_sessions=MAX_SESSIONS,
            epoch_s=EPOCH_S,
        )
        baseline = run_partitioned(
            "flash-crowd-chaos",
            seed=7,
            duration=DURATION,
            max_sessions=MAX_SESSIONS,
        )
        assert report.merged == baseline.merged
        assert report.checksum() == baseline.checksum()


class TestSeedSensitivity:
    def test_different_seeds_diverge(self):
        assert (
            _cluster("baseline", 2, seed=0).checksum()
            != _cluster("baseline", 2, seed=1).checksum()
        )
