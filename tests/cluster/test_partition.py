"""Rendezvous placement and the epoch schedule."""

import pytest

from repro.cluster.epochs import (
    epoch_boundaries,
    epochs_completed,
    total_steps,
)
from repro.cluster.partition import partition_map, shard_of
from repro.errors import ConfigurationError
from repro.workload.scenarios import partition_ids


class TestShardOf:
    def test_deterministic(self):
        assert shard_of("gold", 4) == shard_of("gold", 4)

    def test_within_range(self):
        for shards in (1, 2, 3, 4, 7):
            for name in ("gold", "silver", "bronze", "tenant-x"):
                assert 0 <= shard_of(name, shards) < shards

    def test_single_shard_owns_everything(self):
        assert shard_of("anything", 1) == 0

    def test_rendezvous_stability_under_growth(self):
        # HRW's defining property: adding shards only ever moves a
        # partition *to a new shard*, never shuffles it between old
        # ones.
        names = [f"tenant-{i}" for i in range(50)]
        for n in (2, 3, 5, 8):
            for name in names:
                before = shard_of(name, n)
                after = shard_of(name, n + 1)
                assert after in (before, n)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            shard_of("gold", 0)
        with pytest.raises(ConfigurationError):
            shard_of("", 2)


class TestPartitionMap:
    def test_default_tenants_spread_across_four_shards(self):
        owners = partition_map(partition_ids(), 4)
        # The salt is chosen so the stock catalog parallelizes fully.
        assert len(owners) == 3
        assert sorted(
            p for owned in owners.values() for p in owned
        ) == ["bronze", "gold", "silver"]

    def test_default_tenants_split_across_two_shards(self):
        owners = partition_map(partition_ids(), 2)
        assert len(owners) == 2

    def test_idle_shards_omitted(self):
        owners = partition_map(["gold"], 8)
        assert len(owners) == 1

    def test_duplicate_partition_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            partition_map(["gold", "gold"], 2)


class TestEpochSchedule:
    def test_boundaries_end_at_total_steps(self):
        boundaries = epoch_boundaries(10.0, 2.0)
        assert boundaries == [20, 40, 60, 80, 100]
        assert boundaries[-1] == total_steps(10.0)

    def test_short_final_epoch(self):
        assert epoch_boundaries(5.0, 2.0) == [20, 40, 50]

    def test_single_epoch_when_epoch_exceeds_duration(self):
        assert epoch_boundaries(3.0, 60.0) == [30]

    def test_epochs_completed_counts_full_epochs_only(self):
        boundaries = [20, 40, 50]
        assert epochs_completed(boundaries, 0) == 0
        assert epochs_completed(boundaries, 19) == 0
        assert epochs_completed(boundaries, 20) == 1
        assert epochs_completed(boundaries, 49) == 2
        assert epochs_completed(boundaries, 50) == 3

    def test_epoch_smaller_than_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            epoch_boundaries(10.0, 0.01)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            total_steps(0.0)
