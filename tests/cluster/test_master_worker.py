"""Master/worker integration: protocol, supervision, runner task."""

import pytest

from repro.cluster import run_cluster_scenario, run_partitioned
from repro.cluster.master import ClusterMaster
from repro.errors import ClusterError
from repro.obs.context import Observability
from repro.runner.spec import RunSpec
from repro.runner.tasks import execute_spec

DURATION = 6.0
MAX_SESSIONS = 24
EPOCH_S = 2.0


def _baseline():
    return run_partitioned(
        "baseline", seed=0, duration=DURATION, max_sessions=MAX_SESSIONS
    )


def test_two_shard_run_matches_in_process_baseline():
    report = run_cluster_scenario(
        "baseline",
        seed=0,
        shards=2,
        duration=DURATION,
        max_sessions=MAX_SESSIONS,
        epoch_s=EPOCH_S,
    )
    baseline = _baseline()
    assert report.merged == baseline.merged
    assert report.checksum() == baseline.checksum()
    assert report.shards == 2


def test_sigkilled_shard_is_respawned_and_resumes(tmp_path):
    obs = Observability()
    report = run_cluster_scenario(
        "baseline",
        seed=0,
        shards=2,
        duration=DURATION,
        max_sessions=MAX_SESSIONS,
        epoch_s=EPOCH_S,
        checkpoint_root=tmp_path / "cluster",
        kill_at_epoch={0: 1},
        obs=obs,
    )
    assert report.telemetry["respawns"] == 1
    assert report.merged == _baseline().merged
    names = [
        e.name for e in obs.trace.events() if e.category == "cluster"
    ]
    assert "shard_exit" in names
    assert "shard_respawn" in names
    assert "merge" in names


def test_respawn_budget_exhaustion_raises(tmp_path):
    # Epoch 0 re-arms on every incarnation only if the master passed
    # the kill back — it never does, so exhaustion needs a shard that
    # dies during the *handshake*.  Simulate by killing more often than
    # the budget allows: budget 0 means the first death is fatal.
    with pytest.raises(ClusterError, match="respawn budget"):
        run_cluster_scenario(
            "baseline",
            seed=0,
            shards=2,
            duration=DURATION,
            max_sessions=MAX_SESSIONS,
            epoch_s=EPOCH_S,
            checkpoint_root=tmp_path / "cluster",
            kill_at_epoch={0: 0},
            max_respawns=0,
        )


def test_master_reuses_fleet_across_jobs():
    with ClusterMaster(
        scenario="baseline",
        seed=0,
        shards=2,
        epoch_s=EPOCH_S,
        max_sessions=MAX_SESSIONS,
    ) as master:
        first = master.run(duration=DURATION)
        pids = {
            s.proc.pid for s in master._fleet.values()
        }
        second = master.run(duration=DURATION)
        assert {
            s.proc.pid for s in master._fleet.values()
        } == pids
    assert first.merged == second.merged


def test_cluster_trace_events_emitted():
    obs = Observability()
    run_cluster_scenario(
        "baseline",
        seed=0,
        shards=2,
        duration=DURATION,
        max_sessions=MAX_SESSIONS,
        epoch_s=EPOCH_S,
        obs=obs,
    )
    cluster_events = [
        e for e in obs.trace.events() if e.category == "cluster"
    ]
    names = {e.name for e in cluster_events}
    assert {"shard_spawn", "epoch_barrier", "merge"} <= names
    spawns = [e for e in cluster_events if e.name == "shard_spawn"]
    assert len(spawns) == 2


def test_runner_cluster_task_payload_checksum_is_shard_free():
    spec = RunSpec(
        kind="cluster",
        name="cluster-test",
        params={
            "scenario": "baseline",
            "shards": 2,
            "duration": DURATION,
            "max_sessions": MAX_SESSIONS,
        },
        seed=0,
    )
    payload = execute_spec(spec)
    assert payload["checksum"] == _baseline().checksum()
    assert payload["cluster"]["shards"] == 2
    assert "report" in payload
