"""Layered video application model."""

import numpy as np
import pytest

from repro.apps.video import (
    BASE_LAYER_MBPS,
    VideoQuality,
    layered_video_streams,
    playback_quality,
    run_video,
)


class TestStreams:
    def test_base_is_guaranteed(self):
        specs = {s.name: s for s in layered_video_streams()}
        assert specs["base"].guaranteed
        assert specs["base"].probability == 0.97
        assert specs["enhancement"].elastic

    def test_custom_rates(self):
        specs = layered_video_streams(base_mbps=1.0, enhancement_nominal=4.0)
        assert specs[0].required_mbps == 1.0
        assert specs[1].nominal_mbps == 4.0


class TestQualityModel:
    def _result(self, base, enh):
        from repro.harness.experiment import ExperimentResult

        n = len(base)
        return ExperimentResult(
            scheduler_name="X",
            dt=0.1,
            stream_names=["base", "enhancement"],
            path_names=["A"],
            delivered_mbps={
                "base": {"A": np.asarray(base, dtype=float)},
                "enhancement": {"A": np.asarray(enh, dtype=float)},
            },
            available_mbps={"A": np.full(n, 100.0)},
        )

    def test_full_quality(self):
        res = self._result([2.0] * 10, [12.0] * 10)
        q = playback_quality(res)
        assert q.stall_fraction == 0.0
        assert q.mean_quality == pytest.approx(1.0)

    def test_stall_when_base_short(self):
        res = self._result([2.0] * 5 + [1.0] * 5, [12.0] * 10)
        q = playback_quality(res)
        assert q.stall_fraction == pytest.approx(0.5)
        assert q.mean_quality == pytest.approx(0.5)

    def test_partial_enhancement(self):
        res = self._result([2.0] * 10, [6.0] * 10)
        q = playback_quality(res)
        assert q.mean_quality == pytest.approx(0.5)

    def test_describe(self):
        q = VideoQuality(stall_fraction=0.01, mean_quality=0.8, quality_std=0.1)
        assert "stalls=1.00%" in q.describe()


class TestVBRModel:
    def test_mean_rate_normalized(self, rng):
        from repro.apps.video import vbr_frame_sizes

        sizes = vbr_frame_sizes(
            duration=120.0, frame_rate=25.0, mean_mbps=4.0, rng=rng
        )
        rate = sizes.sum() * 8 / 120.0 / 1e6
        assert rate == pytest.approx(4.0, rel=1e-6)

    def test_variability_present(self, rng):
        from repro.apps.video import vbr_frame_sizes

        sizes = vbr_frame_sizes(
            duration=60.0, frame_rate=25.0, mean_mbps=4.0, rng=rng
        )
        assert sizes.std() / sizes.mean() > 0.2

    def test_scene_structure(self, rng):
        from repro.apps.video import vbr_frame_sizes

        # With certain scene changes off, block means over a scene length
        # vary much less than with scene changes on.
        calm = vbr_frame_sizes(
            60.0, 25.0, 4.0, np.random.default_rng(1), scene_change_prob=0.0
        )
        sceney = vbr_frame_sizes(
            60.0, 25.0, 4.0, np.random.default_rng(1), scene_change_prob=0.02
        )
        blocks = lambda x: x[: (len(x) // 50) * 50].reshape(-1, 50).mean(axis=1)
        assert blocks(sceney).std() > blocks(calm).std()

    def test_validation(self, rng):
        from repro.errors import ConfigurationError
        from repro.apps.video import vbr_frame_sizes

        with pytest.raises(ConfigurationError):
            vbr_frame_sizes(0.0, 25.0, 4.0, rng)
        with pytest.raises(ConfigurationError):
            vbr_frame_sizes(10.0, 25.0, 4.0, rng, scene_factor_range=(0, 2))


class TestStartupDelay:
    def test_zero_for_smooth_overprovisioned_delivery(self):
        from repro.apps.video import startup_delay_seconds

        x = np.full(100, 10.0)
        assert startup_delay_seconds(x, 0.1, 9.0) == 0.0

    def test_pgos_shorter_startup_than_msfq(self):
        from repro.apps.video import startup_delay_seconds
        from repro.apps.smartpointer import BOND1_MBPS, run_smartpointer

        kwargs = dict(seed=7, duration=90.0, warmup_intervals=250)
        pgos = run_smartpointer("PGOS", **kwargs).stream_series("Bond1")
        msfq = run_smartpointer("MSFQ", **kwargs).stream_series("Bond1")
        playout = BOND1_MBPS * 0.98
        assert startup_delay_seconds(pgos, 0.1, playout) < (
            startup_delay_seconds(msfq, 0.1, playout)
        )

    def test_empty_delivery_rejected(self):
        from repro.errors import ConfigurationError
        from repro.apps.video import startup_delay_seconds

        with pytest.raises(ConfigurationError):
            startup_delay_seconds(np.zeros(10), 0.1, 1.0)


class TestRun:
    def test_pgos_protects_base_layer(self):
        res = run_video("PGOS", seed=5, duration=60.0, warmup_intervals=200)
        q = playback_quality(res)
        assert q.stall_fraction <= 0.05
        base = res.stream_series("base")
        assert (base >= BASE_LAYER_MBPS * 0.999).mean() >= 0.95

    def test_pgos_smoother_than_wfq(self):
        kwargs = dict(seed=5, duration=60.0, warmup_intervals=200)
        pgos_q = playback_quality(run_video("PGOS", **kwargs))
        wfq_q = playback_quality(run_video("WFQ", **kwargs))
        assert pgos_q.stall_fraction <= wfq_q.stall_fraction

    def test_warmup_validation(self):
        import pytest as _pytest

        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            run_video("PGOS", duration=10.0, warmup_intervals=200)
