"""GridFTP application model (Section 6.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.apps.gridftp import (
    DT1_MBPS,
    DT2_MBPS,
    DT3_MBPS,
    DataLayout,
    GridFTPScheduler,
    gridftp_streams,
    records_per_second,
    run_gridftp,
)
from repro.core.scheduler import water_fill


class TestWorkload:
    def test_component_rates(self):
        assert DT1_MBPS == pytest.approx(34.56)
        assert DT2_MBPS == pytest.approx(25.60)
        assert DT3_MBPS == pytest.approx(76.80)

    def test_stream_specs(self):
        specs = {s.name: s for s in gridftp_streams()}
        assert specs["DT1"].probability == 0.95
        assert specs["DT2"].probability == 0.95
        assert specs["DT3"].elastic


class TestGridFTPScheduler:
    def test_even_split_across_connections(self):
        scheduler = GridFTPScheduler()
        scheduler.setup(gridftp_streams(), ["A", "B"], 0.1, 1.0)
        requests = scheduler.allocate(
            0, {"DT1": DT1_MBPS, "DT2": DT2_MBPS, "DT3": None}
        )
        dt1_a = next(r for r in requests["A"] if r.stream == "DT1")
        assert dt1_a.demand_mbps == pytest.approx(DT1_MBPS / 2)

    def test_no_differentiation(self):
        scheduler = GridFTPScheduler()
        scheduler.setup(gridftp_streams(), ["A", "B"], 0.1, 1.0)
        requests = scheduler.allocate(
            0, {"DT1": DT1_MBPS, "DT2": DT2_MBPS, "DT3": None}
        )
        assert {r.level for r in requests["A"]} == {0}

    def test_dip_hits_all_components(self):
        # The paper's point: at 80 % capacity everyone loses ~20 %.
        scheduler = GridFTPScheduler()
        scheduler.setup(gridftp_streams(), ["A", "B"], 0.1, 1.0)
        requests = scheduler.allocate(
            0, {"DT1": DT1_MBPS, "DT2": DT2_MBPS, "DT3": None}
        )
        per_path_demand = (DT1_MBPS + DT2_MBPS + DT3_MBPS) / 2
        granted = water_fill(requests["A"], per_path_demand * 0.8)
        assert granted["DT1"] < DT1_MBPS / 2
        assert granted["DT2"] < DT2_MBPS / 2

    def test_pgos_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            GridFTPScheduler(DataLayout.PGOS)


class TestRun:
    def test_iqpg_meets_record_rate(self):
        res = run_gridftp("IQPG", seed=3, duration=60.0, warmup_intervals=200)
        assert records_per_second(res, "DT1") == pytest.approx(25.0, rel=0.01)
        assert records_per_second(res, "DT2") == pytest.approx(25.0, rel=0.01)

    def test_iqpg_stabler_than_gridftp(self):
        kwargs = dict(seed=3, duration=60.0, warmup_intervals=200)
        iqpg = run_gridftp("IQPG", **kwargs)
        gftp = run_gridftp("GridFTP", **kwargs)
        assert (
            iqpg.stream_series("DT1").std() < gftp.stream_series("DT1").std()
        )

    def test_partitioned_layout_runs(self):
        res = run_gridftp(
            "Partitioned", seed=3, duration=40.0, warmup_intervals=100
        )
        assert res.scheduler_name == "GridFTP-Partitioned"

    def test_optsched_runs(self):
        res = run_gridftp("OptSched", seed=3, duration=40.0, warmup_intervals=100)
        assert records_per_second(res, "DT1") == pytest.approx(25.0, rel=0.02)

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            run_gridftp("FancyFTP", duration=10.0, warmup_intervals=10)

    def test_records_per_second_unknown_component(self):
        res = run_gridftp("GridFTP", seed=3, duration=20.0, warmup_intervals=50)
        with pytest.raises(ConfigurationError):
            records_per_second(res, "DT9")
