"""SmartPointer application model (Section 6.1)."""

import pytest

from repro.errors import ConfigurationError
from repro.apps.smartpointer import (
    ATOM_MBPS,
    BOND1_MBPS,
    frame_bytes,
    make_scheduler,
    run_smartpointer,
    smartpointer_streams,
)


class TestStreams:
    def test_paper_requirements(self):
        streams = {s.name: s for s in smartpointer_streams()}
        assert streams["Atom"].required_mbps == pytest.approx(3.249)
        assert streams["Atom"].probability == 0.95
        assert streams["Bond1"].required_mbps == pytest.approx(22.148)
        assert streams["Bond1"].probability == 0.95
        assert streams["Bond2"].elastic
        assert not streams["Bond2"].guaranteed

    def test_frame_bytes_at_25fps(self):
        # 3.249 Mbps at 25 fps = 16245 bytes per frame.
        assert frame_bytes(ATOM_MBPS) == pytest.approx(16_245.0)

    def test_frame_bytes_validation(self):
        with pytest.raises(ConfigurationError):
            frame_bytes(1.0, frame_rate=0.0)


class TestSchedulerFactory:
    @pytest.mark.parametrize(
        "name", ["WFQ", "MSFQ", "PGOS", "OptSched", "MeanPred"]
    )
    def test_all_algorithms_available(self, name):
        assert make_scheduler(name).name in (name, "PGOS")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            make_scheduler("FancyQ")


class TestRun:
    def test_pgos_meets_guarantees(self):
        res = run_smartpointer("PGOS", seed=3, duration=60.0, warmup_intervals=200)
        atom = res.stream_series("Atom")
        bond1 = res.stream_series("Bond1")
        assert (atom >= ATOM_MBPS * 0.999).mean() >= 0.95
        assert (bond1 >= BOND1_MBPS * 0.999).mean() >= 0.95

    def test_result_dimensions(self):
        res = run_smartpointer("WFQ", seed=3, duration=40.0, warmup_intervals=100)
        assert res.stream_names == ["Atom", "Bond1", "Bond2"]
        assert res.path_names == ["A", "B"]
        assert res.n_intervals == 300  # 400 total - 100 warmup

    def test_accepts_prebuilt_scheduler(self):
        from repro.core.pgos import PGOSScheduler

        res = run_smartpointer(
            PGOSScheduler(), seed=3, duration=40.0, warmup_intervals=100
        )
        assert res.scheduler_name == "PGOS"

    def test_deterministic(self):
        import numpy as np

        r1 = run_smartpointer("MSFQ", seed=9, duration=40.0, warmup_intervals=100)
        r2 = run_smartpointer("MSFQ", seed=9, duration=40.0, warmup_intervals=100)
        assert np.array_equal(
            r1.stream_series("Bond1"), r2.stream_series("Bond1")
        )
