"""The topology parameter through the full stack: workload + cluster.

These are the acceptance-criteria properties in test form: generated
topologies run churn end to end, byte-deterministic per seed, identical
across simulation backends and cluster shard counts, and the traffic
scenarios move the operating point measurably.
"""

import pytest

from repro.cluster.local import run_partitioned
from repro.errors import ConfigurationError
from repro.runner.suite import topo_suite, workload_spec
from repro.workload.scenarios import make_scenario, run_scenario

_FAST = dict(seed=0, duration=8.0, max_sessions=30)


class TestScenarioTopology:
    def test_make_scenario_carries_topology(self):
        scenario = make_scenario("baseline", topology="fat_tree_k4")
        assert scenario.topology == "fat_tree_k4"

    def test_bad_topology_fails_fast(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            make_scenario("baseline", topology="moebius_strip")

    @pytest.mark.parametrize(
        "preset", ["fat_tree_k4", "leaf_spine_4x8", "repetita_wan_s0"]
    )
    def test_churn_runs_deterministically(self, preset):
        a = run_scenario("baseline", topology=preset, **_FAST)
        b = run_scenario("baseline", topology=preset, **_FAST)
        assert a.checksum() == b.checksum()
        assert a.offered > 0

    def test_topologies_produce_distinct_reports(self):
        checksums = {
            run_scenario("baseline", topology=preset, **_FAST).checksum()
            for preset in (
                None, "fat_tree_k4", "leaf_spine_4x8", "repetita_wan_s0"
            )
        }
        assert len(checksums) == 4

    def test_backends_byte_identical_on_generated_topology(self):
        scalar = run_scenario(
            "baseline", topology="leaf_spine_2x4",
            sim_backend="scalar", **_FAST,
        )
        vectorized = run_scenario(
            "baseline", topology="leaf_spine_2x4",
            sim_backend="vectorized", **_FAST,
        )
        assert scalar.checksum() == vectorized.checksum()

    def test_traffic_scenarios_shift_the_report(self):
        nlanr = run_scenario(
            "baseline", topology="fat_tree_k4:nlanr", **_FAST
        )
        incast = run_scenario(
            "baseline", topology="fat_tree_k4:dc-incast", **_FAST
        )
        assert nlanr.checksum() != incast.checksum()


class TestClusterTopology:
    def test_partitioned_baseline_matches_single_process_totals(self):
        single = run_scenario(
            "baseline", topology="leaf_spine_2x4", **_FAST
        )
        merged = run_partitioned(
            "baseline", topology="leaf_spine_2x4", **_FAST
        )
        assert merged.offered == single.offered

    def test_partitioned_deterministic(self):
        a = run_partitioned("baseline", topology="fat_tree_k4", **_FAST)
        b = run_partitioned("baseline", topology="fat_tree_k4", **_FAST)
        assert a.checksum() == b.checksum()


class TestTopoSuite:
    def test_one_churn_one_envelope_per_preset(self):
        specs = topo_suite(fast=True)
        kinds = [spec.kind for spec in specs]
        assert kinds.count("workload") == 3
        assert kinds.count("envelope") == 3
        for spec in specs:
            assert "topology" in spec.params

    def test_traffic_variants_append_specs(self):
        specs = topo_suite(fast=True, traffic=("dc-incast",))
        assert any(
            spec.params["topology"].endswith(":dc-incast")
            for spec in specs
        )

    def test_topology_joins_spec_hash_only_when_set(self):
        plain = workload_spec("baseline", seed=0)
        assert "topology" not in plain.params
        topo = workload_spec("baseline", seed=0, topology="fat_tree_k4")
        assert topo.params["topology"] == "fat_tree_k4"
        assert plain.name != topo.name
