"""TopoSpec identity, presets, and reference parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.topo import (
    PRESETS,
    TopoSpec,
    build_testbed,
    parse_topology,
    resolve_topology,
)


class TestTopoSpec:
    def test_params_are_sorted_canonically(self):
        a = TopoSpec.make("leaf_spine", n_spine=2, n_leaf=4)
        b = TopoSpec.make("leaf_spine", n_leaf=4, n_spine=2)
        assert a == b
        assert a.checksum() == b.checksum()

    def test_checksum_covers_every_identity_field(self):
        base = TopoSpec.make("fat_tree", k=4)
        assert base.checksum() != TopoSpec.make("fat_tree", k=8).checksum()
        assert base.checksum() != base.with_traffic("dc-incast").checksum()
        assert (
            base.checksum()
            != TopoSpec.make("fat_tree", k=4, seed=1).checksum()
        )
        assert (
            base.checksum()
            != TopoSpec.make("fat_tree", k=4, n_paths=1).checksum()
        )

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ConfigurationError):
            TopoSpec.make("fat_tree", traffic="nope", k=4)

    def test_label_is_readable(self):
        label = TopoSpec.make("fat_tree", k=4).label()
        assert "fat_tree" in label and "k=4" in label


class TestPresets:
    def test_every_preset_builds(self):
        for name, spec in PRESETS.items():
            testbed = build_testbed(spec)
            assert len(testbed.paths) == spec.n_paths, name

    def test_acceptance_presets_exist(self):
        for name in ("fat_tree_k4", "leaf_spine_4x8", "repetita_wan_s0"):
            assert name in PRESETS


class TestParseTopology:
    def test_plain_preset(self):
        assert parse_topology("fat_tree_k4") == PRESETS["fat_tree_k4"]

    def test_traffic_suffix(self):
        spec = parse_topology("fat_tree_k4:dc-incast")
        assert spec.traffic == "dc-incast"
        assert spec.param_dict() == PRESETS["fat_tree_k4"].param_dict()

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            parse_topology("mystery_fabric")

    def test_bad_traffic_suffix_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_topology("fat_tree_k4:warp-speed")


class TestResolveTopology:
    def test_none_and_spec_pass_through(self):
        assert resolve_topology(None) is None
        spec = PRESETS["fat_tree_k4"]
        assert resolve_topology(spec) is spec

    def test_string_and_mapping(self):
        from_str = resolve_topology("leaf_spine_2x4")
        from_map = resolve_topology(
            {
                "family": "leaf_spine",
                "params": {"n_spine": 2, "n_leaf": 4, "hosts_per_leaf": 2},
            }
        )
        assert from_str == from_map

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_topology(42)
