"""Datacenter cross-traffic: calibration, burstiness, scenario wiring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.link import Link
from repro.network.node import Node, NodeKind
from repro.topo.traffic import (
    DC_BASE_MEAN_MBPS,
    HOT_RACK_FACTOR,
    DCFlowTraffic,
    IncastTraffic,
    TRAFFIC_SCENARIOS,
    bottleneck_sources,
    traffic_params,
)


def _link(name_a="X", name_b="Y"):
    return Link(
        a=Node(name_a, NodeKind.ROUTER),
        b=Node(name_b, NodeKind.ROUTER),
        capacity_mbps=100.0,
    )


class TestDCFlowTraffic:
    def test_mean_calibration(self):
        # Long-run sample mean must land near the calibrated mean: the
        # Pareto tail has infinite variance, so the tolerance is loose
        # but the seed is fixed — this never flakes.
        profile = DCFlowTraffic(name="t", mean_mbps=40.0)
        rng = np.random.default_rng(0)
        series = profile.sample(200_000, rng)
        assert series.mean() == pytest.approx(40.0, rel=0.25)

    def test_heavy_tail_is_bursty(self):
        profile = DCFlowTraffic(name="t", mean_mbps=40.0)
        series = profile.sample(50_000, np.random.default_rng(1))
        # Elephants pile up: the peak dwarfs the mean by far more than
        # a Poisson-smooth process would allow.
        assert series.max() > 3.0 * series.mean()

    def test_deterministic_per_rng_seed(self):
        profile = DCFlowTraffic(name="t", mean_mbps=40.0)
        a = profile.sample(1000, np.random.default_rng(7))
        b = profile.sample(1000, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_zero_mean_is_silent(self):
        profile = DCFlowTraffic(name="t", mean_mbps=0.0)
        assert profile.sample(100, np.random.default_rng(0)).sum() == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DCFlowTraffic(name="t", mean_mbps=-1.0)
        with pytest.raises(ConfigurationError):
            DCFlowTraffic(name="t", mean_mbps=1.0, elephant_prob=1.0)
        with pytest.raises(ConfigurationError):
            DCFlowTraffic(name="t", mean_mbps=1.0, flow_rate_mbps=0.0)


class TestIncastTraffic:
    def test_bursts_hit_fan_in_rate(self):
        profile = IncastTraffic(name="i", fan_in=24, flow_rate_mbps=6.0)
        series = profile.sample(2000, np.random.default_rng(3))
        assert series.max() == pytest.approx(24 * 6.0)
        # Between bursts the link is quiet.
        assert (series == 0.0).mean() > 0.5

    def test_burst_cadence_follows_period(self):
        profile = IncastTraffic(
            name="i", period_s=2.0, jitter_s=0.0, request_mb=0.6,
            flow_rate_mbps=6.0,
        )
        series = profile.sample(4000, np.random.default_rng(5))
        onsets = np.flatnonzero(
            (series[1:] > 0) & (series[:-1] == 0)
        )
        gaps = np.diff(onsets) * 0.1
        assert gaps.size > 0
        np.testing.assert_allclose(gaps, 2.0, atol=0.11)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IncastTraffic(name="i", fan_in=0)
        with pytest.raises(ConfigurationError):
            IncastTraffic(name="i", jitter_s=-0.1)


class TestBottleneckSources:
    def test_nlanr_rotates_profiles(self):
        names = {
            bottleneck_sources("nlanr", i, _link())[0].profile
            for i in range(4)
        }
        assert len(names) == 4  # four distinct calibrated profiles

    def test_dc_baseline_uniform(self):
        for i in range(3):
            (source,) = bottleneck_sources("dc-baseline", i, _link())
            assert source.profile.mean_mbps == DC_BASE_MEAN_MBPS

    def test_incast_only_on_victim(self):
        victim = bottleneck_sources("dc-incast", 0, _link())
        other = bottleneck_sources("dc-incast", 1, _link())
        assert len(victim) == 2 and len(other) == 1
        assert isinstance(victim[1].profile, IncastTraffic)

    def test_hotrack_skews_means(self):
        (hot,) = bottleneck_sources("dc-hotrack", 0, _link())
        (cool,) = bottleneck_sources("dc-hotrack", 1, _link())
        assert hot.profile.mean_mbps == pytest.approx(
            DC_BASE_MEAN_MBPS * HOT_RACK_FACTOR
        )
        assert hot.profile.mean_mbps > cool.profile.mean_mbps

    def test_source_names_embed_link(self):
        link = _link("E0-0", "A0-0")
        (source,) = bottleneck_sources("dc-baseline", 0, link)
        assert link.name in source.name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            bottleneck_sources("rush-hour", 0, _link())


class TestTrafficParams:
    def test_every_scenario_documented(self):
        for scenario in TRAFFIC_SCENARIOS:
            params = traffic_params(scenario)
            assert params["traffic"] == scenario

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            traffic_params("rush-hour")
