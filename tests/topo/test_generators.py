"""Generated testbeds: structure, disjointness, checksums, determinism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.emulab import EmulabTestbed
from repro.topo import (
    PRESETS,
    TopoSpec,
    build_testbed,
    topo_checksum,
)
from repro.topo.generators import LINK_CAPACITY_MBPS


def _assert_series_equal(r1, r2):
    assert sorted(r1.available) == sorted(r2.available)
    for name in r1.available:
        np.testing.assert_array_equal(
            r1.available[name].available_mbps,
            r2.available[name].available_mbps,
        )
        np.testing.assert_array_equal(
            r1.qos[name].rtt_ms, r2.qos[name].rtt_ms
        )
        np.testing.assert_array_equal(
            r1.qos[name].loss_rate, r2.qos[name].loss_rate
        )


class TestStructure:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_paths_share_nothing(self, preset):
        testbed = build_testbed(PRESETS[preset])
        paths = list(testbed.paths.values())
        assert not testbed.topology.shared_links(paths)
        interiors = [
            {n.name for n in p.nodes[1:-1]} for p in paths
        ]
        for i, a in enumerate(interiors):
            for b in interiors[i + 1 :]:
                assert not (a & b), f"{preset}: paths share routers"

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_drop_in_testbed_contract(self, preset):
        testbed = build_testbed(PRESETS[preset])
        assert isinstance(testbed, EmulabTestbed)
        assert testbed.server.name == "SRV"
        assert testbed.client.name == "CLT"
        for path in testbed.paths.values():
            assert path.source is testbed.server
            assert path.sink is testbed.client
            assert path.capacity_mbps == LINK_CAPACITY_MBPS

    def test_fat_tree_size_scales_with_k(self):
        n4 = len(build_testbed(TopoSpec.make("fat_tree", k=4)).topology.nodes)
        n8 = len(
            build_testbed(
                TopoSpec.make("fat_tree", k=8, n_paths=4)
            ).topology.nodes
        )
        assert n8 > 4 * n4  # 5k^2/4 + k*h + 2 grows ~quadratically

    def test_bottlenecks_carry_cross_traffic(self):
        testbed = build_testbed(PRESETS["leaf_spine_4x8"])
        assert len(testbed.bottlenecks) == len(testbed.paths)
        by_name = {link.name: link for link in testbed.topology.links}
        for name in testbed.bottlenecks:
            assert by_name[name].cross_traffic, name

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError, match="even k"):
            build_testbed(TopoSpec.make("fat_tree", k=5))
        with pytest.raises(ConfigurationError, match="disjoint paths"):
            build_testbed(TopoSpec.make("fat_tree", k=4, n_paths=3))
        with pytest.raises(ConfigurationError, match="disjoint paths"):
            build_testbed(
                TopoSpec.make("leaf_spine", n_spine=2, n_leaf=4, n_paths=3)
            )
        with pytest.raises(ConfigurationError, match="n_nodes"):
            build_testbed(TopoSpec.make("repetita_wan", n_nodes=4))
        with pytest.raises(ConfigurationError, match="unknown topology family"):
            build_testbed(TopoSpec.make("torus", k=3))


class TestChecksum:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_rebuild_reproduces_checksum(self, preset):
        spec = PRESETS[preset]
        assert topo_checksum(build_testbed(spec)) == topo_checksum(
            build_testbed(spec)
        )

    def test_structure_seed_changes_wan_checksum(self):
        s0 = topo_checksum(build_testbed(PRESETS["repetita_wan_s0"]))
        s1 = topo_checksum(build_testbed(PRESETS["repetita_wan_s1"]))
        assert s0 != s1

    def test_traffic_scenario_changes_checksum(self):
        spec = PRESETS["fat_tree_k4"]
        assert topo_checksum(build_testbed(spec)) != topo_checksum(
            build_testbed(spec.with_traffic("dc-hotrack"))
        )

    def test_checksums_distinct_across_presets(self):
        sums = {
            topo_checksum(build_testbed(spec))
            for spec in PRESETS.values()
        }
        assert len(sums) == len(PRESETS)


class TestRealization:
    @pytest.mark.parametrize(
        "preset", ["fat_tree_k4", "leaf_spine_4x8", "repetita_wan_s0"]
    )
    def test_same_seed_byte_identical(self, preset):
        spec = PRESETS[preset]
        r1 = build_testbed(spec).realize(seed=11, duration=6.0, dt=0.1)
        r2 = build_testbed(spec).realize(seed=11, duration=6.0, dt=0.1)
        _assert_series_equal(r1, r2)

    def test_different_seeds_differ(self):
        testbed = build_testbed(PRESETS["fat_tree_k4"])
        r1 = testbed.realize(seed=1, duration=6.0, dt=0.1)
        r2 = testbed.realize(seed=2, duration=6.0, dt=0.1)
        assert any(
            not np.array_equal(
                r1.available[p].available_mbps,
                r2.available[p].available_mbps,
            )
            for p in r1.available
        )

    def test_residual_bandwidth_in_range(self):
        realization = build_testbed(
            PRESETS["leaf_spine_4x8"].with_traffic("dc-incast")
        ).realize(seed=0, duration=10.0, dt=0.1)
        for bw in realization.available.values():
            assert (bw.available_mbps >= 0.0).all()
            assert (bw.available_mbps <= LINK_CAPACITY_MBPS).all()
