"""Throughput sampler and the per-path monitor."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitoring.monitor import PathMonitor
from repro.monitoring.sampler import ThroughputSampler


class TestSampler:
    def test_single_interval_rate(self):
        sampler = ThroughputSampler(dt=0.1)
        sampler.record(0.05, 125_000)  # 1.25e5 B in 0.1 s = 10 Mbps
        closed = sampler.record(0.1, 0)
        assert closed == pytest.approx([10.0])

    def test_idle_intervals_emit_zero(self):
        sampler = ThroughputSampler(dt=0.1)
        sampler.record(0.0, 125_000)
        closed = sampler.record(0.35, 125_000)
        assert closed == pytest.approx([10.0, 0.0, 0.0])

    def test_flush(self):
        sampler = ThroughputSampler(dt=0.1)
        sampler.record(0.0, 125_000)
        assert sampler.flush(0.2) == pytest.approx([10.0, 0.0])

    def test_samples_accumulate(self):
        sampler = ThroughputSampler(dt=0.1)
        for i in range(5):
            sampler.record(i * 0.1, 125_000)
        sampler.flush(0.5)
        assert len(sampler.samples) == 5
        assert sampler.samples == pytest.approx([10.0] * 5)

    def test_time_going_backwards_rejected(self):
        sampler = ThroughputSampler(dt=0.1)
        sampler.record(0.5, 100)
        with pytest.raises(ConfigurationError):
            sampler.record(0.1, 100)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputSampler(dt=0.1).record(0.0, -1)


class TestPathMonitor:
    def test_guaranteed_bandwidth_is_quantile(self, rng):
        monitor = PathMonitor("A", window=1000)
        samples = 50 + 5 * rng.standard_normal(1000)
        monitor.observe_bandwidth_many(samples)
        assert monitor.guaranteed_bandwidth(0.95) == pytest.approx(
            np.percentile(samples, 5)
        )

    def test_remap_trigger_before_first_mark(self):
        monitor = PathMonitor("A")
        monitor.observe_bandwidth(10.0)
        assert monitor.cdf_changed_significantly()

    def test_no_trigger_on_stable_distribution(self, rng):
        monitor = PathMonitor("A", window=500, ks_threshold=0.2)
        monitor.observe_bandwidth_many(50 + rng.standard_normal(500))
        monitor.mark_remapped()
        monitor.observe_bandwidth_many(50 + rng.standard_normal(250))
        assert not monitor.cdf_changed_significantly()

    def test_trigger_on_level_shift(self, rng):
        monitor = PathMonitor("A", window=500, ks_threshold=0.2)
        monitor.observe_bandwidth_many(50 + rng.standard_normal(500))
        monitor.mark_remapped()
        monitor.observe_bandwidth_many(30 + rng.standard_normal(400))
        assert monitor.cdf_changed_significantly()

    def test_rtt_and_loss_tracked(self):
        monitor = PathMonitor("A")
        monitor.observe_rtt(20.0)
        monitor.observe_rtt(30.0)
        assert 20.0 < monitor.rtt_ms.predict() <= 30.0
        monitor.observe_loss(0.01)
        assert monitor.loss_rate.predict() == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PathMonitor("A", ks_threshold=0.0)
        monitor = PathMonitor("A")
        with pytest.raises(ConfigurationError):
            monitor.observe_rtt(-1.0)
        with pytest.raises(ConfigurationError):
            monitor.observe_loss(2.0)
        with pytest.raises(ConfigurationError):
            monitor.guaranteed_bandwidth(1.5)
