"""The probing-estimator measurement model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitoring.probe import ProbingEstimator


class TestEstimator:
    def test_perfect_probe_is_identity(self, rng):
        x = 50 + 5 * rng.standard_normal(1000)
        probe = ProbingEstimator(noise_cv=0.0, bias=1.0)
        assert np.array_equal(probe.estimate_series(x, rng), x)

    def test_noise_cv_controls_spread(self, rng):
        x = np.full(20_000, 50.0)
        noisy = ProbingEstimator(noise_cv=0.1).estimate_series(x, rng)
        assert noisy.std() / noisy.mean() == pytest.approx(0.1, abs=0.01)

    def test_bias_shifts_mean(self, rng):
        x = np.full(10_000, 50.0)
        low = ProbingEstimator(noise_cv=0.05, bias=0.9).estimate_series(
            x, np.random.default_rng(1)
        )
        assert low.mean() == pytest.approx(45.0, rel=0.01)

    def test_quantization(self, rng):
        x = np.array([10.3, 22.6, 47.9])
        q = ProbingEstimator(noise_cv=0.0, resolution_mbps=5.0)
        assert np.array_equal(q.estimate_series(x, rng), [10.0, 25.0, 50.0])

    def test_never_negative(self, rng):
        x = np.full(5000, 1.0)
        noisy = ProbingEstimator(noise_cv=2.0).estimate_series(x, rng)
        assert np.all(noisy >= 0.0)

    def test_perturb_realization_deterministic(self, rng):
        probe = ProbingEstimator(noise_cv=0.1)
        series = {"A": 50 + rng.standard_normal(100)}
        a = probe.perturb_realization(series, seed=3)
        b = probe.perturb_realization(series, seed=3)
        assert np.array_equal(a["A"], b["A"])
        c = probe.perturb_realization(series, seed=4)
        assert not np.array_equal(a["A"], c["A"])

    def test_smoothing_lifts_lower_percentile_of_noisy_series(self, rng):
        # The discriminating error mode: a dip-blind probe overestimates
        # the lower quantiles of a noisy path.
        x = np.clip(40 + 12 * rng.standard_normal(5000), 0, None)
        smooth = ProbingEstimator(
            noise_cv=0.0, smoothing_intervals=50
        ).estimate_series(x, rng)
        assert np.percentile(smooth, 5) > np.percentile(x, 5) + 5.0
        # While barely changing the mean.
        assert smooth.mean() == pytest.approx(x.mean(), rel=0.02)

    def test_smoothing_harmless_on_steady_series(self, rng):
        x = np.full(1000, 50.0)
        smooth = ProbingEstimator(
            noise_cv=0.0, smoothing_intervals=50
        ).estimate_series(x, rng)
        assert np.allclose(smooth, 50.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProbingEstimator(noise_cv=-0.1)
        with pytest.raises(ConfigurationError):
            ProbingEstimator(bias=0.0)
        with pytest.raises(ConfigurationError):
            ProbingEstimator(resolution_mbps=-1.0)
        with pytest.raises(ConfigurationError):
            ProbingEstimator(smoothing_intervals=0)


class TestNoisyMonitoringEndToEnd:
    def test_pgos_tolerates_realistic_probe_noise(self):
        from repro.apps.smartpointer import BOND1_MBPS, smartpointer_streams
        from repro.core.pgos import PGOSScheduler
        from repro.harness.experiment import run_schedule_experiment
        from repro.harness.metrics import fraction_of_time_at_least
        from repro.network.emulab import make_figure8_testbed

        testbed = make_figure8_testbed()
        realization = testbed.realize(seed=19, duration=90.0, dt=0.1)
        result = run_schedule_experiment(
            PGOSScheduler(),
            realization,
            smartpointer_streams(),
            warmup_intervals=250,
            probe=ProbingEstimator(noise_cv=0.1, bias=0.95),
        )
        bond1 = result.stream_series("Bond1")
        # Realistic probing error barely dents the guarantee: the
        # percentile read absorbs zero-mean noise, and underestimation
        # bias errs on the conservative side.
        assert fraction_of_time_at_least(bond1, BOND1_MBPS * 0.999) >= 0.9

    def test_gross_overestimation_breaks_guarantee(self):
        from repro.apps.smartpointer import BOND1_MBPS, smartpointer_streams
        from repro.core.pgos import PGOSScheduler
        from repro.harness.experiment import run_schedule_experiment
        from repro.harness.metrics import fraction_of_time_at_least
        from repro.network.emulab import make_figure8_testbed

        testbed = make_figure8_testbed()
        realization = testbed.realize(seed=19, duration=90.0, dt=0.1)

        def attainment(probe):
            result = run_schedule_experiment(
                PGOSScheduler(),
                realization,
                smartpointer_streams(),
                warmup_intervals=250,
                probe=probe,
            )
            return fraction_of_time_at_least(
                result.stream_series("Bond1"), BOND1_MBPS * 0.999
            )

        honest = attainment(None)
        # A probe that claims 3x the real bandwidth misleads the mapping
        # onto paths that cannot deliver... unless overflow saves it; at
        # minimum it must not *beat* honest monitoring.
        deluded = attainment(ProbingEstimator(noise_cv=0.0, bias=3.0))
        assert deluded <= honest + 1e-9
