"""Empirical CDFs: evaluation, percentiles, partial means, KS distance."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF, SlidingWindowCDF, ks_distance


class TestEmpiricalCDF:
    def test_step_values(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4.0) == 1.0
        assert cdf.evaluate(10.0) == 1.0

    def test_strict_evaluation(self):
        cdf = EmpiricalCDF([1.0, 2.0, 2.0, 3.0])
        assert cdf.evaluate_strict(2.0) == 0.25  # only the 1.0 is < 2
        assert cdf.evaluate(2.0) == 0.75

    def test_vectorized_evaluation(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        out = cdf.evaluate(np.array([0.0, 2.0, 5.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_callable(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        assert cdf(1.5) == 0.5

    def test_percentile_quantile(self):
        samples = np.arange(1, 101, dtype=float)
        cdf = EmpiricalCDF(samples)
        assert cdf.percentile(50) == pytest.approx(50.5)
        assert cdf.quantile(0.1) == pytest.approx(cdf.percentile(10))

    def test_percentile_bounds(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            cdf.percentile(101)

    def test_moments(self, rng):
        x = 50 + 5 * rng.standard_normal(20_000)
        cdf = EmpiricalCDF(x)
        assert cdf.mean() == pytest.approx(x.mean())
        assert cdf.std() == pytest.approx(x.std())
        assert cdf.min() == x.min()
        assert cdf.max() == x.max()

    def test_partial_mean_below(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        # E[b * 1{b <= 2}] = (1 + 2) / 4
        assert cdf.partial_mean_below(2.0) == pytest.approx(0.75)
        assert cdf.partial_mean_below(0.5) == 0.0
        assert cdf.partial_mean_below(10.0) == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([])

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([1.0, float("nan")])

    def test_samples_read_only(self):
        cdf = EmpiricalCDF([2.0, 1.0])
        with pytest.raises(ValueError):
            cdf.samples[0] = 99.0


class TestSlidingWindowCDF:
    def test_window_evicts_oldest(self):
        window = SlidingWindowCDF(window=3)
        window.extend([1.0, 2.0, 3.0, 4.0])
        assert list(window.snapshot().samples) == [2.0, 3.0, 4.0]

    def test_full_flag(self):
        window = SlidingWindowCDF(window=2)
        assert not window.full
        window.extend([1.0, 2.0])
        assert window.full

    def test_snapshot_cached_until_update(self):
        window = SlidingWindowCDF(window=5)
        window.update(1.0)
        snap1 = window.snapshot()
        assert window.snapshot() is snap1
        window.update(2.0)
        assert window.snapshot() is not snap1

    def test_empty_snapshot_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowCDF().snapshot()

    def test_percentile_delegates(self):
        window = SlidingWindowCDF(window=10)
        window.extend(range(1, 11))
        assert window.percentile(50) == pytest.approx(5.5)
        assert window.evaluate(5) == 0.5

    def test_non_finite_rejected(self):
        window = SlidingWindowCDF()
        with pytest.raises(ConfigurationError):
            window.update(float("inf"))

    def test_small_window_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowCDF(window=1)


class TestKSDistance:
    def test_identical_is_zero(self, rng):
        x = rng.random(100)
        assert ks_distance(EmpiricalCDF(x), EmpiricalCDF(x)) == 0.0

    def test_disjoint_is_one(self):
        a = EmpiricalCDF([1.0, 2.0])
        b = EmpiricalCDF([10.0, 20.0])
        assert ks_distance(a, b) == 1.0

    def test_symmetric(self, rng):
        a = EmpiricalCDF(rng.random(200))
        b = EmpiricalCDF(rng.random(200) + 0.2)
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_shift_detected(self, rng):
        x = rng.standard_normal(2000)
        a = EmpiricalCDF(x)
        b = EmpiricalCDF(x + 1.0)
        # KS of N(0,1) vs N(1,1) is about 0.38.
        assert ks_distance(a, b) == pytest.approx(0.38, abs=0.05)
