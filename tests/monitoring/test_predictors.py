"""Predictors: online/vectorized agreement and statistical behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitoring.predictors import (
    AR1Predictor,
    EWMAPredictor,
    MovingAveragePredictor,
    PercentilePredictor,
    SlidingMedianPredictor,
    default_average_predictors,
)


class TestMovingAverage:
    def test_mean_of_window(self):
        ma = MovingAveragePredictor(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            ma.update(v)
        assert ma.predict() == pytest.approx(3.0)

    def test_not_ready_before_window_fills(self):
        ma = MovingAveragePredictor(window=3)
        ma.update(1.0)
        assert not ma.ready
        ma.update(2.0)
        ma.update(3.0)
        assert ma.ready

    def test_predict_before_any_sample_raises(self):
        with pytest.raises(ConfigurationError):
            MovingAveragePredictor().predict()

    def test_series_matches_online(self, rng):
        x = rng.random(200)
        vectorized = MovingAveragePredictor(window=10).predict_series(x)
        online = MovingAveragePredictor(window=10)
        expected = np.full(200, np.nan)
        for i, v in enumerate(x):
            if online.ready:
                expected[i] = online.predict()
            online.update(v)
        assert np.allclose(vectorized, expected, equal_nan=True)


class TestEWMA:
    def test_recursion(self):
        ewma = EWMAPredictor(alpha=0.5)
        ewma.update(10.0)
        ewma.update(20.0)
        assert ewma.predict() == pytest.approx(15.0)

    def test_series_matches_online(self, rng):
        x = rng.random(100)
        vectorized = EWMAPredictor(alpha=0.3).predict_series(x)
        online = EWMAPredictor(alpha=0.3)
        expected = np.full(100, np.nan)
        for i, v in enumerate(x):
            if online.ready:
                expected[i] = online.predict()
            online.update(v)
        assert np.allclose(vectorized, expected, equal_nan=True)

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            EWMAPredictor(alpha=0.0)


class TestSlidingMedian:
    def test_median_of_window(self):
        sma = SlidingMedianPredictor(window=3)
        for v in (1.0, 100.0, 2.0):
            sma.update(v)
        assert sma.predict() == 2.0

    def test_robust_to_bursts(self, rng):
        x = np.full(50, 10.0)
        x[25] = 1000.0  # one burst
        sma = SlidingMedianPredictor(window=9)
        out = sma.predict_series(x)
        assert np.nanmax(out) == 10.0

    def test_series_matches_online(self, rng):
        x = rng.random(120)
        vectorized = SlidingMedianPredictor(window=7).predict_series(x)
        online = SlidingMedianPredictor(window=7)
        expected = np.full(120, np.nan)
        for i, v in enumerate(x):
            if online.ready:
                expected[i] = online.predict()
            online.update(v)
        assert np.allclose(vectorized, expected, equal_nan=True)


class TestAR1:
    def test_degenerates_to_mean_for_iid(self, rng):
        ar = AR1Predictor(window=200)
        x = 50 + 5 * rng.standard_normal(200)
        for v in x:
            ar.update(v)
        assert ar.predict() == pytest.approx(x.mean(), abs=2.0)

    def test_tracks_persistent_signal(self):
        ar = AR1Predictor(window=50)
        x = np.concatenate([np.full(25, 10.0), np.full(25, 20.0)])
        for v in x:
            ar.update(v)
        # Strong positive phi: prediction should stay near the last value.
        assert ar.predict() > 15.0

    def test_needs_samples(self):
        ar = AR1Predictor(window=10)
        with pytest.raises(ConfigurationError):
            ar.predict()


class TestPercentile:
    def test_predicts_percentile(self):
        p = PercentilePredictor(q=10, window=100)
        for v in range(1, 101):
            p.update(float(v))
        assert p.predict() == pytest.approx(np.percentile(range(1, 101), 10))

    def test_lower_q_predicts_lower(self, rng):
        x = rng.random(500)
        p10 = PercentilePredictor(q=10, window=500)
        p50 = PercentilePredictor(q=50, window=500)
        for v in x:
            p10.update(v)
            p50.update(v)
        assert p10.predict() < p50.predict()

    def test_series_matches_online(self, rng):
        x = rng.random(80)
        vectorized = PercentilePredictor(q=10, window=20).predict_series(x)
        online = PercentilePredictor(q=10, window=20)
        expected = np.full(80, np.nan)
        for i, v in enumerate(x):
            if online.ready:
                expected[i] = online.predict()
            online.update(v)
        assert np.allclose(vectorized, expected, equal_nan=True)

    def test_conservative_guarantee_level(self, rng):
        # The prediction is exceeded ~90 % of the time on IID data.
        x = 50 + 5 * rng.standard_normal(5000)
        p = PercentilePredictor(q=10, window=1000)
        hits, total = 0, 0
        for i, v in enumerate(x):
            if p.ready:
                total += 1
                hits += v >= p.predict()
            p.update(v)
        assert hits / total == pytest.approx(0.9, abs=0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PercentilePredictor(q=150)
        with pytest.raises(ConfigurationError):
            PercentilePredictor(window=1)


def test_default_lineup_is_ma_ewma_sma():
    names = [p.name for p in default_average_predictors()]
    assert names == ["MA(10)", "EWMA(0.25)", "SMA(10)"]
