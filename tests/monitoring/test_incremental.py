"""Unit tests of the incremental sliding-window CDF and backend wiring."""

from collections import deque

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitoring.cdf import (
    CDF_BACKENDS,
    EmpiricalCDF,
    SlidingWindowCDF,
    default_backend,
    ks_distance,
)
from repro.monitoring.incremental import IncrementalWindowCDF


class TestIncrementalWindow:
    def test_window_semantics_match_deque(self):
        rng = np.random.default_rng(0)
        inc = IncrementalWindowCDF(window=7)
        mirror: deque[float] = deque(maxlen=7)
        for v in rng.uniform(0, 100, 100):
            inc.update(v)
            mirror.append(float(v))
            assert sorted(mirror) == list(inc.sorted_view())
            assert list(mirror) == inc.window_values()

    def test_duplicates_evict_correctly(self):
        inc = IncrementalWindowCDF(window=3)
        inc.extend([5.0, 5.0, 5.0, 5.0, 1.0])
        assert list(inc.sorted_view()) == [1.0, 5.0, 5.0]
        assert inc.window_values() == [5.0, 5.0, 1.0]

    def test_negative_zero_normalized(self):
        inc = IncrementalWindowCDF(window=2)
        inc.extend([-0.0, 1.0, 2.0])  # the -0.0 must evict cleanly
        assert list(inc.sorted_view()) == [1.0, 2.0]

    def test_rejects_non_finite(self):
        inc = IncrementalWindowCDF()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ConfigurationError):
                inc.update(bad)

    def test_rejects_tiny_window(self):
        with pytest.raises(ConfigurationError):
            IncrementalWindowCDF(window=1)

    def test_empty_queries_rejected(self):
        inc = IncrementalWindowCDF()
        for call in (
            lambda: inc.evaluate(1.0),
            lambda: inc.quantile(0.5),
            lambda: inc.mean(),
            lambda: inc.partial_mean_below(1.0),
            lambda: inc.snapshot(),
        ):
            with pytest.raises(ConfigurationError):
                call()

    def test_quantile_range_checked(self):
        inc = IncrementalWindowCDF()
        inc.extend([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            inc.quantile(1.5)
        with pytest.raises(ConfigurationError):
            inc.percentile(-1.0)

    def test_sorted_view_read_only(self):
        inc = IncrementalWindowCDF()
        inc.extend([2.0, 1.0])
        with pytest.raises(ValueError):
            inc.sorted_view()[0] = 99.0

    def test_snapshot_immutable_and_decoupled(self):
        inc = IncrementalWindowCDF(window=3)
        inc.extend([3.0, 1.0, 2.0])
        snap = inc.snapshot()
        with pytest.raises(ValueError):
            snap.samples[0] = 99.0
        inc.update(50.0)  # must not disturb the frozen snapshot
        assert list(snap.samples) == [1.0, 2.0, 3.0]

    def test_queries_match_batch_cdf_exactly(self):
        rng = np.random.default_rng(1)
        inc = IncrementalWindowCDF(window=50)
        values = rng.uniform(0, 100, 300)
        for v in values:
            inc.update(v)
        ref = EmpiricalCDF(values[-50:])
        for b in (-1.0, 0.0, 33.3, *values[-5:], 150.0):
            assert inc.evaluate(b) == ref.evaluate(b)
            assert inc.evaluate_strict(b) == ref.evaluate_strict(b)
            assert inc.partial_mean_below(b) == ref.partial_mean_below(b)
        for q in (0.0, 5.0, 37.7, 50.0, 95.0, 100.0):
            assert inc.percentile(q) == ref.percentile(q)
        assert inc.mean() == ref.mean()
        assert inc.std() == ref.std()
        assert inc.min() == ref.min()
        assert inc.max() == ref.max()

    def test_ks_distance_matches_module_function(self):
        rng = np.random.default_rng(2)
        a = IncrementalWindowCDF(window=40)
        a.extend(rng.uniform(0, 100, 40))
        other = EmpiricalCDF(rng.uniform(20, 120, 60))
        expected = ks_distance(a.snapshot(), other)
        assert a.ks_distance(other) == expected

    def test_vectorized_evaluate(self):
        inc = IncrementalWindowCDF()
        inc.extend([1.0, 2.0, 3.0, 4.0])
        out = inc.evaluate(np.array([0.0, 2.0, 5.0]))
        assert np.array_equal(out, [0.0, 0.5, 1.0])


class TestBackendWiring:
    def test_default_backend_is_incremental(self, monkeypatch):
        monkeypatch.delenv("REPRO_CDF_BACKEND", raising=False)
        assert default_backend() == "incremental"
        assert SlidingWindowCDF().backend == "incremental"

    def test_env_var_flips_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CDF_BACKEND", "batch")
        assert default_backend() == "batch"
        assert SlidingWindowCDF().backend == "batch"

    def test_invalid_env_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CDF_BACKEND", "bogus")
        with pytest.raises(ConfigurationError):
            default_backend()

    def test_invalid_explicit_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowCDF(backend="bogus")

    @pytest.mark.parametrize("backend", CDF_BACKENDS)
    def test_window_api_per_backend(self, backend):
        swc = SlidingWindowCDF(window=3, backend=backend)
        swc.extend([1.0, 2.0, 3.0, 4.0])
        assert len(swc) == 3
        assert swc.full
        assert list(swc.snapshot().samples) == [2.0, 3.0, 4.0]

    def test_backends_agree_on_random_stream(self):
        rng = np.random.default_rng(3)
        inc = SlidingWindowCDF(window=25, backend="incremental")
        bat = SlidingWindowCDF(window=25, backend="batch")
        for v in rng.uniform(0, 100, 120):
            inc.update(v)
            bat.update(v)
            b = float(rng.uniform(-10, 110))
            q = float(rng.uniform(0, 100))
            assert inc.evaluate(b) == bat.evaluate(b)
            assert inc.evaluate_strict(b) == bat.evaluate_strict(b)
            assert inc.partial_mean_below(b) == bat.partial_mean_below(b)
            assert inc.percentile(q) == bat.percentile(q)
            assert inc.mean() == bat.mean()
        assert np.array_equal(
            inc.snapshot().samples, bat.snapshot().samples
        )

    def test_queries_after_snapshot_use_cache(self):
        swc = SlidingWindowCDF(window=5, backend="incremental")
        swc.extend([1.0, 2.0, 3.0])
        snap = swc.snapshot()
        # With a live cached snapshot, queries must agree with it.
        assert swc.evaluate(2.0) == snap.evaluate(2.0)
        assert swc.percentile(50.0) == snap.percentile(50.0)

    @pytest.mark.parametrize("backend", CDF_BACKENDS)
    def test_obs_counters_track_reuse_and_rebuild(self, backend):
        from repro.obs.context import Observability

        obs = Observability()
        swc = SlidingWindowCDF(window=4, backend=backend, obs=obs)
        swc.extend([1.0, 2.0, 3.0])
        swc.snapshot()  # rebuild
        swc.snapshot()  # reuse
        swc.update(4.0)  # invalidates
        swc.snapshot()  # rebuild
        counters = obs.metrics
        assert counters.counter("cdf.updates").value == 4
        assert counters.counter("cdf.snapshot_rebuilds").value == 2
        assert counters.counter("cdf.snapshot_reuses").value == 1


class TestFromSorted:
    def test_skips_sort_and_matches_ctor(self):
        arr = np.array([1.0, 2.0, 3.0])
        a = EmpiricalCDF.from_sorted(arr)
        b = EmpiricalCDF(arr)
        assert np.array_equal(a.samples, b.samples)

    def test_validate_rejects_unsorted(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF.from_sorted(np.array([2.0, 1.0]))

    def test_validate_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF.from_sorted(np.array([1.0, np.nan]))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF.from_sorted(np.array([]))

    def test_copy_true_leaves_caller_array_writable(self):
        arr = np.array([1.0, 2.0])
        EmpiricalCDF.from_sorted(arr, copy=True)
        arr[0] = 0.5  # caller's array unaffected by the freeze

    def test_result_read_only(self):
        cdf = EmpiricalCDF.from_sorted(np.array([1.0, 2.0]), copy=False)
        with pytest.raises(ValueError):
            cdf.samples[0] = 9.0
