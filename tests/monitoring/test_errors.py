"""Prediction-error metrics (the Figure-4 scoring machinery)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.monitoring.errors import (
    error_exceedance_fraction,
    mean_relative_error,
    percentile_prediction_failure_rate,
    prediction_error_series,
)
from repro.monitoring.predictors import EWMAPredictor, MovingAveragePredictor


class TestRelativeError:
    def test_zero_for_constant_series(self):
        x = np.full(100, 42.0)
        assert mean_relative_error(MovingAveragePredictor(10), x) == 0.0

    def test_known_alternating_series(self):
        # Series alternates 10, 20; MA(2) always predicts 15 -> relative
        # error alternates 0.5 on 10s and 0.25 on 20s.
        x = np.array([10.0, 20.0] * 50)
        err = mean_relative_error(MovingAveragePredictor(2), x)
        assert err == pytest.approx((0.5 + 0.25) / 2, abs=0.01)

    def test_scales_with_noise(self, rng):
        quiet = 50 + 1 * rng.standard_normal(5000)
        loud = 50 + 10 * rng.standard_normal(5000)
        predictor = EWMAPredictor(alpha=0.25)
        assert mean_relative_error(
            EWMAPredictor(alpha=0.25), loud
        ) > mean_relative_error(predictor, quiet)

    def test_drops_zero_actuals(self):
        x = np.array([1.0] * 20 + [0.0] + [1.0] * 20)
        errs = prediction_error_series(MovingAveragePredictor(5), x)
        assert np.all(np.isfinite(errs))

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_relative_error(MovingAveragePredictor(10), np.ones(5))

    def test_exceedance_fraction(self, rng):
        x = 50 + 20 * rng.standard_normal(5000)
        frac = error_exceedance_fraction(EWMAPredictor(0.25), x, 0.2)
        assert 0.0 < frac < 1.0


class TestPercentileFailureRate:
    def test_iid_mean_mode_is_small(self, rng):
        # For IID Gaussian, P(mean of 5 < p10) = Phi(-1.2816 * sqrt(5)),
        # about 0.2 % — the percentile guarantee holds almost always.
        x = 50 + 5 * rng.standard_normal(20_000)
        fail = percentile_prediction_failure_rate(
            x, q=10, history=500, horizon=5, mode="mean"
        )
        assert fail < 0.02

    def test_iid_min_mode_floor(self, rng):
        # Strict per-sample mode cannot beat ~1-0.9^5 = 41 % on IID data —
        # this is why the guarantee is stated over the window aggregate.
        x = 50 + 5 * rng.standard_normal(20_000)
        fail = percentile_prediction_failure_rate(
            x, q=10, history=500, horizon=5, mode="min"
        )
        assert fail > 0.3

    def test_regime_drop_causes_failures(self, rng):
        # A sustained level shift below the historic p10 must register.
        x = np.concatenate(
            [50 + rng.standard_normal(2000), 30 + rng.standard_normal(500)]
        )
        fail = percentile_prediction_failure_rate(
            x, q=10, history=1000, horizon=5
        )
        assert fail > 0.1

    def test_stride_subsamples(self, rng):
        x = 50 + 5 * rng.standard_normal(5000)
        dense = percentile_prediction_failure_rate(x, history=500, stride=1)
        sparse = percentile_prediction_failure_rate(x, history=500, stride=10)
        assert abs(dense - sparse) < 0.05

    def test_too_short_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            percentile_prediction_failure_rate(rng.random(100), history=500)

    def test_invalid_mode_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            percentile_prediction_failure_rate(
                rng.random(2000), history=500, mode="max"
            )

    def test_lower_q_fails_less(self, rng):
        x = 50 + 5 * rng.standard_normal(20_000)
        f1 = percentile_prediction_failure_rate(x, q=1, history=500)
        f25 = percentile_prediction_failure_rate(x, q=25, history=500)
        assert f1 <= f25
