"""Admission control: the upcall protocol."""

import numpy as np
import pytest

from repro.core.admission import AdmissionController
from repro.core.spec import StreamSpec
from repro.monitoring.cdf import EmpiricalCDF


@pytest.fixture
def paths(rng):
    return {
        "A": EmpiricalCDF(np.clip(50 + 4 * rng.standard_normal(3000), 0, None)),
        "B": EmpiricalCDF(np.clip(30 + 10 * rng.standard_normal(3000), 0, None)),
    }


class TestAdmit:
    def test_feasible_set_admitted(self, paths):
        specs = [
            StreamSpec(name="ctl", required_mbps=3.0, probability=0.99),
            StreamSpec(name="data", required_mbps=22.0, probability=0.95),
            StreamSpec(name="bulk", elastic=True, nominal_mbps=40.0),
        ]
        decision = AdmissionController(tw=1.0).try_admit(specs, paths)
        assert decision.admitted
        assert decision.mapping is not None
        assert decision.admitted_streams == ("ctl", "data", "bulk")
        assert decision.rejected_stream is None

    def test_infeasible_stream_named(self, paths):
        specs = [
            StreamSpec(name="ok", required_mbps=10.0, probability=0.95),
            StreamSpec(name="greedy", required_mbps=90.0, probability=0.95),
        ]
        decision = AdmissionController(tw=1.0).try_admit(specs, paths)
        assert not decision.admitted
        assert decision.rejected_stream == "greedy"
        assert "greedy" in decision.reason

    def test_rejection_keeps_other_streams(self, paths):
        specs = [
            StreamSpec(name="ok", required_mbps=10.0, probability=0.95),
            StreamSpec(name="greedy", required_mbps=90.0, probability=0.95),
        ]
        decision = AdmissionController(tw=1.0).try_admit(specs, paths)
        assert decision.mapping is not None
        assert decision.admitted_streams == ("ok",)

    def test_suggested_probability_is_renegotiation_hint(self, paths):
        # 45 Mbps can't be had at 99 % on these paths, but can at some
        # lower probability; the hint should be that lower value.
        specs = [StreamSpec(name="want", required_mbps=49.0, probability=0.99)]
        decision = AdmissionController(tw=1.0).try_admit(specs, paths)
        assert not decision.admitted
        hint = decision.suggested_probability
        assert hint is not None
        assert 0.0 < hint < 0.99

    def test_retry_with_hint_succeeds(self, paths):
        controller = AdmissionController(tw=1.0)
        spec = StreamSpec(name="want", required_mbps=49.0, probability=0.99)
        decision = controller.try_admit([spec], paths)
        assert not decision.admitted
        # The application reduces its requirement per the upcall.
        retry_p = decision.suggested_probability * 0.95
        retry = controller.try_admit(
            [StreamSpec(name="want", required_mbps=49.0, probability=retry_p)],
            paths,
        )
        assert retry.admitted

    def test_invalid_tw(self):
        with pytest.raises(ValueError):
            AdmissionController(tw=0.0)
