"""RTT / loss ceilings in the resource mapping and PGOS."""

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.core.mapping import PathQoSEstimate, compute_mapping, eligible_paths
from repro.core.pgos import PGOSScheduler
from repro.core.spec import StreamSpec
from repro.monitoring.cdf import EmpiricalCDF


@pytest.fixture
def paths(rng):
    return {
        "A": EmpiricalCDF(np.clip(50 + 4 * rng.standard_normal(2000), 0, None)),
        "B": EmpiricalCDF(np.clip(45 + 4 * rng.standard_normal(2000), 0, None)),
    }


#: Path A: low RTT, clean.  Path B: high RTT, lossy.
QOS = {
    "A": PathQoSEstimate(rtt_ms=20.0, loss_rate=0.001),
    "B": PathQoSEstimate(rtt_ms=80.0, loss_rate=0.02),
}


class TestEligibility:
    def test_no_constraints_all_paths(self):
        spec = StreamSpec(name="s", required_mbps=1.0)
        assert eligible_paths(spec, ["A", "B"], QOS) == ["A", "B"]

    def test_rtt_ceiling_filters(self):
        spec = StreamSpec(name="ctl", required_mbps=1.0, max_rtt_ms=50.0)
        assert eligible_paths(spec, ["A", "B"], QOS) == ["A"]

    def test_loss_ceiling_filters(self):
        spec = StreamSpec(name="ctl", required_mbps=1.0, max_loss_rate=0.01)
        assert eligible_paths(spec, ["A", "B"], QOS) == ["A"]

    def test_unmonitored_path_passes(self):
        spec = StreamSpec(name="ctl", required_mbps=1.0, max_rtt_ms=50.0)
        qos = {"A": PathQoSEstimate()}  # nothing monitored
        assert eligible_paths(spec, ["A"], qos) == ["A"]

    def test_no_qos_map_means_unconstrained(self):
        spec = StreamSpec(name="ctl", required_mbps=1.0, max_rtt_ms=1.0)
        assert eligible_paths(spec, ["A", "B"], None) == ["A", "B"]


class TestMappingWithQoS:
    def test_control_stream_pinned_to_low_rtt_path(self, paths):
        specs = [
            StreamSpec(
                name="ctl",
                required_mbps=2.0,
                probability=0.99,
                max_rtt_ms=50.0,
            ),
        ]
        mapping = compute_mapping(specs, paths, tw=1.0, qos=QOS)
        assert mapping.paths_of("ctl") == ["A"]

    def test_infeasible_ceiling_raises(self, paths):
        specs = [
            StreamSpec(
                name="ctl",
                required_mbps=2.0,
                probability=0.99,
                max_rtt_ms=5.0,  # no path is this fast
            ),
        ]
        with pytest.raises(AdmissionError, match="RTT/loss"):
            compute_mapping(specs, paths, tw=1.0, qos=QOS)

    def test_elastic_respects_ceilings(self, paths):
        specs = [
            StreamSpec(
                name="bulk",
                elastic=True,
                nominal_mbps=20.0,
                max_loss_rate=0.01,
            ),
        ]
        mapping = compute_mapping(specs, paths, tw=1.0, qos=QOS)
        assert mapping.paths_of("bulk") == ["A"]

    def test_without_qos_both_paths_usable(self, paths):
        specs = [
            StreamSpec(
                name="ctl", required_mbps=2.0, probability=0.99, max_rtt_ms=50.0
            ),
            StreamSpec(name="bulk", elastic=True, nominal_mbps=20.0),
        ]
        mapping = compute_mapping(specs, paths, tw=1.0)
        assert set(mapping.paths_of("bulk")) == {"A", "B"}

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(name="s", required_mbps=1.0, max_rtt_ms=0.0)
        with pytest.raises(ConfigurationError):
            StreamSpec(name="s", required_mbps=1.0, max_loss_rate=1.5)


class TestPGOSWithQoS:
    def test_monitored_rtt_steers_placement(self, rng):
        scheduler = PGOSScheduler(min_history=30)
        streams = [
            StreamSpec(
                name="ctl",
                required_mbps=2.0,
                probability=0.95,
                max_rtt_ms=40.0,
            ),
        ]
        scheduler.setup(streams, ["A", "B"], dt=0.1, tw=1.0)
        # Path B has the better bandwidth but a 100 ms RTT.
        for k in range(60):
            scheduler.observe(
                k,
                {"A": 30.0 + rng.standard_normal(), "B": 60.0 + rng.standard_normal()},
                rtt_ms={"A": 15.0, "B": 100.0},
                loss_rate={"A": 0.0, "B": 0.0},
            )
        scheduler.allocate(60, {"ctl": 2.0})
        assert scheduler.mapping.paths_of("ctl") == ["A"]

    def test_without_rtt_constraint_prefers_bandwidth(self, rng):
        # 29 Mbps only fits on path B (60±1); without an RTT ceiling the
        # high-RTT path is fine.
        scheduler = PGOSScheduler(min_history=30)
        streams = [
            StreamSpec(name="data", required_mbps=29.0, probability=0.95),
        ]
        scheduler.setup(streams, ["A", "B"], dt=0.1, tw=1.0)
        for k in range(60):
            scheduler.observe(
                k,
                {"A": 30.0 + rng.standard_normal(), "B": 60.0 + rng.standard_normal()},
                rtt_ms={"A": 15.0, "B": 100.0},
            )
        scheduler.allocate(60, {"data": 29.0})
        assert scheduler.mapping.paths_of("data") == ["B"]
