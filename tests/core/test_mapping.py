"""Utility-based resource mapping (Section 5.2.2)."""

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.core.mapping import (
    compute_mapping,
    even_split_mapping,
    largest_remainder_split,
    shifted_cdf,
)
from repro.core.spec import StreamSpec
from repro.monitoring.cdf import EmpiricalCDF


def cdf(mean, std, rng, n=3000):
    return EmpiricalCDF(np.clip(mean + std * rng.standard_normal(n), 0, None))


@pytest.fixture
def two_paths(rng):
    """Path A: 50±4 (stable); path B: 30±10 (noisy)."""
    return {"A": cdf(50, 4, rng), "B": cdf(30, 10, rng)}


class TestShiftedCDF:
    def test_shift_moves_mass_down(self, gaussian_cdf):
        shifted = shifted_cdf(gaussian_cdf, 10.0)
        assert shifted.mean() == pytest.approx(gaussian_cdf.mean() - 10.0, abs=0.2)

    def test_clips_at_zero(self):
        shifted = shifted_cdf(EmpiricalCDF([5.0, 15.0]), 10.0)
        assert list(shifted.samples) == [0.0, 5.0]

    def test_zero_shift_is_identity(self, gaussian_cdf):
        assert shifted_cdf(gaussian_cdf, 0.0) is gaussian_cdf

    def test_negative_rejected(self, gaussian_cdf):
        with pytest.raises(ConfigurationError):
            shifted_cdf(gaussian_cdf, -1.0)


class TestLargestRemainder:
    def test_sums_to_total(self):
        parts = largest_remainder_split(10, [1.0, 1.0, 1.0])
        assert sum(parts) == 10

    def test_proportionality(self):
        assert largest_remainder_split(15, [9, 6]) == [9, 6]

    def test_rounding_bounded_by_one(self):
        parts = largest_remainder_split(100, [1, 2, 3, 5])
        exact = [100 * w / 11 for w in (1, 2, 3, 5)]
        assert all(abs(p - e) < 1.0 for p, e in zip(parts, exact))

    def test_zero_weights(self):
        assert largest_remainder_split(5, [0.0, 0.0]) == [5, 0]

    def test_zero_total(self):
        assert largest_remainder_split(0, [1, 2]) == [0, 0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            largest_remainder_split(-1, [1])
        with pytest.raises(ConfigurationError):
            largest_remainder_split(1, [])
        with pytest.raises(ConfigurationError):
            largest_remainder_split(1, [-1.0])


class TestSinglePathMapping:
    def test_stream_fits_on_stable_path(self, two_paths):
        specs = [StreamSpec(name="ctl", required_mbps=20.0, probability=0.95)]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        assert mapping.paths_of("ctl") == ["A"]
        assert not mapping.is_split("ctl")
        assert mapping.achieved_probability["ctl"] >= 0.95

    def test_most_important_stream_first(self, two_paths):
        # Both fit only on the stable path alone; the P=0.99 stream is
        # placed first (highest probability wins the precedence order).
        specs = [
            StreamSpec(name="lo", required_mbps=14.0, probability=0.90),
            StreamSpec(name="hi", required_mbps=30.0, probability=0.99),
        ]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        assert mapping.paths_of("hi") == ["A"]
        assert mapping.achieved_probability["lo"] >= 0.90

    def test_total_rate_matches_requirement(self, two_paths):
        specs = [StreamSpec(name="s", required_mbps=25.0, probability=0.95)]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        assert mapping.total_rate("s") == pytest.approx(25.0)

    def test_packet_counts_cover_rate(self, two_paths):
        specs = [StreamSpec(name="s", required_mbps=25.0, probability=0.95)]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        total_packets = sum(mapping.packets["s"].values())
        assert total_packets == specs[0].packets_in_window(1.0)


class TestSplitMapping:
    def test_splits_when_no_single_path_fits(self, rng):
        paths = {"A": cdf(30, 2, rng), "B": cdf(30, 2, rng)}
        specs = [StreamSpec(name="big", required_mbps=45.0, probability=0.9)]
        mapping = compute_mapping(specs, paths, tw=1.0)
        assert mapping.is_split("big")
        assert mapping.total_rate("big") == pytest.approx(45.0)
        assert mapping.achieved_probability["big"] >= 0.9

    def test_infeasible_raises_admission_error(self, rng):
        paths = {"A": cdf(10, 2, rng), "B": cdf(10, 2, rng)}
        specs = [StreamSpec(name="huge", required_mbps=80.0, probability=0.95)]
        with pytest.raises(AdmissionError) as excinfo:
            compute_mapping(specs, paths, tw=1.0)
        assert excinfo.value.stream_name == "huge"


class TestElasticMapping:
    def test_elastic_gets_leftover_on_both_paths(self, two_paths):
        specs = [
            StreamSpec(name="ctl", required_mbps=20.0, probability=0.95),
            StreamSpec(name="bulk", elastic=True, nominal_mbps=40.0),
        ]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        assert set(mapping.paths_of("bulk")) == {"A", "B"}
        # Leftover mean: (50-20) + 30 = 60-ish.
        assert mapping.total_rate("bulk") == pytest.approx(60.0, rel=0.15)

    def test_two_elastic_share_by_weight(self, two_paths):
        specs = [
            StreamSpec(name="e1", elastic=True, nominal_mbps=30.0),
            StreamSpec(name="e2", elastic=True, nominal_mbps=10.0),
        ]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        assert mapping.total_rate("e1") / mapping.total_rate(
            "e2"
        ) == pytest.approx(3.0, rel=0.01)

    def test_guaranteed_elastic_gets_both(self, two_paths):
        specs = [
            StreamSpec(
                name="video",
                required_mbps=5.0,
                probability=0.95,
                elastic=True,
                nominal_mbps=20.0,
            ),
        ]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        # Reserved 5 Mbps plus an elastic share on top.
        assert mapping.total_rate("video") > 5.0
        assert mapping.achieved_probability["video"] >= 0.95


class TestViolationBoundMapping:
    def test_single_path_within_bound(self, two_paths):
        specs = [
            StreamSpec(name="vb", required_mbps=20.0, max_violation_rate=0.05)
        ]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        assert mapping.achieved_violation_rate["vb"] <= 0.05
        assert mapping.total_rate("vb") >= 20.0

    def test_split_reduces_violations(self, rng):
        paths = {"A": cdf(28, 3, rng), "B": cdf(28, 3, rng)}
        specs = [
            StreamSpec(name="vb", required_mbps=40.0, max_violation_rate=0.10)
        ]
        mapping = compute_mapping(specs, paths, tw=1.0)
        assert mapping.is_split("vb")
        assert mapping.achieved_violation_rate["vb"] <= 0.10

    def test_impossible_bound_raises(self, rng):
        paths = {"A": cdf(10, 3, rng)}
        specs = [
            StreamSpec(name="vb", required_mbps=50.0, max_violation_rate=0.01)
        ]
        with pytest.raises(AdmissionError):
            compute_mapping(specs, paths, tw=1.0)


class TestEvenSplitMapping:
    def test_even_shares(self, two_paths):
        specs = [StreamSpec(name="s", required_mbps=20.0, probability=0.95)]
        mapping = even_split_mapping(specs, two_paths, tw=1.0)
        assert mapping.rate("s", "A") == pytest.approx(10.0)
        assert mapping.rate("s", "B") == pytest.approx(10.0)

    def test_guarantee_reported_with_union_bound(self, two_paths):
        specs = [StreamSpec(name="s", required_mbps=20.0, probability=0.95)]
        mapping = even_split_mapping(specs, two_paths, tw=1.0)
        assert 0.0 <= mapping.achieved_probability["s"] <= 1.0


class TestCompile:
    def test_mapping_compiles_to_schedule(self, two_paths):
        specs = [
            StreamSpec(name="ctl", required_mbps=10.0, probability=0.95),
            StreamSpec(name="bulk", elastic=True, nominal_mbps=20.0),
        ]
        mapping = compute_mapping(specs, two_paths, tw=1.0)
        schedule = mapping.compile(
            stream_order=["ctl", "bulk"], path_order=["A", "B"]
        )
        assert schedule.packets_for("ctl") == sum(
            mapping.packets["ctl"].values()
        )
        # Best-effort traffic is rule-3 "unscheduled": not in the vectors.
        assert schedule.packets_for("bulk") == 0
        full = mapping.compile(
            stream_order=["ctl", "bulk"],
            path_order=["A", "B"],
            include_best_effort=True,
        )
        assert full.total_packets == sum(
            sum(p.values()) for p in mapping.packets.values()
        )

    def test_requires_path_cdfs(self):
        with pytest.raises(ConfigurationError):
            compute_mapping(
                [StreamSpec(name="s", required_mbps=1.0)], {}, tw=1.0
            )

    def test_invalid_tw(self, two_paths):
        with pytest.raises(ConfigurationError):
            compute_mapping(
                [StreamSpec(name="s", required_mbps=1.0)], two_paths, tw=0.0
            )
