"""The shared scheduler interface and the water-filling contention model."""

import pytest

from repro.errors import ConfigurationError
from repro.core.scheduler import PathShareRequest, SchedulerBase, water_fill
from repro.core.spec import StreamSpec


def req(stream, demand, weight, level=0):
    return PathShareRequest(
        stream=stream, demand_mbps=demand, weight=weight, level=level
    )


class TestWaterFill:
    def test_underload_everyone_satisfied(self):
        granted = water_fill([req("a", 10, 10), req("b", 20, 20)], 100.0)
        assert granted == {"a": 10, "b": 20}

    def test_overload_proportional_to_weight(self):
        granted = water_fill([req("a", 40, 1), req("b", 40, 3)], 40.0)
        assert granted["a"] == pytest.approx(10.0)
        assert granted["b"] == pytest.approx(30.0)

    def test_capped_stream_redistributes_surplus(self):
        # a is capped at 5; b takes the rest regardless of weights.
        granted = water_fill([req("a", 5, 50), req("b", None, 1)], 60.0)
        assert granted["a"] == pytest.approx(5.0)
        assert granted["b"] == pytest.approx(55.0)

    def test_unbounded_demand_absorbs_all(self):
        granted = water_fill([req("a", None, 1)], 33.0)
        assert granted["a"] == pytest.approx(33.0)

    def test_strict_priority_levels(self):
        granted = water_fill(
            [req("hi", 30, 1, level=0), req("lo", None, 100, level=1)], 40.0
        )
        assert granted["hi"] == pytest.approx(30.0)
        assert granted["lo"] == pytest.approx(10.0)

    def test_starved_low_level(self):
        granted = water_fill(
            [req("hi", None, 1, level=0), req("lo", 5, 1, level=1)], 20.0
        )
        assert granted["hi"] == pytest.approx(20.0)
        assert granted["lo"] == 0.0

    def test_zero_capacity(self):
        granted = water_fill([req("a", 10, 1)], 0.0)
        assert granted["a"] == 0.0

    def test_conservation(self):
        requests = [req("a", 7, 2), req("b", None, 1), req("c", 3, 5, level=1)]
        granted = water_fill(requests, 50.0)
        assert sum(granted.values()) == pytest.approx(50.0)

    def test_no_overallocation_when_demand_short(self):
        granted = water_fill([req("a", 5, 1), req("b", 5, 1)], 100.0)
        assert sum(granted.values()) == pytest.approx(10.0)

    def test_duplicate_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            water_fill([req("a", 5, 1), req("a", 5, 1)], 10.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            water_fill([], -1.0)

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            PathShareRequest(stream="s", demand_mbps=-1.0, weight=1.0)
        with pytest.raises(ConfigurationError):
            PathShareRequest(stream="s", demand_mbps=1.0, weight=0.0)
        with pytest.raises(ConfigurationError):
            PathShareRequest(stream="s", demand_mbps=1.0, weight=1.0, level=-1)


class TestSchedulerBase:
    def test_setup_validation(self):
        scheduler = SchedulerBase()
        streams = [StreamSpec(name="s", required_mbps=1.0)]
        with pytest.raises(ConfigurationError):
            scheduler.setup([], ["A"], 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            scheduler.setup(streams, [], 0.1, 1.0)
        with pytest.raises(ConfigurationError):
            scheduler.setup(streams, ["A"], 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            scheduler.setup(streams * 2, ["A"], 0.1, 1.0)  # duplicate names

    def test_stream_lookup(self):
        scheduler = SchedulerBase()
        spec = StreamSpec(name="s", required_mbps=1.0)
        scheduler.setup([spec], ["A"], 0.1, 1.0)
        assert scheduler.stream("s") is spec
        with pytest.raises(ConfigurationError):
            scheduler.stream("ghost")
