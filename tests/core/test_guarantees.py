"""Lemma 1 and Lemma 2, verified analytically and by Monte Carlo."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.guarantees import (
    expected_violation_rate,
    feasible_with_probability,
    guaranteed_rate_at,
    packet_guarantee,
    probabilistic_guarantee,
    required_bandwidth_mbps,
    violation_bound,
)
from repro.monitoring.cdf import EmpiricalCDF

TW = 1.0
PKT = 1500


class TestRequiredBandwidth:
    def test_thousand_packets_is_12mbps(self):
        assert required_bandwidth_mbps(1000, 1500, 1.0) == pytest.approx(12.0)

    def test_scales_inverse_with_window(self):
        assert required_bandwidth_mbps(1000, 1500, 2.0) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_bandwidth_mbps(-1, 1500, 1.0)
        with pytest.raises(ConfigurationError):
            required_bandwidth_mbps(1, 0, 1.0)


class TestLemma1:
    def test_probability_from_known_distribution(self):
        cdf = EmpiricalCDF([10.0, 20.0, 30.0, 40.0])
        assert probabilistic_guarantee(cdf, 25.0) == 0.5
        assert probabilistic_guarantee(cdf, 5.0) == 1.0
        assert probabilistic_guarantee(cdf, 50.0) == 0.0

    def test_boundary_sample_counts_as_success(self):
        cdf = EmpiricalCDF([10.0, 20.0])
        assert probabilistic_guarantee(cdf, 20.0) == 0.5
        assert probabilistic_guarantee(cdf, 10.0) == 1.0

    def test_packet_form_consistent(self):
        cdf = EmpiricalCDF(np.linspace(1, 100, 1000))
        x = 1000  # -> b0 = 12 Mbps
        assert packet_guarantee(cdf, x, PKT, TW) == pytest.approx(
            probabilistic_guarantee(cdf, 12.0)
        )

    def test_monte_carlo_guarantee_holds(self, rng):
        """Lemma 1 against simulation: serve x packets whenever bw >= b0."""
        history = 40 + 8 * rng.standard_normal(5000)
        cdf = EmpiricalCDF(history)
        x = 2500  # b0 = 30 Mbps
        b0 = required_bandwidth_mbps(x, PKT, TW)
        p_claimed = probabilistic_guarantee(cdf, b0)
        future = 40 + 8 * rng.standard_normal(20_000)
        served = np.mean(future >= b0)
        assert served == pytest.approx(p_claimed, abs=0.02)

    def test_feasibility_check(self, gaussian_cdf):
        # N(50, 5): the 5th percentile is ~41.8.
        assert feasible_with_probability(gaussian_cdf, 40.0, 0.95)
        assert not feasible_with_probability(gaussian_cdf, 49.0, 0.95)

    def test_guaranteed_rate_is_inverse(self, gaussian_cdf):
        rate = guaranteed_rate_at(gaussian_cdf, 0.95)
        assert probabilistic_guarantee(gaussian_cdf, rate) >= 0.95

    def test_validation(self, gaussian_cdf):
        with pytest.raises(ConfigurationError):
            probabilistic_guarantee(gaussian_cdf, -1.0)
        with pytest.raises(ConfigurationError):
            feasible_with_probability(gaussian_cdf, 10.0, 1.0)
        with pytest.raises(ConfigurationError):
            guaranteed_rate_at(gaussian_cdf, 0.0)


class TestLemma2:
    def test_zero_packets_zero_bound(self, gaussian_cdf):
        assert violation_bound(gaussian_cdf, 0, PKT, TW) == 0.0

    def test_bound_zero_when_bandwidth_always_sufficient(self):
        cdf = EmpiricalCDF([100.0, 110.0, 120.0])
        assert violation_bound(cdf, 100, PKT, TW) == 0.0  # b0 = 1.2 Mbps

    def test_bound_caps_at_x(self):
        cdf = EmpiricalCDF([0.0, 0.0])
        assert violation_bound(cdf, 50, PKT, TW) == 50.0

    def test_hand_computed_example(self):
        # Distribution: bw in {6, 24} Mbps equally likely; requirement
        # x = 1000 pkts (b0 = 12).  F(b0) = 0.5, M[b0] = 3 Mbps = 250
        # pkts/window.  Bound = 1000*0.5 - 250 = 250.
        cdf = EmpiricalCDF([6.0, 24.0])
        assert violation_bound(cdf, 1000, PKT, TW) == pytest.approx(250.0)

    def test_monte_carlo_bound_holds(self, rng):
        """E[Z] measured by simulation never exceeds the Lemma-2 bound."""
        history = 30 + 6 * rng.standard_normal(5000)
        cdf = EmpiricalCDF(history)
        x = 2200  # b0 = 26.4 Mbps, inside the noisy region
        b0 = required_bandwidth_mbps(x, PKT, TW)
        bound = violation_bound(cdf, x, PKT, TW)
        future = np.clip(30 + 6 * rng.standard_normal(50_000), 0, None)
        # Packets missed per window: shortfall when bw < b0.
        served = np.minimum(future * 1e6 / 8.0 * TW / PKT, x)
        misses = (x - served).mean()
        assert misses <= bound * 1.05
        assert bound > 0  # the scenario actually exercises the bound

    def test_bound_monotone_in_demand(self, gaussian_cdf):
        bounds = [
            expected_violation_rate(gaussian_cdf, x, PKT, TW)
            for x in (2000, 3000, 4000, 5000)
        ]
        assert bounds == sorted(bounds)

    def test_rate_normalization(self, gaussian_cdf):
        x = 4000
        assert expected_violation_rate(
            gaussian_cdf, x, PKT, TW
        ) == pytest.approx(violation_bound(gaussian_cdf, x, PKT, TW) / x)
