"""Batched guarantee evaluation must be bit-identical to the scalar path.

The PGOS mapping step now evaluates Lemma 1/2 over whole candidate-rate
ladders with one vectorized pass per path; the byte-stability of every
schedule (and hence of the golden figure digests) rests on each batch
element equalling the scalar call exactly — not approximately.
"""

import numpy as np
import pytest

from repro.core.guarantees import (
    expected_violation_rate,
    expected_violation_rates_batch,
    probabilistic_guarantee,
    probabilistic_guarantee_batch,
    violation_bound,
    violation_bounds_batch,
)
from repro.core.mapping import compute_mapping, even_split_mapping, shifted_cdf
from repro.core.spec import StreamSpec
from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF

PKT = 1500
TW = 1.0


@pytest.fixture
def cdf():
    rng = np.random.default_rng(0)
    return EmpiricalCDF(np.clip(50 + 8 * rng.standard_normal(500), 0, None))


class TestBatchEqualsScalar:
    def test_probabilistic_guarantee(self, cdf):
        rates = np.concatenate(
            [np.linspace(0.0, 90.0, 181), cdf.samples[:25]]
        )
        batch = probabilistic_guarantee_batch(cdf, rates)
        for i, r in enumerate(rates):
            assert batch[i] == probabilistic_guarantee(cdf, float(r))

    def test_violation_bounds(self, cdf):
        xs = np.arange(0, 6000, 37, dtype=np.int64)
        batch = violation_bounds_batch(cdf, xs, PKT, TW)
        for i, x in enumerate(xs):
            assert batch[i] == violation_bound(cdf, int(x), PKT, TW)

    def test_expected_violation_rates(self, cdf):
        xs = np.arange(0, 6000, 41, dtype=np.int64)
        batch = expected_violation_rates_batch(cdf, xs, PKT, TW)
        for i, x in enumerate(xs):
            assert batch[i] == expected_violation_rate(cdf, int(x), PKT, TW)

    def test_zero_packets_is_zero(self, cdf):
        assert violation_bounds_batch(cdf, np.array([0]), PKT, TW)[0] == 0.0
        assert (
            expected_violation_rates_batch(cdf, np.array([0]), PKT, TW)[0]
            == 0.0
        )

    def test_negative_inputs_rejected(self, cdf):
        with pytest.raises(ConfigurationError):
            probabilistic_guarantee_batch(cdf, np.array([-1.0]))
        with pytest.raises(ConfigurationError):
            violation_bounds_batch(cdf, np.array([-1]), PKT, TW)
        with pytest.raises(ConfigurationError):
            violation_bounds_batch(cdf, np.array([1]), 0, TW)

    def test_partial_means_below(self, cdf):
        thresholds = np.concatenate(
            [np.linspace(-5.0, 95.0, 201), cdf.samples[:25]]
        )
        batch = cdf.partial_means_below(thresholds)
        for i, b0 in enumerate(thresholds):
            assert batch[i] == cdf.partial_mean_below(float(b0))


class TestShiftedCDF:
    def test_matches_sorting_construction(self, cdf):
        for allocated in (0.5, 13.7, 49.0, 200.0):
            fast = shifted_cdf(cdf, allocated)
            ref = EmpiricalCDF(
                np.clip(np.asarray(cdf.samples) - allocated, 0.0, None)
            )
            assert np.array_equal(fast.samples, ref.samples)

    def test_zero_shift_returns_same_object(self, cdf):
        assert shifted_cdf(cdf, 0.0) is cdf

    def test_result_immutable(self, cdf):
        shifted = shifted_cdf(cdf, 5.0)
        with pytest.raises(ValueError):
            shifted.samples[0] = 1.0


class TestMappingUnchangedByBatching:
    """The ladder-driven greedy must place exactly as the scalar greedy.

    An inline reimplementation of the seed's scalar violation-bound
    mapping serves as the reference; any placement or achieved-bound
    drift fails exactly (no tolerance).
    """

    def _scalar_violation_reference(self, spec, cdfs, path_order, tw, chunks=10):
        x_total = spec.packets_in_window(tw)
        bound = spec.max_violation_rate
        residuals = {p: cdfs[p] for p in path_order}
        singles = [
            (
                expected_violation_rate(residuals[p], x_total, spec.packet_size, tw),
                p,
            )
            for p in path_order
        ]
        best_rate, best_path = min(
            singles, key=lambda t: (t[0], path_order.index(t[1]))
        )
        if best_rate <= bound:
            return {best_path: x_total}, best_rate
        chunk = max(1, x_total // chunks)
        placed = {p: 0 for p in path_order}
        remaining = x_total
        while remaining > 0:
            take = min(chunk, remaining)
            best_p, best_cost = None, None
            for p in path_order:
                new_x = placed[p] + take
                cost = expected_violation_rate(
                    residuals[p], new_x, spec.packet_size, tw
                ) * new_x - expected_violation_rate(
                    residuals[p], placed[p], spec.packet_size, tw
                ) * placed[p]
                if best_cost is None or cost < best_cost:
                    best_p, best_cost = p, cost
            placed[best_p] += take
            remaining -= take
        total = sum(
            expected_violation_rate(residuals[p], placed[p], spec.packet_size, tw)
            * placed[p]
            for p in path_order
            if placed[p] > 0
        )
        return placed, total / x_total

    def test_violation_bound_mapping_identical(self):
        rng = np.random.default_rng(7)
        cdfs = {
            "A": EmpiricalCDF(np.clip(18 + 6 * rng.standard_normal(400), 0, None)),
            "B": EmpiricalCDF(np.clip(14 + 7 * rng.standard_normal(400), 0, None)),
            "C": EmpiricalCDF(np.clip(10 + 3 * rng.standard_normal(400), 0, None)),
        }
        # Demand high enough that no single path passes: forces the greedy.
        spec = StreamSpec(
            name="viol",
            required_mbps=30.0,
            max_violation_rate=0.08,
            packet_size=PKT,
        )
        ref_placed, ref_achieved = self._scalar_violation_reference(
            spec, cdfs, ["A", "B", "C"], TW
        )
        mapping = compute_mapping([spec], cdfs, TW)
        got = mapping.rates_mbps["viol"]
        expected_rates = {
            p: spec.rate_from_packets(c, TW)
            for p, c in ref_placed.items()
            if c > 0
        }
        assert got == expected_rates
        assert mapping.achieved_violation_rate["viol"] == ref_achieved

    def test_even_split_guarantees_identical(self):
        rng = np.random.default_rng(8)
        cdfs = {
            "A": EmpiricalCDF(np.clip(50 + 5 * rng.standard_normal(300), 0, None)),
            "B": EmpiricalCDF(np.clip(35 + 9 * rng.standard_normal(300), 0, None)),
        }
        specs = [
            StreamSpec(name="crit", required_mbps=20.0, probability=0.95),
            StreamSpec(name="data", required_mbps=12.0, probability=0.9),
            StreamSpec(name="bulk", elastic=True, nominal_mbps=25.0),
        ]
        mapping = even_split_mapping(specs, cdfs, TW)
        for spec in specs:
            if not spec.guaranteed:
                assert spec.name not in mapping.achieved_probability
                continue
            share = spec.required_mbps / 2
            misses = sum(
                1.0 - probabilistic_guarantee(cdfs[p], share)
                for p in ("A", "B")
            )
            assert mapping.achieved_probability[spec.name] == max(
                0.0, 1.0 - misses
            )
