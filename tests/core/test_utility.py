"""Utility-based stream selection under overload."""

import numpy as np
import pytest

from repro.core.spec import StreamSpec
from repro.core.utility import select_streams_by_utility
from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF


@pytest.fixture
def paths(rng):
    """Capacity supports ~45 Mbps of guarantees at 95 %, not more."""
    return {
        "A": EmpiricalCDF(np.clip(30 + 2 * rng.standard_normal(2000), 0, None)),
        "B": EmpiricalCDF(np.clip(25 + 2 * rng.standard_normal(2000), 0, None)),
    }


def spec(name, mbps):
    return StreamSpec(name=name, required_mbps=mbps, probability=0.95)


class TestSelection:
    def test_everything_admitted_when_feasible(self, paths):
        specs = [spec("a", 10.0), spec("b", 10.0)]
        sel = select_streams_by_utility(
            specs, {"a": 1.0, "b": 1.0}, paths
        )
        assert set(sel.admitted) == {"a", "b"}
        assert sel.demoted == ()
        assert sel.mapping is not None

    def test_overload_demotes_lowest_density(self, paths):
        # Combined demand 75 > ~45 capacity: the big low-utility stream
        # must be demoted.
        specs = [spec("control", 5.0), spec("video", 30.0), spec("bulkish", 40.0)]
        utilities = {"control": 100.0, "video": 50.0, "bulkish": 10.0}
        sel = select_streams_by_utility(specs, utilities, paths)
        assert "control" in sel.admitted
        assert "bulkish" in sel.demoted
        assert sel.total_utility >= 150.0

    def test_total_utility_consistent(self, paths):
        specs = [spec("a", 20.0), spec("b", 20.0), spec("c", 40.0)]
        utilities = {"a": 3.0, "b": 2.0, "c": 1.0}
        sel = select_streams_by_utility(specs, utilities, paths)
        assert sel.total_utility == sum(
            utilities[name] for name in sel.admitted
        )

    def test_elastic_streams_always_carried(self, paths):
        specs = [
            spec("big", 80.0),  # infeasible
            StreamSpec(name="bulk", elastic=True, nominal_mbps=10.0),
        ]
        sel = select_streams_by_utility(specs, {"big": 1.0}, paths)
        assert sel.admitted == ()
        assert sel.demoted == ("big",)
        assert sel.mapping is not None
        assert sel.mapping.total_rate("bulk") > 0

    def test_missing_utility_rejected(self, paths):
        with pytest.raises(ConfigurationError, match="missing utilities"):
            select_streams_by_utility([spec("a", 5.0)], {}, paths)

    def test_negative_utility_rejected(self, paths):
        with pytest.raises(ConfigurationError):
            select_streams_by_utility(
                [spec("a", 5.0)], {"a": -1.0}, paths
            )

    def test_greedy_prefers_density_not_raw_utility(self, paths):
        # "fat" has the highest utility but terrible density; two lean
        # streams together beat it and fit.
        specs = [spec("fat", 50.0), spec("lean1", 20.0), spec("lean2", 20.0)]
        utilities = {"fat": 55.0, "lean1": 40.0, "lean2": 40.0}
        sel = select_streams_by_utility(specs, utilities, paths)
        assert set(sel.admitted) == {"lean1", "lean2"}
        assert sel.total_utility == 80.0
