"""Scheduling vectors: the paper's worked example, exactly.

Section 5.2.2: stream S1 has 5 packets on path 1; stream S2 has 4 packets
on path 1 and 6 on path 2.  Path 1 carries 9 packets, path 2 carries 6.
The paper gives V_P = [1,2,1,2,1,1,2,1,2,1,1,2,1,2,1] and
V_S^1 = [1,2,1,2,1,2,1,2,1] (the paper prints two extra trailing entries
for V_S^1 — a typo, as path 1 only has 9 packets; our vector is the
9-entry prefix, which matches the stated deadline sequence
S1,S2,S1,S2,S1,S2,S1,S2,S1).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.vectors import (
    Schedule,
    build_schedule,
    path_lookup_vector,
    stream_schedule_vector,
    virtual_deadlines,
)


class TestVirtualDeadlines:
    def test_spread_over_window(self):
        d = virtual_deadlines(4, 1.0)
        assert np.allclose(d, [0.0, 0.25, 0.5, 0.75])

    def test_zero_count(self):
        assert virtual_deadlines(0, 1.0).size == 0

    def test_scales_with_window(self):
        assert np.allclose(virtual_deadlines(2, 4.0), [0.0, 2.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            virtual_deadlines(-1, 1.0)
        with pytest.raises(ConfigurationError):
            virtual_deadlines(3, 0.0)


class TestPaperExample:
    def test_vp_matches_paper(self):
        vp = path_lookup_vector({1: 9, 2: 6}, tw=1.0, order=[1, 2])
        assert vp == [1, 2, 1, 2, 1, 1, 2, 1, 2, 1, 1, 2, 1, 2, 1]

    def test_vs_path1_matches_paper(self):
        vs = stream_schedule_vector({"S1": 5, "S2": 4}, tw=1.0, order=["S1", "S2"])
        assert vs == ["S1", "S2", "S1", "S2", "S1", "S2", "S1", "S2", "S1"]

    def test_full_schedule(self):
        schedule = build_schedule(
            {"S1": {1: 5}, "S2": {1: 4, 2: 6}},
            tw=1.0,
            stream_order=["S1", "S2"],
            path_order=[1, 2],
        )
        assert list(schedule.vp) == [1, 2, 1, 2, 1, 1, 2, 1, 2, 1, 1, 2, 1, 2, 1]
        assert list(schedule.vs[1]) == [
            "S1", "S2", "S1", "S2", "S1", "S2", "S1", "S2", "S1",
        ]
        assert list(schedule.vs[2]) == ["S2"] * 6
        assert schedule.path_packets == {1: 9, 2: 6}
        assert schedule.total_packets == 15
        assert schedule.packets_for("S2") == 10

    def test_vp_proportions(self):
        # "three fifths of the time it will visit path 1, two fifths path 2"
        vp = path_lookup_vector({1: 9, 2: 6}, tw=1.0, order=[1, 2])
        assert vp.count(1) / len(vp) == pytest.approx(3 / 5)
        assert vp.count(2) / len(vp) == pytest.approx(2 / 5)


class TestGeneralProperties:
    def test_counts_preserved(self):
        vp = path_lookup_vector({"A": 7, "B": 3, "C": 5}, tw=1.0)
        assert vp.count("A") == 7
        assert vp.count("B") == 3
        assert vp.count("C") == 5

    def test_interleaving_is_smooth(self):
        # Equal shares should alternate perfectly.
        vp = path_lookup_vector({"A": 5, "B": 5}, tw=1.0, order=["A", "B"])
        assert vp == ["A", "B"] * 5

    def test_zero_share_paths_absent(self):
        vp = path_lookup_vector({"A": 3, "B": 0}, tw=1.0)
        assert "B" not in vp

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            path_lookup_vector({"A": -1}, tw=1.0)

    def test_key_missing_from_order_rejected(self):
        with pytest.raises(ConfigurationError):
            path_lookup_vector({"A": 1}, tw=1.0, order=["B"])


class TestBuildSchedule:
    def test_null_substreams_dropped(self):
        schedule = build_schedule(
            {"S1": {"A": 5, "B": 0}}, tw=1.0
        )
        assert schedule.stream_path_packets == {"S1": {"A": 5}}
        assert "B" not in schedule.vs

    def test_empty_stream_ok(self):
        schedule = build_schedule({"S1": {}}, tw=1.0)
        assert schedule.total_packets == 0
        assert schedule.packets_for("S1") == 0

    def test_stream_order_breaks_ties(self):
        # Both streams' first packets share deadline 0; precedence first.
        schedule = build_schedule(
            {"low": {"A": 2}, "high": {"A": 2}},
            tw=1.0,
            stream_order=["high", "low"],
        )
        assert schedule.vs["A"][0] == "high"

    def test_invalid_tw(self):
        with pytest.raises(ConfigurationError):
            build_schedule({"S1": {"A": 1}}, tw=0.0)

    def test_negative_packets_rejected(self):
        with pytest.raises(ConfigurationError):
            build_schedule({"S1": {"A": -2}}, tw=1.0)

    def test_path_order_must_cover_paths(self):
        with pytest.raises(ConfigurationError):
            build_schedule(
                {"S1": {"A": 1}}, tw=1.0, path_order=["B"]
            )
