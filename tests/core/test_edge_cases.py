"""Edge cases across the core: many paths, tight fits, odd specs."""

import numpy as np
import pytest

from repro.errors import AdmissionError
from repro.core.mapping import compute_mapping
from repro.core.pgos import PGOSScheduler
from repro.core.scheduler import water_fill
from repro.core.spec import StreamSpec, WindowConstraint
from repro.core.vectors import build_schedule, path_lookup_vector
from repro.monitoring.cdf import EmpiricalCDF


def cdf(mean, std, rng, n=1500):
    return EmpiricalCDF(np.clip(mean + std * rng.standard_normal(n), 0, None))


class TestManyPaths:
    def test_mapping_over_four_paths(self, rng):
        paths = {
            "P0": cdf(15, 2, rng),
            "P1": cdf(15, 2, rng),
            "P2": cdf(15, 2, rng),
            "P3": cdf(15, 2, rng),
        }
        # 40 Mbps fits nowhere alone: must split across >= 3 paths.
        specs = [StreamSpec(name="wide", required_mbps=40.0, probability=0.9)]
        mapping = compute_mapping(specs, paths, tw=1.0)
        assert len(mapping.paths_of("wide")) >= 3
        assert mapping.total_rate("wide") == pytest.approx(40.0)

    def test_vp_over_four_paths_preserves_shares(self):
        counts = {"P0": 10, "P1": 20, "P2": 30, "P3": 40}
        vp = path_lookup_vector(counts, tw=1.0)
        assert len(vp) == 100
        for path, count in counts.items():
            assert vp.count(path) == count

    def test_pgos_with_four_paths(self, rng):
        scheduler = PGOSScheduler(min_history=20)
        specs = [
            StreamSpec(name="a", required_mbps=10.0, probability=0.95),
            StreamSpec(name="e", elastic=True, nominal_mbps=20.0),
        ]
        names = ["P0", "P1", "P2", "P3"]
        scheduler.setup(specs, names, dt=0.1, tw=1.0)
        scheduler.seed_history(
            {p: 15 + 2 * rng.standard_normal(50) for p in names}
        )
        requests = scheduler.allocate(0, {"a": 10.0, "e": None})
        assert set(requests) == set(names)


class TestSinglePathTopology:
    def test_everything_on_the_only_path(self, rng):
        paths = {"solo": cdf(50, 3, rng)}
        specs = [
            StreamSpec(name="a", required_mbps=20.0, probability=0.95),
            StreamSpec(name="e", elastic=True, nominal_mbps=10.0),
        ]
        mapping = compute_mapping(specs, paths, tw=1.0)
        assert mapping.paths_of("a") == ["solo"]
        assert mapping.paths_of("e") == ["solo"]

    def test_single_path_infeasible_split_impossible(self, rng):
        paths = {"solo": cdf(10, 1, rng)}
        specs = [StreamSpec(name="big", required_mbps=50.0, probability=0.9)]
        with pytest.raises(AdmissionError):
            compute_mapping(specs, paths, tw=1.0)


class TestTightFits:
    def test_requirement_exactly_at_quantile(self, rng):
        samples = np.concatenate([np.full(95, 30.0), np.full(5, 10.0)])
        paths = {"edge": EmpiricalCDF(samples)}
        # P(bw >= 30) = 0.95 exactly: must be admitted at P = 0.95.
        specs = [StreamSpec(name="s", required_mbps=30.0, probability=0.95)]
        mapping = compute_mapping(specs, paths, tw=1.0)
        assert mapping.achieved_probability["s"] >= 0.95

    def test_epsilon_above_quantile_rejected(self, rng):
        samples = np.concatenate([np.full(95, 30.0), np.full(5, 10.0)])
        paths = {"edge": EmpiricalCDF(samples)}
        specs = [
            StreamSpec(name="s", required_mbps=30.0001, probability=0.951)
        ]
        with pytest.raises(AdmissionError):
            compute_mapping(specs, paths, tw=1.0)

    def test_zero_capacity_path_handled(self, rng):
        paths = {
            "dead": EmpiricalCDF(np.zeros(100)),
            "live": cdf(40, 3, rng),
        }
        specs = [StreamSpec(name="s", required_mbps=20.0, probability=0.95)]
        mapping = compute_mapping(specs, paths, tw=1.0)
        assert mapping.paths_of("s") == ["live"]


class TestWindowConstraintSpecs:
    def test_constraint_only_stream_mapped(self, rng):
        paths = {"A": cdf(50, 3, rng)}
        spec = StreamSpec(
            name="wc",
            elastic=True,
            nominal_mbps=5.0,
            window_constraint=WindowConstraint(x=100, y=200),
        )
        assert spec.packets_in_window(1.0) == 100
        mapping = compute_mapping([spec], paths, tw=1.0)
        assert mapping.total_rate("wc") > 0

    def test_constraint_with_rate_uses_rate(self):
        spec = StreamSpec(
            name="wc",
            required_mbps=12.0,
            window_constraint=WindowConstraint(x=5, y=10),
        )
        # required_mbps wins over the raw x when both are present.
        assert spec.packets_in_window(1.0) == 1000


class TestWaterFillEdges:
    def test_empty_requests(self):
        assert water_fill([], 100.0) == {}

    def test_single_unbounded_level_gap(self):
        from repro.core.scheduler import PathShareRequest

        # Levels 0 and 5 with nothing between: the gap must not break
        # the level iteration.
        requests = [
            PathShareRequest(stream="hi", demand_mbps=10.0, weight=1.0, level=0),
            PathShareRequest(stream="lo", demand_mbps=None, weight=1.0, level=5),
        ]
        granted = water_fill(requests, 25.0)
        assert granted == {"hi": 10.0, "lo": 15.0}

    def test_zero_demand_request(self):
        from repro.core.scheduler import PathShareRequest

        requests = [
            PathShareRequest(stream="z", demand_mbps=0.0, weight=1.0),
            PathShareRequest(stream="x", demand_mbps=None, weight=1.0),
        ]
        granted = water_fill(requests, 10.0)
        assert granted["z"] == 0.0
        assert granted["x"] == pytest.approx(10.0)


class TestScheduleEdges:
    def test_one_packet_schedule(self):
        schedule = build_schedule({"s": {"A": 1}}, tw=1.0)
        assert schedule.vp == ("A",)
        assert schedule.vs["A"] == ("s",)

    def test_large_counts_consistent(self):
        schedule = build_schedule(
            {"a": {"A": 5000}, "b": {"A": 2500, "B": 7500}}, tw=1.0
        )
        assert schedule.total_packets == 15_000
        assert len(schedule.vp) == 15_000
