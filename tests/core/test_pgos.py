"""PGOS: the packet fast path (Figure 7 / Table 1) and interval allocation."""

from collections import deque

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.pgos import (
    LEVEL_SCHEDULED_ELSEWHERE,
    LEVEL_SCHEDULED_HERE,
    LEVEL_UNSCHEDULED,
    PGOSScheduler,
    dispatch_window,
    make_packet_queue,
)
from repro.core.scheduler import water_fill
from repro.core.spec import StreamSpec
from repro.core.vectors import build_schedule
from repro.transport.backoff import ExponentialBackoff
from repro.transport.service import PathService

PKT = 1000


def services(budgets: dict[str, float]) -> dict[str, PathService]:
    out = {}
    for name, budget in budgets.items():
        svc = PathService(
            name, backoff=ExponentialBackoff(base_delay=10.0, max_delay=10.0)
        )
        svc.begin_interval(0.0, budget)
        out[name] = svc
    return out


class TestDispatchBasics:
    def test_paper_example_dispatch(self):
        # S1: 5 pkts on path 1; S2: 4 on path 1 + 6 on path 2.
        schedule = build_schedule(
            {"S1": {"p1": 5}, "S2": {"p1": 4, "p2": 6}},
            tw=1.0,
            stream_order=["S1", "S2"],
            path_order=["p1", "p2"],
        )
        queues = {
            "S1": make_packet_queue("S1", 5, 1.0, PKT),
            "S2": make_packet_queue("S2", 10, 1.0, PKT),
        }
        svc = services({"p1": 9 * PKT, "p2": 6 * PKT})
        result = dispatch_window(schedule, svc, queues)
        assert result.sent["S1"] == {"p1": 5}
        assert result.sent["S2"] == {"p1": 4, "p2": 6}
        assert result.blocked_events == 0
        assert result.unsent == 0

    def test_mapped_proportions_respected(self):
        schedule = build_schedule(
            {"S": {"A": 8, "B": 2}}, tw=1.0, path_order=["A", "B"]
        )
        queues = {"S": make_packet_queue("S", 10, 1.0, PKT)}
        svc = services({"A": 100 * PKT, "B": 100 * PKT})
        result = dispatch_window(schedule, svc, queues)
        assert result.sent["S"] == {"A": 8, "B": 2}

    def test_empty_queue_harmless(self):
        schedule = build_schedule({"S": {"A": 5}}, tw=1.0)
        queues = {"S": deque()}
        svc = services({"A": 100 * PKT})
        result = dispatch_window(schedule, svc, queues)
        assert result.sent == {}


class TestPrecedenceRules:
    def test_rule2_overflow_to_other_path(self):
        # Path A can only take 2 packets; the rest of S's A-quota must go
        # out via B (packets scheduled on another path, rule 2).
        schedule = build_schedule(
            {"S": {"A": 6, "B": 0}}, tw=1.0, path_order=["A", "B"]
        )
        queues = {"S": make_packet_queue("S", 6, 1.0, PKT)}
        svc = services({"A": 2 * PKT, "B": 100 * PKT})
        result = dispatch_window(schedule, svc, queues)
        assert result.sent["S"]["A"] == 2
        assert result.sent["S"]["B"] == 4
        assert result.unsent == 0

    def test_rule3_unscheduled_fills_leftover(self):
        schedule = build_schedule({"S": {"A": 3}}, tw=1.0)
        queues = {"S": make_packet_queue("S", 3, 1.0, PKT)}
        extra = {"E": make_packet_queue("E", 5, 1.0, PKT)}
        svc = services({"A": 6 * PKT})
        result = dispatch_window(schedule, svc, queues, extra)
        assert result.sent["S"]["A"] == 3
        assert result.sent["E"]["A"] == 3  # leftover capacity used

    def test_scheduled_precedes_unscheduled(self):
        # Capacity for only the scheduled packets: unscheduled get nothing.
        schedule = build_schedule({"S": {"A": 4}}, tw=1.0)
        queues = {"S": make_packet_queue("S", 4, 1.0, PKT)}
        extra = {"E": make_packet_queue("E", 4, 1.0, PKT)}
        svc = services({"A": 4 * PKT})
        result = dispatch_window(schedule, svc, queues, extra)
        assert result.sent["S"]["A"] == 4
        assert "E" not in result.sent

    def test_rule2_earliest_deadline_first(self):
        # Two streams scheduled on B; A has spare room: the earliest
        # deadline among B-scheduled packets crosses over first.
        schedule = build_schedule(
            {"early": {"B": 1}, "late": {"B": 1}},
            tw=1.0,
            stream_order=["early", "late"],
            path_order=["B", "A"],
        )
        queues = {
            "early": make_packet_queue("early", 1, 1.0, PKT),
            "late": deque(make_packet_queue("late", 2, 1.0, PKT)),
        }
        queues["late"].popleft()  # late's head deadline is 0.5
        svc = services({"A": PKT, "B": 0.0})
        result = dispatch_window(schedule, svc, queues)
        assert result.sent.get("early", {}).get("A") == 1
        assert "late" not in result.sent

    def test_blocked_path_packet_requeued_not_lost(self):
        schedule = build_schedule({"S": {"A": 3}}, tw=1.0)
        queues = {"S": make_packet_queue("S", 3, 1.0, PKT)}
        svc = services({"A": 0.0})
        result = dispatch_window(schedule, svc, queues)
        assert result.sent == {}
        assert len(queues["S"]) == 3  # nothing lost

    def test_conservation(self):
        # sent + unsent == offered, regardless of budgets.
        schedule = build_schedule(
            {"S1": {"A": 5, "B": 3}, "S2": {"B": 4}},
            tw=1.0,
            path_order=["A", "B"],
        )
        queues = {
            "S1": make_packet_queue("S1", 8, 1.0, PKT),
            "S2": make_packet_queue("S2", 4, 1.0, PKT),
        }
        svc = services({"A": 4 * PKT, "B": 5 * PKT})
        result = dispatch_window(schedule, svc, queues)
        sent = sum(result.sent_total(s) for s in ("S1", "S2"))
        assert sent + result.unsent == 12
        assert sent == 9  # exactly the byte budget


class TestPGOSAllocate:
    def _scheduler(self, rng) -> PGOSScheduler:
        scheduler = PGOSScheduler(min_history=30)
        streams = [
            StreamSpec(name="crit", required_mbps=20.0, probability=0.95),
            StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
        ]
        scheduler.setup(streams, ["A", "B"], dt=0.1, tw=1.0)
        scheduler.seed_history(
            {
                "A": 50 + 4 * rng.standard_normal(200),
                "B": 30 + 10 * rng.standard_normal(200),
            }
        )
        return scheduler

    def test_critical_on_stable_path_level0(self, rng):
        scheduler = self._scheduler(rng)
        requests = scheduler.allocate(0, {"crit": 20.0, "bulk": None})
        crit_a = [r for r in requests["A"] if r.stream == "crit"]
        assert crit_a and crit_a[0].level == LEVEL_SCHEDULED_HERE
        assert crit_a[0].demand_mbps == pytest.approx(20.0)

    def test_elastic_requests_on_both_paths(self, rng):
        scheduler = self._scheduler(rng)
        requests = scheduler.allocate(0, {"crit": 20.0, "bulk": None})
        for path in ("A", "B"):
            bulk = [r for r in requests[path] if r.stream == "bulk"]
            assert bulk and bulk[0].level == LEVEL_UNSCHEDULED
            assert bulk[0].demand_mbps is None

    def test_overflow_request_appears_after_dip(self, rng):
        scheduler = self._scheduler(rng)
        # Backlog 28 > mapped 20: the excess spills via rule 2.
        requests = scheduler.allocate(0, {"crit": 28.0, "bulk": None})
        crit_b = [r for r in requests["B"] if r.stream == "crit"]
        assert crit_b and crit_b[0].level == LEVEL_SCHEDULED_ELSEWHERE
        assert crit_b[0].demand_mbps == pytest.approx(8.0)

    def test_guarantee_holds_through_water_fill(self, rng):
        scheduler = self._scheduler(rng)
        requests = scheduler.allocate(0, {"crit": 20.0, "bulk": None})
        granted = water_fill(requests["A"], 35.0)
        assert granted["crit"] == pytest.approx(20.0)
        assert granted["bulk"] == pytest.approx(15.0)

    def test_fallback_before_history(self):
        scheduler = PGOSScheduler(min_history=30)
        scheduler.setup(
            [StreamSpec(name="s", required_mbps=10.0, probability=0.9)],
            ["A", "B"],
            dt=0.1,
            tw=1.0,
        )
        requests = scheduler.allocate(0, {"s": 10.0})
        # Even split across both paths until monitors fill.
        assert sum(
            r.demand_mbps for p in ("A", "B") for r in requests[p]
        ) == pytest.approx(10.0)

    def test_observe_fills_monitors(self, rng):
        scheduler = PGOSScheduler(min_history=5)
        scheduler.setup(
            [StreamSpec(name="s", required_mbps=10.0, probability=0.9)],
            ["A", "B"],
            dt=0.1,
            tw=1.0,
        )
        for k in range(10):
            scheduler.observe(k, {"A": 50.0 + k, "B": 30.0})
        assert scheduler.has_history

    def test_remap_counted_once_for_stable_cdf(self, rng):
        scheduler = self._scheduler(rng)
        scheduler.allocate(0, {"crit": 20.0, "bulk": None})
        first = scheduler.remap_count
        for k in range(20):
            scheduler.observe(k, {"A": 50.0, "B": 30.0})
            scheduler.allocate(k + 1, {"crit": 20.0, "bulk": None})
        assert scheduler.remap_count == first

    def test_remap_on_cdf_shift(self, rng):
        scheduler = self._scheduler(rng)
        scheduler.allocate(0, {"crit": 20.0, "bulk": None})
        first = scheduler.remap_count
        # Crash path A's bandwidth: KS distance grows past the threshold.
        for k in range(300):
            scheduler.observe(k, {"A": 25.0 + rng.standard_normal(), "B": 30.0})
        scheduler.allocate(1, {"crit": 20.0, "bulk": None})
        assert scheduler.remap_count > first

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            PGOSScheduler(min_history=1)
        with pytest.raises(ConfigurationError):
            PGOSScheduler(split_strategy="sideways")
