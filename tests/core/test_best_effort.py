"""Best-effort degradation when a workload is not admittable."""

import numpy as np
import pytest

from repro.core.mapping import best_effort_mapping, compute_mapping
from repro.core.pgos import PGOSScheduler
from repro.core.spec import StreamSpec
from repro.errors import AdmissionError
from repro.monitoring.cdf import EmpiricalCDF


@pytest.fixture
def weak_paths(rng):
    """Two paths that cannot guarantee 60 Mbps at 95 %."""
    return {
        "A": EmpiricalCDF(np.clip(30 + 5 * rng.standard_normal(2000), 0, None)),
        "B": EmpiricalCDF(np.clip(20 + 8 * rng.standard_normal(2000), 0, None)),
    }


GREEDY = [StreamSpec(name="big", required_mbps=60.0, probability=0.95)]


class TestBestEffortMapping:
    def test_never_raises(self, weak_paths):
        with pytest.raises(AdmissionError):
            compute_mapping(GREEDY, weak_paths, tw=1.0)
        mapping = best_effort_mapping(GREEDY, weak_paths, tw=1.0)
        assert mapping.total_rate("big") == pytest.approx(60.0)

    def test_reports_achievable_probability(self, weak_paths):
        mapping = best_effort_mapping(GREEDY, weak_paths, tw=1.0)
        achieved = mapping.achieved_probability["big"]
        assert 0.0 <= achieved < 0.95  # honestly below the request

    def test_picks_strongest_path(self, weak_paths):
        mapping = best_effort_mapping(GREEDY, weak_paths, tw=1.0)
        # Path A (30±5) beats B (20±8) for a 60 Mbps demand.
        assert mapping.paths_of("big") == ["A"]

    def test_feasible_workload_fully_served(self, weak_paths):
        specs = [StreamSpec(name="small", required_mbps=5.0, probability=0.95)]
        mapping = best_effort_mapping(specs, weak_paths, tw=1.0)
        assert mapping.achieved_probability["small"] >= 0.95

    def test_elastic_still_gets_leftover(self, weak_paths):
        specs = GREEDY + [
            StreamSpec(name="bulk", elastic=True, nominal_mbps=10.0)
        ]
        mapping = best_effort_mapping(specs, weak_paths, tw=1.0)
        assert mapping.total_rate("bulk") > 0.0


class TestPGOSDegradedMode:
    def test_degraded_flag_set_and_serving_continues(self, rng):
        scheduler = PGOSScheduler(min_history=30)
        scheduler.setup(GREEDY, ["A", "B"], dt=0.1, tw=1.0)
        scheduler.seed_history(
            {
                "A": 30 + 5 * rng.standard_normal(100),
                "B": 20 + 8 * rng.standard_normal(100),
            }
        )
        requests = scheduler.allocate(0, {"big": 60.0})
        assert scheduler.degraded
        total_demand = sum(
            r.demand_mbps
            for reqs in requests.values()
            for r in reqs
            if r.demand_mbps is not None
        )
        assert total_demand > 0  # still pushing traffic

    def test_not_degraded_for_feasible_workload(self, rng):
        scheduler = PGOSScheduler(min_history=30)
        specs = [StreamSpec(name="ok", required_mbps=10.0, probability=0.95)]
        scheduler.setup(specs, ["A", "B"], dt=0.1, tw=1.0)
        scheduler.seed_history(
            {
                "A": 30 + 5 * rng.standard_normal(100),
                "B": 20 + 8 * rng.standard_normal(100),
            }
        )
        scheduler.allocate(0, {"ok": 10.0})
        assert not scheduler.degraded
