"""Stream utility specifications."""

import pytest

from repro.errors import ConfigurationError
from repro.core.spec import StreamSpec, WindowConstraint


class TestWindowConstraint:
    def test_fraction(self):
        assert WindowConstraint(x=3, y=4).fraction == 0.75

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WindowConstraint(x=5, y=4)
        with pytest.raises(ConfigurationError):
            WindowConstraint(x=-1, y=4)
        with pytest.raises(ConfigurationError):
            WindowConstraint(x=0, y=0)


class TestStreamSpec:
    def test_guaranteed_flag(self):
        spec = StreamSpec(name="s", required_mbps=10.0, probability=0.95)
        assert spec.guaranteed
        assert not StreamSpec(name="e", elastic=True, nominal_mbps=5.0).guaranteed

    def test_weight_uses_required_rate(self):
        spec = StreamSpec(name="s", required_mbps=10.0)
        assert spec.weight == 10.0

    def test_elastic_weight_uses_nominal(self):
        spec = StreamSpec(name="e", elastic=True, nominal_mbps=40.0)
        assert spec.weight == 40.0

    def test_elastic_demand_unbounded(self):
        spec = StreamSpec(name="e", elastic=True, nominal_mbps=40.0)
        assert spec.demand_mbps is None

    def test_cbr_demand_is_required(self):
        spec = StreamSpec(name="s", required_mbps=22.148, probability=0.95)
        assert spec.demand_mbps == 22.148

    def test_packets_in_window(self):
        spec = StreamSpec(name="s", required_mbps=12.0)
        assert spec.packets_in_window(1.0) == 1000

    def test_packets_from_window_constraint(self):
        spec = StreamSpec(
            name="s",
            elastic=True,
            nominal_mbps=1.0,
            window_constraint=WindowConstraint(x=50, y=100),
        )
        assert spec.packets_in_window(1.0) == 50

    def test_rate_from_packets_round_trip(self):
        spec = StreamSpec(name="s", required_mbps=25.0)
        x = spec.packets_in_window(1.0)
        assert spec.rate_from_packets(x, 1.0) >= 25.0

    def test_probability_needs_required(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(name="s", probability=0.95, elastic=True, nominal_mbps=1.0)

    def test_non_elastic_needs_required(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(name="s")

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(name="s", required_mbps=1.0, probability=1.0)

    def test_invalid_required(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(name="s", required_mbps=0.0)

    def test_invalid_violation_rate(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(name="s", required_mbps=1.0, max_violation_rate=1.0)

    def test_empty_name(self):
        with pytest.raises(ConfigurationError):
            StreamSpec(name="", required_mbps=1.0)

    def test_elastic_with_guarantee_allowed(self):
        # Video: base rate guaranteed, elastic surplus on top.
        spec = StreamSpec(
            name="video",
            required_mbps=2.0,
            probability=0.97,
            elastic=True,
            nominal_mbps=12.0,
        )
        assert spec.guaranteed and spec.elastic
        assert spec.demand_mbps is None
