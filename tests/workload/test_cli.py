"""The ``python -m repro.workload`` CLI (shared with tools/run_scale.py)."""

import json

import pytest

from repro.workload.cli import main

FAST_ARGS = [
    "--scenario",
    "baseline",
    "--seed",
    "0",
    "--duration",
    "10",
    "--max-sessions",
    "25",
]


def test_scenario_run_prints_report_and_checksum(capsys):
    assert main(FAST_ARGS) == 0
    out = capsys.readouterr().out
    assert "workload 'baseline' seed=0" in out
    assert "checksum " in out
    assert "sessions/sec" in out
    assert "steps/sec" in out


def test_json_out_carries_canonical_payload(tmp_path, capsys):
    json_out = tmp_path / "report.json"
    assert main(FAST_ARGS + ["--json-out", str(json_out)]) == 0
    payload = json.loads(json_out.read_text())
    assert payload["scenario"] == "baseline"
    assert payload["offered"] == 25
    # Wall-clock rates never leak into the canonical payload.
    assert "sessions_per_sec" not in payload
    out = capsys.readouterr().out
    assert str(json_out) in out


def test_trace_and_metrics_exports(tmp_path, capsys):
    trace_out = tmp_path / "trace.jsonl"
    metrics_out = tmp_path / "metrics.json"
    assert (
        main(
            FAST_ARGS
            + [
                "--trace-out",
                str(trace_out),
                "--metrics-out",
                str(metrics_out),
            ]
        )
        == 0
    )
    lines = trace_out.read_text().strip().splitlines()
    assert any('"cat": "workload"' in line for line in lines)
    metrics = json.loads(metrics_out.read_text())
    assert "admission.admitted" in metrics["current"]
    capsys.readouterr()


def test_envelope_mode(tmp_path, capsys):
    json_out = tmp_path / "envelope.json"
    code = main(
        [
            "--scenario",
            "baseline",
            "--envelope",
            "--iterations",
            "1",
            "--probe-duration",
            "6",
            "--max-sessions",
            "15",
            "--json-out",
            str(json_out),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "capacity envelope" in out
    payload = json.loads(json_out.read_text())
    assert "max_sustainable_scale" in payload


def test_unknown_scenario_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["--scenario", "nope"])
    capsys.readouterr()


class TestFlagValidation:
    """Checkpoint flags without a checkpoint dir must fail fast."""

    def _error_text(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(FAST_ARGS + argv)
        assert excinfo.value.code == 2
        return capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        err = self._error_text(["--resume"], capsys)
        assert "--resume requires --checkpoint-dir" in err

    def test_kill_at_requires_checkpoint_dir(self, capsys):
        err = self._error_text(["--kill-at", "5.0"], capsys)
        assert "--checkpoint-dir" in err

    def test_checkpoint_every_requires_checkpoint_dir(self, capsys):
        err = self._error_text(["--checkpoint-every", "2.0"], capsys)
        assert "--checkpoint-every requires --checkpoint-dir" in err

    def test_kill_at_requires_explicit_checkpoint_every(
        self, tmp_path, capsys
    ):
        err = self._error_text(
            [
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
                "--kill-at",
                "5.0",
            ],
            capsys,
        )
        assert "--checkpoint-every" in err

    def test_checkpoint_dir_alone_still_runs(self, tmp_path, capsys):
        assert (
            main(
                FAST_ARGS
                + ["--checkpoint-dir", str(tmp_path / "ckpt")]
            )
            == 0
        )
        assert "checksum " in capsys.readouterr().out


def test_same_seed_same_checksum_line(capsys):
    main(FAST_ARGS)
    first = capsys.readouterr().out
    main(FAST_ARGS)
    second = capsys.readouterr().out

    def checksum_line(text):
        return next(
            line
            for line in text.splitlines()
            if line.startswith("checksum ")
        )

    assert checksum_line(first) == checksum_line(second)
