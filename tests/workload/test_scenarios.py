"""Named scenarios: registry, scaling, and the chaos composition."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.scenarios import (
    SCENARIOS,
    make_scenario,
    run_scenario,
    scenario_params,
)


class TestRegistry:
    def test_standard_names(self):
        assert set(SCENARIOS) == {
            "baseline",
            "diurnal",
            "flash-crowd",
            "flash-crowd-chaos",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scenario("nope")

    def test_bad_rate_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scenario("baseline", rate_scale=0.0)

    def test_rate_scale_scales_model(self):
        base = make_scenario("baseline")
        double = make_scenario("baseline", rate_scale=2.0)
        assert double.model.mean_rate() == pytest.approx(
            2 * base.model.mean_rate()
        )

    def test_duration_override(self):
        scenario = make_scenario("baseline", duration=12.5)
        assert scenario.duration == 12.5

    def test_baseline_sized_for_a_thousand_sessions(self):
        assert make_scenario("baseline").expected_sessions() >= 1100

    def test_chaos_scenario_is_lenient(self):
        scenario = make_scenario("flash-crowd-chaos")
        assert not scenario.strict_admission
        assert scenario.with_chaos

    def test_params_are_json_clean(self):
        import json

        for name in SCENARIOS:
            json.dumps(
                scenario_params(make_scenario(name)), allow_nan=False
            )


class TestChaosComposition:
    """Flash crowd during a fault campaign: no deadlock, books balance."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_scenario(
            "flash-crowd-chaos", seed=0, duration=30.0, max_sessions=50
        )

    def test_run_completes_with_full_accounting(self, report):
        assert report.offered == 50
        assert (
            report.admitted + report.degraded + report.rejected
            == report.offered
        )
        assert (
            report.closed + report.truncated
            == report.offered - report.rejected
        )

    def test_lenient_admission_never_rejects(self, report):
        assert report.rejected == 0

    def test_faults_leave_a_mark(self, report):
        # The campaign must actually disturb the run: sessions get shed
        # or guarantees degrade/miss somewhere along the way.
        assert (
            report.shed_sessions > 0
            or report.degraded > 0
            or report.violations > 0
        )

    def test_deterministic_under_chaos(self, report):
        rerun = run_scenario(
            "flash-crowd-chaos", seed=0, duration=30.0, max_sessions=50
        )
        assert report.checksum() == rerun.checksum()
