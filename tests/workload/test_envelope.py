"""Capacity-envelope estimation: search behavior and determinism."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.workload.catalog import default_catalog
from repro.workload.envelope import estimate_envelope

FAST = dict(
    seed=0,
    iterations=2,
    probe_duration=8.0,
    max_sessions=30,
)


@pytest.fixture(scope="module")
def envelope():
    return estimate_envelope("baseline", ceiling=0.05, **FAST)


class TestSearch:
    def test_probe_bookkeeping(self, envelope):
        # Two bracket probes, plus bisections iff the bracket straddles.
        assert len(envelope.probes) in (2, 2 + FAST["iterations"])
        assert all(p.offered > 0 for p in envelope.probes)
        assert all(
            0.0 <= p.violation_rate <= 1.0 for p in envelope.probes
        )

    def test_verdict_within_bracket(self, envelope):
        assert 0.0 <= envelope.max_sustainable_scale <= 4.0
        assert envelope.max_sustainable_rate == pytest.approx(
            envelope.base_rate * envelope.max_sustainable_scale
        )

    def test_verdict_consistent_with_probes(self, envelope):
        # The reported scale is never above a probe that failed below it.
        for probe in envelope.probes:
            if not probe.sustainable:
                assert envelope.max_sustainable_scale <= probe.rate_scale

    def test_deterministic(self, envelope):
        rerun = estimate_envelope("baseline", ceiling=0.05, **FAST)
        assert envelope.checksum() == rerun.checksum()
        assert envelope.to_dict() == rerun.to_dict()

    def test_payload_json_clean(self, envelope):
        json.dumps(envelope.to_dict(), allow_nan=False)

    def test_render_smoke(self, envelope):
        text = envelope.render()
        assert "max sustainable scale" in text
        assert "probe" in text


class TestDegenerateCeilings:
    def test_unsatisfiable_load_reports_zero(self):
        # Sessions demanding ~100x the overlay's bandwidth are rejected
        # at any arrival rate, so even the lightest probe violates and
        # the envelope collapses to zero capacity.
        envelope = estimate_envelope(
            "baseline",
            ceiling=0.05,
            catalog=default_catalog(rate_scale=200.0),
            **FAST,
        )
        assert envelope.max_sustainable_scale == 0.0
        assert not envelope.probes[0].sustainable

    def test_trivial_ceiling_reports_bracket_top(self):
        envelope = estimate_envelope(
            "baseline", ceiling=0.999999, **FAST
        )
        assert envelope.max_sustainable_scale == 4.0
        # Both bracket probes sufficed; no bisection ran.
        assert len(envelope.probes) == 2


class TestValidation:
    def test_bad_ceiling(self):
        with pytest.raises(ConfigurationError):
            estimate_envelope("baseline", ceiling=0.0)
        with pytest.raises(ConfigurationError):
            estimate_envelope("baseline", ceiling=1.0)

    def test_bad_bracket(self):
        with pytest.raises(ConfigurationError):
            estimate_envelope(
                "baseline", lo_scale=2.0, hi_scale=1.0
            )

    def test_bad_iterations(self):
        with pytest.raises(ConfigurationError):
            estimate_envelope("baseline", iterations=0)
