"""Workload/envelope specs through repro.runner: caching and identity."""

import pytest

from repro.runner import (
    ResultCache,
    envelope_spec,
    run_specs,
    scale_suite,
    workload_spec,
)


def fast_specs():
    return [
        workload_spec(
            "baseline", seed=0, duration=10.0, max_sessions=20
        ),
        envelope_spec(
            "baseline",
            seed=0,
            iterations=1,
            probe_duration=6.0,
            max_sessions=12,
        ),
    ]


class TestDispatch:
    def test_workload_payload_shape(self):
        report = run_specs([fast_specs()[0]], workers=0)
        assert report.all_ok
        payload = report.outcomes[0].payload
        assert payload["workload"]["offered"] == 20
        assert "checksum" in payload
        assert payload["report"].endswith("\n")

    def test_envelope_payload_shape(self):
        report = run_specs([fast_specs()[1]], workers=0)
        assert report.all_ok
        payload = report.outcomes[0].payload
        assert "max_sustainable_scale" in payload["envelope"]
        assert "checksum" in payload


class TestCacheAndIdentity:
    def test_warm_cache_hits_100_percent(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = fast_specs()
        cold = run_specs(
            specs, workers=0, cache=cache, fingerprint="fp"
        )
        assert cold.executed == len(specs) and cold.cached == 0
        warm = run_specs(
            specs, workers=0, cache=cache, fingerprint="fp"
        )
        assert warm.executed == 0 and warm.cached == len(specs)
        assert [o.payload for o in warm.outcomes] == [
            o.payload for o in cold.outcomes
        ]

    def test_checksums_identical_across_worker_counts(self):
        specs = fast_specs()
        inline = run_specs(specs, workers=0)
        pooled = run_specs(specs, workers=2, timeout_s=300.0)
        assert [o.payload["checksum"] for o in inline.outcomes] == [
            o.payload["checksum"] for o in pooled.outcomes
        ]
        assert [o.payload for o in inline.outcomes] == [
            o.payload for o in pooled.outcomes
        ]


class TestSuiteBuilder:
    def test_scale_suite_covers_all_scenarios(self):
        suite = scale_suite(fast=True)
        names = [s.name for s in suite]
        assert len(names) == len(set(names))
        kinds = {s.kind for s in suite}
        assert kinds == {"workload", "envelope"}
        for scenario in (
            "baseline",
            "diurnal",
            "flash-crowd",
            "flash-crowd-chaos",
        ):
            assert any(scenario in n for n in names)

    def test_fast_suite_is_bounded(self):
        for spec in scale_suite(fast=True):
            assert spec.params.get("max_sessions") is not None or (
                spec.kind == "envelope"
            )

    @pytest.mark.slow
    def test_full_suite_builds(self):
        suite = scale_suite(fast=False)
        assert len(suite) == len(scale_suite(fast=True))
