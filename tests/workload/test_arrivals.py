"""Property tests for the arrival models: determinism, shape, rates.

Determinism is the load-bearing property (same seed => byte-identical
schedule, checked through :func:`schedule_checksum`), so every test is
``derandomize=True`` in the :mod:`tests.property` style — these gate the
scale suite's bit-identity claim and must themselves be deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workload.arrivals import (
    ARRIVAL_MODELS,
    FlashCrowdArrivals,
    MMPPArrivals,
    PoissonArrivals,
    arrival_model_from_params,
    schedule_checksum,
)

rate_strategy = st.floats(min_value=0.2, max_value=40.0, allow_nan=False)
seed_strategy = st.integers(min_value=0, max_value=2**31 - 1)
duration_strategy = st.floats(min_value=1.0, max_value=30.0)


def poisson_strategy():
    return st.builds(PoissonArrivals, rate=rate_strategy)


def mmpp_strategy():
    return st.lists(rate_strategy, min_size=2, max_size=4).map(
        lambda rates: MMPPArrivals(
            rates=tuple(rates),
            mean_dwell_s=tuple(5.0 for _ in rates),
        )
    )


def flash_strategy():
    return st.builds(
        FlashCrowdArrivals,
        base_rate=st.floats(min_value=0.5, max_value=10.0),
        peak_rate=st.floats(min_value=10.0, max_value=50.0),
        t_start=st.floats(min_value=0.0, max_value=20.0),
        ramp_s=st.floats(min_value=0.0, max_value=5.0),
        hold_s=st.floats(min_value=0.0, max_value=10.0),
        decay_s=st.floats(min_value=0.0, max_value=5.0),
    )


model_strategy = st.one_of(
    poisson_strategy(), mmpp_strategy(), flash_strategy()
)


@settings(derandomize=True, max_examples=40)
@given(model_strategy, duration_strategy, seed_strategy)
def test_same_seed_byte_identical(model, duration, seed):
    a = model.arrival_times(duration, seed)
    b = model.arrival_times(duration, seed)
    assert schedule_checksum(a) == schedule_checksum(b)
    assert a.dtype == np.float64


@settings(derandomize=True, max_examples=40)
@given(model_strategy, duration_strategy, seed_strategy)
def test_sorted_nonnegative_in_range(model, duration, seed):
    times = model.arrival_times(duration, seed)
    assert np.all(times >= 0.0)
    assert np.all(times < duration)
    assert np.all(np.diff(times) >= 0.0)


@settings(derandomize=True, max_examples=20)
@given(model_strategy, duration_strategy, seed_strategy)
def test_params_round_trip(model, duration, seed):
    rebuilt = arrival_model_from_params(model.to_params())
    assert rebuilt == model
    a = model.arrival_times(duration, seed)
    b = rebuilt.arrival_times(duration, seed)
    assert schedule_checksum(a) == schedule_checksum(b)


@settings(derandomize=True, max_examples=20)
@given(model_strategy, st.floats(min_value=0.5, max_value=3.0))
def test_scaled_scales_mean_rate(model, factor):
    scaled = model.scaled(factor)
    assert scaled.mean_rate() == pytest.approx(
        model.mean_rate() * factor
    )


def test_distinct_seeds_give_distinct_schedules():
    model = PoissonArrivals(rate=20.0)
    a = model.arrival_times(50.0, seed=1)
    b = model.arrival_times(50.0, seed=2)
    assert schedule_checksum(a) != schedule_checksum(b)


def test_poisson_empirical_rate():
    model = PoissonArrivals(rate=12.0)
    times = model.arrival_times(500.0, seed=3)
    # 6000 expected arrivals: the empirical rate concentrates tightly.
    assert len(times) / 500.0 == pytest.approx(12.0, rel=0.1)


def test_mmpp_empirical_rate_matches_dwell_weighted_mean():
    model = MMPPArrivals.diurnal(4.0, 16.0, period_s=20.0)
    assert model.mean_rate() == pytest.approx(10.0)
    times = model.arrival_times(1000.0, seed=5)
    # Dwell randomness makes this noisier than Poisson; 15% tolerance.
    assert len(times) / 1000.0 == pytest.approx(10.0, rel=0.15)


def test_mmpp_alternates_rate_regimes():
    model = MMPPArrivals.diurnal(1.0, 30.0, period_s=40.0)
    times = model.arrival_times(400.0, seed=9)
    counts, _ = np.histogram(times, bins=40, range=(0.0, 400.0))
    # Both regimes must be visible: busy 10s bins dwarf quiet ones.
    assert counts.max() >= 150
    assert counts.max() > 5 * max(counts.min(), 1)


def test_flash_crowd_rate_profile_trapezoid():
    model = FlashCrowdArrivals(
        base_rate=5.0, peak_rate=30.0, t_start=10.0,
        ramp_s=4.0, hold_s=6.0, decay_s=8.0,
    )
    assert model.rate_at(0.0) == 5.0
    assert model.rate_at(12.0) == pytest.approx(17.5)
    assert model.rate_at(15.0) == 30.0
    assert model.rate_at(24.0) == pytest.approx(17.5)
    assert model.rate_at(30.0) == 5.0


def test_flash_crowd_burst_density():
    model = FlashCrowdArrivals(
        base_rate=4.0, peak_rate=40.0, t_start=30.0,
        ramp_s=2.0, hold_s=16.0, decay_s=2.0,
    )
    times = model.arrival_times(100.0, seed=11)
    hold = np.sum((times >= 32.0) & (times < 48.0)) / 16.0
    before = np.sum(times < 30.0) / 30.0
    assert hold > before * 4


def test_registry_covers_all_kinds():
    assert set(ARRIVAL_MODELS) == {"poisson", "mmpp", "flash-crowd"}


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        PoissonArrivals(rate=0.0)
    with pytest.raises(ConfigurationError):
        MMPPArrivals(rates=(5.0,), mean_dwell_s=(1.0,))
    with pytest.raises(ConfigurationError):
        MMPPArrivals(rates=(5.0, 6.0), mean_dwell_s=(1.0,))
    with pytest.raises(ConfigurationError):
        MMPPArrivals(rates=(0.0, 0.0), mean_dwell_s=(1.0, 1.0))
    with pytest.raises(ConfigurationError):
        FlashCrowdArrivals(base_rate=10.0, peak_rate=5.0)
    with pytest.raises(ConfigurationError):
        FlashCrowdArrivals(t_start=-1.0)
    with pytest.raises(ConfigurationError):
        PoissonArrivals().arrival_times(0.0, seed=0)
    with pytest.raises(ConfigurationError):
        arrival_model_from_params({"kind": "nope"})
