"""The churn driver: determinism, accounting invariants, trace events."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.context import Observability
from repro.obs.events import Category
from repro.workload import run_scenario
from repro.workload.catalog import default_catalog, plan_sessions
from repro.workload.driver import ChurnDriver
from repro.workload.scenarios import build_service, make_scenario
from repro.runner.spec import mix_seed

MAX_SESSIONS = 60
DURATION = 15.0


@pytest.fixture(scope="module")
def report():
    return run_scenario(
        "baseline", seed=0, duration=DURATION, max_sessions=MAX_SESSIONS
    )


class TestDeterminism:
    def test_same_seed_byte_identical(self, report):
        rerun = run_scenario(
            "baseline",
            seed=0,
            duration=DURATION,
            max_sessions=MAX_SESSIONS,
        )
        assert report.checksum() == rerun.checksum()
        assert report.to_dict() == rerun.to_dict()

    def test_different_seed_differs(self, report):
        other = run_scenario(
            "baseline",
            seed=1,
            duration=DURATION,
            max_sessions=MAX_SESSIONS,
        )
        assert report.checksum() != other.checksum()

    def test_payload_is_json_clean(self, report):
        import json

        json.dumps(report.to_dict(), allow_nan=False)


class TestAccounting:
    def test_outcome_partition(self, report):
        assert report.offered == MAX_SESSIONS
        assert (
            report.admitted + report.degraded + report.rejected
            == report.offered
        )
        # Every non-rejected session eventually closed (or was truncated).
        assert (
            report.closed + report.truncated
            == report.offered - report.rejected
        )

    def test_tenant_rollup_matches_totals(self, report):
        accounts = report.tenants.values()
        assert sum(a.offered for a in accounts) == report.offered
        assert sum(a.admitted for a in accounts) == report.admitted
        assert sum(a.degraded for a in accounts) == report.degraded
        assert sum(a.rejected for a in accounts) == report.rejected
        assert sum(a.violations for a in accounts) == report.violations

    def test_session_records_consistent(self, report):
        assert len(report.sessions) == report.offered
        indices = [s.index for s in report.sessions]
        assert indices == sorted(indices)
        for record in report.sessions:
            if record.outcome == "rejected":
                assert record.opened_at is None
                assert record.closed_at is None
            else:
                assert record.opened_at is not None
                assert record.closed_at is not None
                assert record.closed_at >= record.opened_at
                assert record.mean_mbps is not None

    def test_violation_rate_bounds(self, report):
        assert 0.0 <= report.violation_rate <= 1.0

    def test_render_mentions_tenants(self, report):
        text = report.render()
        for tenant in ("gold", "silver", "bronze"):
            assert f"[{tenant}]" in text


class TestTraceAndMetrics:
    @pytest.fixture(scope="class")
    def observed(self):
        obs = Observability()
        report = run_scenario(
            "baseline",
            seed=0,
            duration=DURATION,
            max_sessions=MAX_SESSIONS,
            obs=obs,
        )
        return obs, report

    def test_workload_events_match_accounting(self, observed):
        obs, report = observed
        events = obs.trace.events()
        by_name: dict[str, int] = {}
        for e in events:
            if e.category == Category.WORKLOAD:
                by_name[e.name] = by_name.get(e.name, 0) + 1
        assert by_name.get("workload_start", 0) == 1
        assert by_name.get("workload_end", 0) == 1
        assert by_name.get("session_arrival", 0) == report.offered
        assert by_name.get("session_admitted", 0) == report.admitted
        assert by_name.get("session_degraded", 0) == report.degraded
        assert by_name.get("session_rejected", 0) == report.rejected
        closes = report.closed + report.truncated
        assert by_name.get("session_close", 0) == closes

    def test_admission_counters_match(self, observed):
        obs, report = observed
        metrics = obs.metrics.to_dict()["current"]

        def count(name):
            return metrics.get(name, {}).get("value", 0)

        assert count("admission.admitted") == report.admitted
        assert count("admission.rejected") == report.rejected
        assert count("admission.degraded") == report.degraded
        per_tenant = sum(
            count(f"admission.admitted.tenant.{t}")
            for t in report.tenants
        )
        assert per_tenant == report.admitted


class TestDriverErrors:
    def test_duplicate_plan_names_rejected(self):
        scenario = make_scenario("baseline", duration=10.0)
        plans = plan_sessions(
            scenario.model,
            default_catalog(),
            10.0,
            seed=mix_seed(0, "workload-plan", "baseline"),
            max_sessions=2,
        )
        service = build_service(scenario, seed=0)
        with pytest.raises(ConfigurationError):
            ChurnDriver(service, plans + plans)

    def test_overlong_duration_rejected(self):
        scenario = make_scenario("baseline", duration=10.0)
        plans = plan_sessions(
            scenario.model,
            default_catalog(),
            10.0,
            seed=0,
            max_sessions=2,
        )
        service = build_service(scenario, seed=0)
        driver = ChurnDriver(service, plans)
        with pytest.raises(ConfigurationError):
            driver.run(10_000.0)
