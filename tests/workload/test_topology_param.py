"""Satellite 1: the default topology path is byte-identical to the seed.

Threading `topology=` through make_scenario/build_service must not move
a single byte of the Figure-8 baseline. The pinned checksum below was
captured on the commit *before* repro.topo existed; if it ever changes,
the default path regressed.
"""

from repro.workload.scenarios import (
    make_scenario,
    run_scenario,
    scenario_params,
)

# run_scenario("baseline", seed=0, duration=10.0, max_sessions=40) on the
# pre-topology tree. Do not update without a deliberate compat break.
BASELINE_CHECKSUM = (
    "fc371666bbbf3d2dc6f98d11c72440ca45ea7db7bfeee9a5e52881a1394bf67b"
)


class TestDefaultPathUnchanged:
    def test_baseline_report_checksum_pinned(self):
        report = run_scenario(
            "baseline", seed=0, duration=10.0, max_sessions=40
        )
        assert report.checksum() == BASELINE_CHECKSUM

    def test_explicit_none_matches_default(self):
        default = run_scenario(
            "baseline", seed=0, duration=6.0, max_sessions=20
        )
        explicit = run_scenario(
            "baseline", seed=0, duration=6.0, max_sessions=20, topology=None
        )
        assert explicit.checksum() == default.checksum()


class TestScenarioParams:
    def test_topology_key_absent_by_default(self):
        # RunSpec content hashes from pre-topology runs must stay valid,
        # so the key only appears when a topology is actually set.
        scenario = make_scenario("baseline")
        assert "topology" not in scenario_params(scenario)

    def test_topology_key_present_when_set(self):
        scenario = make_scenario("baseline", topology="fat_tree_k4")
        assert scenario_params(scenario)["topology"] == "fat_tree_k4"
