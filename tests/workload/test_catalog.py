"""Session catalogs: mix validity, deterministic planning, batches."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.arrivals import PoissonArrivals
from repro.workload.catalog import (
    CatalogEntry,
    SessionCatalog,
    SessionTemplate,
    TenantClass,
    default_catalog,
    plan_concurrent_batch,
    plan_sessions,
)


class TestDefaultCatalog:
    def test_three_tenants_priority_ordered(self):
        catalog = default_catalog()
        tenants = catalog.tenants
        assert [t.name for t in tenants] == ["gold", "silver", "bronze"]
        assert [t.priority for t in tenants] == [0, 1, 2]

    def test_mix_has_guaranteed_and_elastic(self):
        catalog = default_catalog()
        guaranteed = [
            e for e in catalog.entries if e.template.guaranteed
        ]
        elastic = [e for e in catalog.entries if e.template.elastic]
        assert guaranteed and elastic
        assert catalog.mean_guaranteed_mbps() > 0.0
        assert catalog.mean_holding_s() > 0.0

    def test_rate_scale_scales_bandwidths(self):
        base = default_catalog()
        doubled = default_catalog(rate_scale=2.0)
        assert doubled.mean_guaranteed_mbps() == pytest.approx(
            2 * base.mean_guaranteed_mbps()
        )

    def test_bad_rate_scale(self):
        with pytest.raises(ConfigurationError):
            default_catalog(rate_scale=0.0)


class TestCatalogValidation:
    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionCatalog(entries=())

    def test_duplicate_entry_rejected(self):
        tenant = TenantClass("t")
        template = SessionTemplate("x", elastic=True, nominal_mbps=1.0)
        with pytest.raises(ConfigurationError):
            SessionCatalog(
                entries=(
                    CatalogEntry(tenant, template),
                    CatalogEntry(tenant, template),
                )
            )

    def test_bad_weight_rejected(self):
        tenant = TenantClass("t")
        template = SessionTemplate("x", elastic=True, nominal_mbps=1.0)
        with pytest.raises(ConfigurationError):
            CatalogEntry(tenant, template, weight=0.0)

    def test_bad_tenant_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantClass("")
        with pytest.raises(ConfigurationError):
            TenantClass("t", priority=-1)

    def test_template_spec_shape_checked_eagerly(self):
        # StreamSpec itself rejects a guaranteed stream with no rate.
        with pytest.raises(Exception):
            SessionTemplate("broken", probability=0.95)


class TestPlanSessions:
    def setup_method(self):
        self.model = PoissonArrivals(rate=10.0)
        self.catalog = default_catalog()

    def test_same_seed_identical_plans(self):
        a = plan_sessions(self.model, self.catalog, 20.0, seed=4)
        b = plan_sessions(self.model, self.catalog, 20.0, seed=4)
        assert [p.to_dict() for p in a] == [p.to_dict() for p in b]
        assert [p.spec for p in a] == [p.spec for p in b]

    def test_plan_shape(self):
        plans = plan_sessions(self.model, self.catalog, 30.0, seed=4)
        assert len(plans) > 100
        names = [p.name for p in plans]
        assert len(set(names)) == len(names)
        arrivals = [p.arrival_s for p in plans]
        assert arrivals == sorted(arrivals)
        assert all(p.holding_s > 0 for p in plans)
        assert all(p.spec.name == p.name for p in plans)
        # Every tenant class appears in a plan this large.
        assert {p.tenant for p in plans} == {"gold", "silver", "bronze"}

    def test_max_sessions_truncates(self):
        full = plan_sessions(self.model, self.catalog, 30.0, seed=4)
        cut = plan_sessions(
            self.model, self.catalog, 30.0, seed=4, max_sessions=10
        )
        assert len(cut) == 10
        assert [p.to_dict() for p in cut] == [
            p.to_dict() for p in full[:10]
        ]

    def test_bad_max_sessions(self):
        with pytest.raises(ConfigurationError):
            plan_sessions(
                self.model, self.catalog, 10.0, seed=0, max_sessions=0
            )


class TestConcurrentBatch:
    def test_batch_shape_and_determinism(self):
        catalog = default_catalog()
        a = plan_concurrent_batch(catalog, 50, seed=1)
        b = plan_concurrent_batch(catalog, 50, seed=1)
        assert a == b
        assert len({s.name for s in a}) == 50

    def test_bad_count(self):
        with pytest.raises(ConfigurationError):
            plan_concurrent_batch(default_catalog(), 0, seed=1)
