"""Snapshot -> JSON -> restore is an exact fixpoint, component by component.

Every ``state_dict`` here is pushed through a real JSON round-trip
(``json.loads(json.dumps(...))``) before restoring — exactly what a
checkpoint on disk does — and the restored object must then behave
*bit-identically* to the original, not just approximately.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.monitoring.incremental import IncrementalWindowCDF
from repro.monitoring.cdf import SlidingWindowCDF
from repro.robustness.health import (
    HealthThresholds,
    PathHealthMachine,
)
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.transport.backoff import ExponentialBackoff


def roundtrip(state: dict) -> dict:
    """The exact transformation a checkpoint applies to state."""
    return json.loads(
        json.dumps(state, sort_keys=False, allow_nan=False)
    )


class TestRandomStreams:
    def test_substream_fixpoint(self):
        streams = RandomStreams(seed=42)
        a, b = streams.get("arrivals"), streams.get("noise")
        a.standard_normal(100)
        b.uniform(size=37)

        state = roundtrip(streams.state_dict())
        restored = RandomStreams(seed=42)
        restored.load_state_dict(state)

        expect_a = streams.get("arrivals").standard_normal(50)
        expect_b = streams.get("noise").uniform(size=50)
        got_a = restored.get("arrivals").standard_normal(50)
        got_b = restored.get("noise").uniform(size=50)
        assert (expect_a == got_a).all()
        assert (expect_b == got_b).all()

    def test_unused_substream_still_deterministic(self):
        streams = RandomStreams(seed=7)
        streams.get("used").normal(size=10)
        restored = RandomStreams(seed=7)
        restored.load_state_dict(roundtrip(streams.state_dict()))
        # A substream never touched before the snapshot must still
        # derive identically on both sides.
        assert (
            streams.get("later").uniform(size=5)
            == restored.get("later").uniform(size=5)
        ).all()


class TestBackoff:
    def test_fixpoint(self):
        backoff = ExponentialBackoff(base_delay=0.01, max_delay=1.0)
        delays = [backoff.next_delay() for _ in range(5)]
        assert delays  # consumed some state

        restored = ExponentialBackoff(base_delay=0.01, max_delay=1.0)
        restored.load_state_dict(roundtrip(backoff.state_dict()))
        assert restored.failures == backoff.failures
        assert restored.next_delay() == backoff.next_delay()


class TestHealthMachine:
    def drive(self, machine: PathHealthMachine, t0: float) -> list:
        """A deterministic observation sequence spanning a quarantine."""
        out = []
        t = t0
        for bw, loss in [
            (100.0, 0.0),
            (100.0, 0.0),
            (5.0, 0.6),  # loss spike -> failing
            (None, 0.0),  # probe timeout
            (None, 0.0),
            (100.0, 0.0),
            (100.0, 0.0),
            (100.0, 0.0),
        ]:
            out.extend(machine.update(t, bw, loss))
            t += 1.0
        return out

    def test_mid_quarantine_fixpoint(self):
        thresholds = HealthThresholds()
        original = PathHealthMachine("p1", thresholds)
        # Drive into a failure so backoff/baseline/counters are hot.
        self.drive(original, 0.0)

        restored = PathHealthMachine("p1", thresholds)
        restored.load_state_dict(roundtrip(original.state_dict()))

        assert restored.state == original.state
        assert restored.baseline_mbps == original.baseline_mbps
        assert restored.blocked_until == original.blocked_until
        # Identical futures: same transitions, same final state.
        more_a = self.drive(original, 100.0)
        more_b = self.drive(restored, 100.0)
        assert [str(tr) for tr in more_a] == [str(tr) for tr in more_b]
        assert original.state_dict() == restored.state_dict()


class TestIncrementalWindowCDF:
    def test_fixpoint_past_eviction(self):
        window = 32
        original = IncrementalWindowCDF(window)
        # Overfill so the FIFO has already evicted (the hard case:
        # restore must rebuild the sorted buffer without re-evicting).
        for i in range(100):
            original.update(float((i * 37) % 50) / 7.0)

        restored = IncrementalWindowCDF(window)
        restored.load_state_dict(roundtrip(original.state_dict()))
        assert restored.window_values() == original.window_values()
        assert list(restored.sorted_view()) == list(
            original.sorted_view()
        )

        for v in [3.3, 0.1, 9.9]:
            original.update(v)
            restored.update(v)
        assert list(restored.sorted_view()) == list(
            original.sorted_view()
        )

    def test_window_mismatch_rejected(self):
        original = IncrementalWindowCDF(8)
        original.update(1.0)
        other = IncrementalWindowCDF(16)
        with pytest.raises(CheckpointError, match="window"):
            other.load_state_dict(original.state_dict())


class TestSlidingWindowCDF:
    @pytest.mark.parametrize("backend", ["incremental", "batch"])
    def test_fixpoint(self, backend):
        original = SlidingWindowCDF(window=20, backend=backend)
        for i in range(55):
            original.update(((i * 13) % 29) * 0.5)

        restored = SlidingWindowCDF(window=20, backend=backend)
        restored.load_state_dict(roundtrip(original.state_dict()))

        for v in [1.25, 7.0, 0.25]:
            original.update(v)
            restored.update(v)
        snap_a, snap_b = original.snapshot(), restored.snapshot()
        for q in [0.1, 0.5, 0.9]:
            assert snap_a.quantile(q) == snap_b.quantile(q)

    def test_cross_backend_restore(self):
        # The stored form is arrival order, which both backends read.
        original = SlidingWindowCDF(window=16, backend="incremental")
        for i in range(40):
            original.update(((i * 7) % 23) * 0.25 + 0.1)
        restored = SlidingWindowCDF(window=16, backend="batch")
        restored.load_state_dict(roundtrip(original.state_dict()))
        assert restored.window_values() == original.window_values()
        snap_a, snap_b = original.snapshot(), restored.snapshot()
        for q in [0.05, 0.5, 0.95]:
            assert snap_a.quantile(q) == snap_b.quantile(q)


class TestSimulatorQueue:
    def test_mid_flight_fixpoint_with_cancellations(self):
        fired_a: list = []
        sim = Simulator()
        callbacks = {
            "tick": lambda: fired_a.append(("tick", sim.now)),
            "tock": lambda: fired_a.append(("tock", sim.now)),
        }
        for i in range(10):
            sim.schedule(float(i + 1), callbacks["tick"], key="tick")
        doomed = [
            sim.schedule(float(i + 1), callbacks["tock"], key="tock")
            for i in range(5)
        ]
        for event in doomed[1:]:
            event.cancel()
        sim.run(until=3.5)

        state = roundtrip(sim.state_dict())

        fired_b: list = []
        restored = Simulator()
        restored.load_state_dict(
            state,
            callbacks={
                "tick": lambda: fired_b.append(("tick", restored.now)),
                "tock": lambda: fired_b.append(("tock", restored.now)),
            },
        )
        assert restored.now == sim.now
        assert len(restored) == len(sim)
        assert restored.cancelled_events == sim.cancelled_events

        sim.run()
        restored.run()
        # Continuations fire the same keys at the same times in the
        # same order (fired_b only ever sees post-restore events).
        assert fired_b == [f for f in fired_a if f[1] > 3.5]
        assert sim.now == restored.now
        assert sim._seq_next == restored._seq_next

    def test_anonymous_live_event_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)  # no key
        with pytest.raises(CheckpointError, match="no\\s+key"):
            sim.state_dict()

    def test_cancelled_anonymous_event_is_fine(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        state = sim.state_dict()
        restored = Simulator()
        restored.load_state_dict(roundtrip(state))
        restored.run()  # the cancelled no-op entry never fires
        assert restored.now == 0.0

    def test_unknown_key_rejected_on_load(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, key="known")
        state = sim.state_dict()
        restored = Simulator()
        with pytest.raises(CheckpointError, match="known"):
            restored.load_state_dict(state, callbacks={})
