"""Worker supervision: watchdog, escalation, stderr capture, interrupt."""

from __future__ import annotations

import os
import signal

import pytest

import repro.runner.executor as executor_mod
from repro.checkpoint import InterruptFlag
from repro.runner.executor import _retry_delay, run_specs
from repro.runner.spec import RunSpec


def selftest(name: str, **params) -> RunSpec:
    return RunSpec(kind="selftest", name=name, params=params, seed=0)


@pytest.fixture
def fast_escalation(monkeypatch):
    """Shrink the SIGTERM grace so kill-escalation tests stay quick."""
    monkeypatch.setattr(executor_mod, "_TERM_GRACE_S", 0.5)


class TestHangWatchdog:
    def test_hung_worker_terminated_killed_and_resumed(
        self, tmp_path, fast_escalation
    ):
        # hang_once ignores SIGTERM and stops heartbeating: the
        # watchdog must flag it hung, escalate terminate -> kill, and
        # the retry (marker now present) must succeed.
        marker = tmp_path / "hung.marker"
        report = run_specs(
            [
                selftest(
                    "wedge",
                    mode="hang_once",
                    marker=str(marker),
                    value=7,
                )
            ],
            workers=1,
            retries=1,
            hang_timeout_s=0.5,
            retry_backoff_s=0.01,
        )
        outcome = report.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.payload["value"] == 7
        assert marker.exists()

    def test_permanently_hung_worker_reported(
        self, fast_escalation
    ):
        report = run_specs(
            [selftest("wedge", mode="hang")],
            workers=1,
            retries=0,
            hang_timeout_s=0.5,
        )
        outcome = report.outcomes[0]
        assert outcome.status == "hung"
        assert "no heartbeat" in outcome.error
        assert not report.all_ok

    def test_slow_but_heartbeating_is_not_hung(self):
        # Heartbeats arrive every <= 0.25 s; the run takes 1.5 s. With
        # a 0.6 s hang timeout the watchdog must stay quiet: slow is
        # not hung.
        report = run_specs(
            [selftest("slow", mode="sleep", sleep_s=1.5, value=1)],
            workers=1,
            retries=0,
            hang_timeout_s=0.6,
        )
        outcome = report.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 1


class TestStderrCapture:
    def test_crash_stderr_tail_lands_in_outcome(self):
        report = run_specs(
            [
                selftest(
                    "noisy",
                    mode="stderr",
                    message="boom-tail-probe-42",
                )
            ],
            workers=1,
            retries=0,
        )
        outcome = report.outcomes[0]
        assert outcome.status == "crashed"
        assert "boom-tail-probe-42" in (outcome.stderr_tail or "")
        record = outcome.manifest_record(0)
        assert "boom-tail-probe-42" in record["stderr_tail"]

    def test_clean_worker_has_no_tail(self):
        report = run_specs(
            [selftest("quiet", mode="echo", value=1)], workers=1
        )
        assert report.outcomes[0].stderr_tail is None


class TestRetryBackoff:
    def test_deterministic(self):
        assert _retry_delay("abc", 1, 0.05) == _retry_delay("abc", 1, 0.05)

    def test_exponential_growth(self):
        base = _retry_delay("abc", 1, 0.05)
        assert _retry_delay("abc", 3, 0.05) > 2 * base

    def test_jitter_decorrelates_specs(self):
        assert _retry_delay("abc", 1, 0.05) != _retry_delay("xyz", 1, 0.05)

    def test_bounds(self):
        # attempt 1 at base b lands in [b, 2b).
        delay = _retry_delay("anything", 1, 0.05)
        assert 0.05 <= delay < 0.10


class TestGracefulInterrupt:
    def _tripped_flag(self) -> InterruptFlag:
        flag = InterruptFlag().install()
        os.kill(os.getpid(), signal.SIGTERM)  # latched, not fatal
        assert flag.triggered
        return flag

    def test_pool_abandons_pending_specs(self, fast_escalation):
        flag = self._tripped_flag()
        try:
            report = run_specs(
                [selftest(f"s{i}", mode="echo", value=i) for i in range(3)],
                workers=2,
                interrupt=flag,
            )
        finally:
            flag.restore()
        assert report.interrupted == 3
        assert report.failed == 0
        assert not report.all_ok
        assert {o.status for o in report.outcomes} == {"interrupted"}
        assert all(
            "SIGTERM" in o.error for o in report.outcomes
        )
        assert report.summary_record()["interrupted"] == 3

    def test_inline_mode_honors_interrupt(self):
        flag = self._tripped_flag()
        try:
            report = run_specs(
                [selftest("s", mode="echo", value=1)],
                workers=0,
                interrupt=flag,
            )
        finally:
            flag.restore()
        assert report.outcomes[0].status == "interrupted"

    def test_untriggered_flag_changes_nothing(self):
        flag = InterruptFlag()  # never installed, never tripped
        report = run_specs(
            [selftest("s", mode="echo", value=5)],
            workers=1,
            interrupt=flag,
        )
        assert report.all_ok
        assert report.interrupted == 0
