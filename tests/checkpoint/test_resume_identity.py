"""The determinism contract: interrupted + resumed == uninterrupted.

These tests drive :func:`run_scale_scenario_checkpointed` through
cooperative interruption (the SIGKILL variant lives in
``test_crash_harness.py``) and assert the resumed report's payload is
*equal*, not merely close, to the golden uninterrupted run's.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    RunInterrupted,
    run_scale_scenario_checkpointed,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    StaleCheckpointError,
)
from repro.workload.scenarios import make_scenario, run_scale_scenario

FP = "a" * 64

DURATION = 8.0
MAX_SESSIONS = 60


class _TripAfter:
    """InterruptFlag stand-in that trips after N observed steps."""

    def __init__(self, steps: int):
        self.steps = steps
        self.seen = 0
        self.signal_name = "SIGTEST"

    @property
    def triggered(self) -> bool:
        return self.seen >= self.steps

    def note(self, k: int, t: float) -> None:
        self.seen += 1


def scenario():
    return make_scenario("baseline", duration=DURATION)


def golden():
    return run_scale_scenario(
        scenario(), seed=0, max_sessions=MAX_SESSIONS
    )


@pytest.mark.parametrize("stop_after_steps", [7, 31, 50])
def test_interrupt_resume_is_byte_identical(tmp_path, stop_after_steps):
    store = CheckpointStore(tmp_path)
    flag = _TripAfter(stop_after_steps)
    with pytest.raises(RunInterrupted) as excinfo:
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=0,
            max_sessions=MAX_SESSIONS,
            config=CheckpointConfig(every_s=1.0),
            fingerprint=FP,
            interrupt=flag,
            on_step=flag.note,
        )
    assert excinfo.value.steps_done > 0
    assert store.exists(), "interrupt must flush a final checkpoint"

    resumed = run_scale_scenario_checkpointed(
        scenario(),
        store,
        seed=0,
        max_sessions=MAX_SESSIONS,
        config=CheckpointConfig(every_s=1.0),
        fingerprint=FP,
        strict_resume=True,
    )
    assert resumed.to_dict() == golden().to_dict()
    assert not store.exists(), "completed run must clear its slot"


def test_double_interrupt_then_resume(tmp_path):
    # Kill, resume a little, kill again, then finish: state must
    # survive chained resumes, not just one.
    store = CheckpointStore(tmp_path)
    for stop in (10, 25):
        flag = _TripAfter(stop)
        with pytest.raises(RunInterrupted):
            run_scale_scenario_checkpointed(
                scenario(),
                store,
                seed=0,
                max_sessions=MAX_SESSIONS,
                config=CheckpointConfig(every_s=1.0),
                fingerprint=FP,
                interrupt=flag,
                on_step=flag.note,
            )
    final = run_scale_scenario_checkpointed(
        scenario(),
        store,
        seed=0,
        max_sessions=MAX_SESSIONS,
        config=CheckpointConfig(every_s=1.0),
        fingerprint=FP,
    )
    assert final.to_dict() == golden().to_dict()


def test_periodic_checkpoint_does_not_perturb_run(tmp_path):
    store = CheckpointStore(tmp_path)
    report = run_scale_scenario_checkpointed(
        scenario(),
        store,
        seed=0,
        max_sessions=MAX_SESSIONS,
        config=CheckpointConfig(every_s=0.5),  # aggressive cadence
        fingerprint=FP,
    )
    assert report.to_dict() == golden().to_dict()


def test_stale_checkpoint_rejected_on_strict_resume(tmp_path):
    store = CheckpointStore(tmp_path)
    flag = _TripAfter(20)
    with pytest.raises(RunInterrupted):
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=0,
            max_sessions=MAX_SESSIONS,
            fingerprint=FP,
            interrupt=flag,
            on_step=flag.note,
        )
    # "The code changed": a different fingerprint demands a loud
    # failure on the strict path and a fresh (still identical) run on
    # the lenient one.
    with pytest.raises(StaleCheckpointError):
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=0,
            max_sessions=MAX_SESSIONS,
            fingerprint="b" * 64,
            strict_resume=True,
        )
    lenient = run_scale_scenario_checkpointed(
        scenario(),
        store,
        seed=0,
        max_sessions=MAX_SESSIONS,
        fingerprint="b" * 64,
    )
    assert lenient.to_dict() == golden().to_dict()


def test_mismatched_run_context_rejected(tmp_path):
    store = CheckpointStore(tmp_path)
    flag = _TripAfter(20)
    with pytest.raises(RunInterrupted):
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=0,
            max_sessions=MAX_SESSIONS,
            fingerprint=FP,
            interrupt=flag,
            on_step=flag.note,
        )
    # Same store, different seed: strict resume refuses to graft the
    # checkpoint onto a different run.
    with pytest.raises(CheckpointError, match="seed"):
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=1,
            max_sessions=MAX_SESSIONS,
            fingerprint=FP,
            strict_resume=True,
        )


def test_resume_false_ignores_checkpoint(tmp_path):
    store = CheckpointStore(tmp_path)
    flag = _TripAfter(20)
    with pytest.raises(RunInterrupted):
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=0,
            max_sessions=MAX_SESSIONS,
            fingerprint=FP,
            interrupt=flag,
            on_step=flag.note,
        )
    report = run_scale_scenario_checkpointed(
        scenario(),
        store,
        seed=0,
        max_sessions=MAX_SESSIONS,
        fingerprint=FP,
        resume=False,
    )
    assert report.to_dict() == golden().to_dict()


def test_driver_refuses_midrun_restore(tmp_path):
    from repro.workload.scenarios import make_scale_run

    store = CheckpointStore(tmp_path)
    flag = _TripAfter(20)
    with pytest.raises(RunInterrupted):
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=0,
            max_sessions=MAX_SESSIONS,
            fingerprint=FP,
            interrupt=flag,
            on_step=flag.note,
        )
    payload = store.load(fingerprint=FP).payload
    driver = make_scale_run(scenario(), seed=0, max_sessions=MAX_SESSIONS)
    driver.run(1.0)  # no longer fresh
    with pytest.raises(ConfigurationError, match="fresh"):
        driver.load_state_dict(payload["driver"])
