"""CheckpointStore: atomicity, verification, staleness, policy."""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    CheckpointConfig,
    CheckpointStore,
    GRACEFUL_EXIT_CODE,
    InterruptFlag,
)
from repro.checkpoint.snapshot import payload_checksum
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    StaleCheckpointError,
)

FP = "f" * 64
OTHER_FP = "0" * 64


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        payload = {"b": 2, "a": [1.5, None, "x"], "nested": {"z": 1, "a": 2}}
        path = store.save(payload, fingerprint=FP, meta={"step": 7})
        assert path.exists() and store.exists()

        loaded = store.load(fingerprint=FP)
        assert isinstance(loaded, Checkpoint)
        assert loaded.schema == CHECKPOINT_SCHEMA
        assert loaded.payload == payload
        assert loaded.meta == {"step": 7}
        assert loaded.digest == payload_checksum(payload)

    def test_key_order_survives_roundtrip(self, tmp_path):
        # Insertion order is simulation state (float sums accumulate in
        # dict order); the store must never sort it away.
        store = CheckpointStore(tmp_path)
        payload = {"z": 1, "m": 2, "a": 3}
        store.save(payload, fingerprint=FP)
        loaded = store.load(fingerprint=FP)
        assert list(loaded.payload.keys()) == ["z", "m", "a"]

    def test_missing_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load(fingerprint=FP) is None
        assert not store.exists()
        store.clear()  # idempotent on nothing

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": 1}, fingerprint=FP)
        store.clear()
        assert store.load(fingerprint=FP) is None

    def test_save_overwrites_in_place(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"step": 1}, fingerprint=FP)
        store.save({"step": 2}, fingerprint=FP)
        assert store.load(fingerprint=FP).payload == {"step": 2}

    def test_tampered_payload_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"balance": 10}, fingerprint=FP)
        envelope = json.loads(store.path.read_text())
        envelope["payload"]["balance"] = 9999
        store.path.write_text(json.dumps(envelope))

        with pytest.raises(CheckpointError, match="digest"):
            store.load(fingerprint=FP)
        # Lenient (supervised worker) degrades to a fresh start.
        assert store.load(fingerprint=FP, strict=False) is None

    def test_truncated_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": list(range(100))}, fingerprint=FP)
        raw = store.path.read_text()
        store.path.write_text(raw[: len(raw) // 2])

        with pytest.raises(CheckpointError, match="JSON"):
            store.load(fingerprint=FP)
        assert store.load(fingerprint=FP, strict=False) is None

    def test_missing_envelope_keys_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path.write_text(json.dumps({"schema": CHECKPOINT_SCHEMA}))
        with pytest.raises(CheckpointError, match="missing"):
            store.load()

    def test_schema_mismatch_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": 1}, fingerprint=FP)
        envelope = json.loads(store.path.read_text())
        envelope["schema"] = CHECKPOINT_SCHEMA + 1
        store.path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="schema"):
            store.load(fingerprint=FP)

    def test_stale_fingerprint_strict_raises(self, tmp_path):
        # The stale-checkpoint hazard: resuming state written by
        # different code must fail loudly on the strict path.
        store = CheckpointStore(tmp_path)
        store.save({"x": 1}, fingerprint=OTHER_FP)
        with pytest.raises(StaleCheckpointError, match="different"):
            store.load(fingerprint=FP)

    def test_stale_fingerprint_lenient_is_fresh_start(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": 1}, fingerprint=OTHER_FP)
        assert store.load(fingerprint=FP, strict=False) is None

    def test_no_fingerprint_check_when_unpinned(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": 1}, fingerprint=OTHER_FP)
        assert store.load().payload == {"x": 1}

    def test_nan_state_rejected_at_write(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save({"x": float("nan")}, fingerprint=FP)


class TestCheckpointConfig:
    def test_every_steps(self):
        assert CheckpointConfig(every_s=5.0).every_steps(0.1) == 50
        assert CheckpointConfig(every_s=0.05).every_steps(0.1) == 1

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(every_s=bad)


class TestInterruptFlag:
    def test_latches_first_signal(self):
        flag = InterruptFlag().install()
        try:
            assert not flag.triggered
            os.kill(os.getpid(), signal.SIGTERM)
            assert flag.triggered
            assert flag.signal_name == "SIGTERM"
        finally:
            flag.restore()

    def test_restore_reinstates_previous_handler(self):
        before = signal.getsignal(signal.SIGTERM)
        flag = InterruptFlag().install()
        assert signal.getsignal(signal.SIGTERM) != before
        flag.restore()
        assert signal.getsignal(signal.SIGTERM) == before

    def test_graceful_exit_code_is_tempfail(self):
        assert GRACEFUL_EXIT_CODE == 75


class TestCheckpointTraceEvents:
    def _obs(self):
        from repro.obs.context import Observability

        return Observability()

    def test_save_and_restore_emit_checkpoint_events(self, tmp_path):
        from repro.obs.events import Category

        obs = self._obs()
        store = CheckpointStore(tmp_path, obs=obs)
        store.save({"a": 1}, fingerprint=FP, meta={"t": 12.5, "step": 3})
        store.load(fingerprint=FP)
        events = list(obs.trace)
        names = [(e.category, e.name) for e in events]
        assert (Category.CHECKPOINT, "snapshot_write") in names
        assert (Category.CHECKPOINT, "snapshot_restore") in names
        write = next(e for e in events if e.name == "snapshot_write")
        restore = next(e for e in events if e.name == "snapshot_restore")
        # Events carry the snapshot's *virtual* time and its identity.
        assert write.sim_time == 12.5
        assert restore.sim_time == 12.5
        assert write.fields["size"] > 0
        assert len(write.fields["digest"]) == 64
        assert restore.fields["digest"] == write.fields["digest"]

    def test_corrupt_checkpoint_emits_reject_with_reason(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": 1}, fingerprint=FP)
        store.path.write_text("this is not json")
        obs = self._obs()
        store.bind_observability(obs)
        assert store.load(fingerprint=FP, strict=False) is None
        reject = next(e for e in list(obs.trace) if e.name == "snapshot_reject")
        assert reject.fields["reason"] == "CheckpointError"
        assert reject.fields["size"] > 0

    def test_stale_checkpoint_emits_reject(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": 1}, fingerprint=FP)
        obs = self._obs()
        store.bind_observability(obs)
        assert store.load(fingerprint=OTHER_FP, strict=False) is None
        reject = next(e for e in list(obs.trace) if e.name == "snapshot_reject")
        assert reject.fields["reason"] == "StaleCheckpointError"

    def test_unbound_store_stays_silent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": 1}, fingerprint=FP)
        assert store.load(fingerprint=FP) is not None  # no obs, no crash
