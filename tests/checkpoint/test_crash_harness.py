"""Kill-injection: real SIGKILLs, supervised restarts, identical bytes."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.crash import (
    KillSwitch,
    run_crash_test,
    seeded_kill_points,
)


class TestSeededKillPoints:
    def test_deterministic_and_sorted(self):
        a = seeded_kill_points(20.0, 4, seed=3)
        b = seeded_kill_points(20.0, 4, seed=3)
        assert a == b == sorted(a)
        assert len(a) == 4
        assert all(2.0 <= t <= 18.0 for t in a)

    def test_seed_and_label_decorrelate(self):
        assert seeded_kill_points(20.0, 3, seed=0) != seeded_kill_points(
            20.0, 3, seed=1
        )
        assert seeded_kill_points(
            20.0, 3, seed=0, label="x"
        ) != seeded_kill_points(20.0, 3, seed=0, label="y")

    @pytest.mark.parametrize(
        "kwargs",
        [{"duration": 10.0, "n": 0}, {"duration": 0.0, "n": 1}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            seeded_kill_points(kwargs["duration"], kwargs["n"], seed=0)


class TestKillSwitch:
    def test_counter_survives_marker_io(self, tmp_path):
        switch = KillSwitch(tmp_path, [5.0, 9.0])
        assert switch.kills_done == 0
        # Before the first point: no kill, no marker.
        switch.maybe_kill(4.99)
        assert not switch.marker_path.exists()
        # A pre-existing marker (a previous attempt died here) counts.
        switch.marker_path.write_text(json.dumps({"kills": 2}))
        assert switch.kills_done == 2
        # All points delivered: reaching later times never kills again.
        switch.maybe_kill(100.0)

    def test_corrupt_marker_reads_as_zero(self, tmp_path):
        switch = KillSwitch(tmp_path, [5.0])
        switch.marker_path.write_text("not json")
        assert switch.kills_done == 0


@pytest.mark.parametrize("workers", [1, 2])
def test_sigkilled_run_resumes_byte_identical(workers, tmp_path):
    """The PR's acceptance gate: >= 3 real SIGKILLs at seeded points,
    supervised restarts resuming from verified checkpoints, and a
    survivor report byte-identical to the uninterrupted golden — for
    the serial and the parallel executor alike."""
    summary = run_crash_test(
        scenario="baseline",
        seed=0,
        kills=3,
        duration=10.0,
        max_sessions=80,
        checkpoint_every=1.0,
        workers=workers,
        work_dir=tmp_path / f"w{workers}",
        manifest_path=tmp_path / f"manifest-w{workers}.jsonl",
    )
    assert summary["status"] == "ok"
    assert summary["identical"], summary
    assert summary["attempts"] == 4  # 3 kills + the surviving attempt
    assert len(summary["kill_points"]) == 3
    assert summary["survivor_checksum"] == summary["golden_checksum"]

    # The manifest records the supervised retries.
    records = [
        json.loads(line)
        for line in (tmp_path / f"manifest-w{workers}.jsonl")
        .read_text()
        .splitlines()
    ]
    specs = [r for r in records if r.get("type") == "spec"]
    assert specs and specs[-1]["attempts"] == 4
    assert specs[-1]["status"] == "ok"


def test_crash_test_manifests_match_across_widths(tmp_path):
    """Serial and parallel survivors don't just match the golden —
    their payload digests match each other."""
    summaries = [
        run_crash_test(
            scenario="baseline",
            seed=0,
            kills=2,
            duration=8.0,
            max_sessions=60,
            checkpoint_every=1.0,
            workers=workers,
            work_dir=tmp_path / f"w{workers}",
        )
        for workers in (1, 2)
    ]
    assert all(s["identical"] for s in summaries)
    assert (
        summaries[0]["survivor_checksum"]
        == summaries[1]["survivor_checksum"]
    )
