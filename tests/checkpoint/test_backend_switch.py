"""Checkpoint restore across the sim-backend boundary.

Snapshots are backend-agnostic bytes: a run interrupted under the
scalar backend and resumed under the vectorized one (or the reverse)
must finish with a report *equal* to the uninterrupted run's — the
checkpoint payload records simulation state, not backend
representation.  If that ever stops holding, the resume must fail
loudly (``StaleCheckpointError``), never drift silently; these tests
pin the byte-match arm of that contract.
"""

from __future__ import annotations

import pytest

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    RunInterrupted,
    run_scale_scenario_checkpointed,
)
from repro.runner.cache import payload_digest
from repro.workload.scenarios import make_scenario, run_scale_scenario

FP = "b" * 64

DURATION = 8.0
MAX_SESSIONS = 60


class _TripAfter:
    """InterruptFlag stand-in that trips after N observed steps."""

    def __init__(self, steps: int):
        self.steps = steps
        self.seen = 0
        self.signal_name = "SIGTEST"

    @property
    def triggered(self) -> bool:
        return self.seen >= self.steps

    def note(self, k: int, t: float) -> None:
        self.seen += 1


def scenario():
    return make_scenario("baseline", duration=DURATION)


def golden(backend: str):
    return run_scale_scenario(
        scenario(), seed=0, max_sessions=MAX_SESSIONS, sim_backend=backend
    )


def interrupt_under(store: CheckpointStore, backend: str, steps: int):
    flag = _TripAfter(steps)
    with pytest.raises(RunInterrupted):
        run_scale_scenario_checkpointed(
            scenario(),
            store,
            seed=0,
            max_sessions=MAX_SESSIONS,
            config=CheckpointConfig(every_s=1.0),
            fingerprint=FP,
            interrupt=flag,
            on_step=flag.note,
            sim_backend=backend,
        )
    assert store.exists(), "interrupt must flush a final checkpoint"


def resume_under(store: CheckpointStore, backend: str):
    return run_scale_scenario_checkpointed(
        scenario(),
        store,
        seed=0,
        max_sessions=MAX_SESSIONS,
        config=CheckpointConfig(every_s=1.0),
        fingerprint=FP,
        strict_resume=True,
        sim_backend=backend,
    )


def test_goldens_agree_across_backends():
    """Precondition for the switch tests: one golden, not one each."""
    assert golden("scalar").to_dict() == golden("vectorized").to_dict()


@pytest.mark.parametrize(
    "first,second", [("scalar", "vectorized"), ("vectorized", "scalar")]
)
@pytest.mark.parametrize("stop_after_steps", [9, 41])
def test_resume_across_backend_switch(
    tmp_path, first, second, stop_after_steps
):
    store = CheckpointStore(tmp_path)
    interrupt_under(store, first, stop_after_steps)
    resumed = resume_under(store, second)
    assert resumed.to_dict() == golden(second).to_dict()
    assert not store.exists(), "completed run must clear its slot"


def test_snapshot_bytes_are_backend_independent(tmp_path):
    """The flushed checkpoint payloads digest identically per backend."""
    digests = {}
    for backend in ("scalar", "vectorized"):
        store = CheckpointStore(tmp_path / backend)
        interrupt_under(store, backend, 25)
        checkpoint = store.load(fingerprint=FP)
        digests[backend] = payload_digest(checkpoint.payload)
    assert digests["scalar"] == digests["vectorized"]
