"""End-to-end graceful interrupt: real processes, real signals.

These are subprocess tests of the CLI contract: SIGINT/SIGTERM makes a
checkpoint-enabled run flush its snapshot and exit with code 75
(``EX_TEMPFAIL``), and rerunning the same command completes with the
same bytes as a never-interrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.checkpoint import GRACEFUL_EXIT_CODE

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _workload_cmd(ckpt_dir: Path, json_out: Path, extra=()) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.workload",
        "--scenario",
        "baseline",
        "--duration",
        "30",
        "--checkpoint-dir",
        str(ckpt_dir),
        "--checkpoint-every",
        "1",
        "--json-out",
        str(json_out),
        *extra,
    ]


def _interrupt_after_checkpoint(
    proc: subprocess.Popen, ckpt: Path, sig: int, timeout: float = 30.0
) -> None:
    """Signal ``proc`` once its first checkpoint has landed on disk."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if ckpt.exists():
            proc.send_signal(sig)
            return
        if proc.poll() is not None:
            pytest.fail(
                f"run exited (rc={proc.returncode}) before checkpointing"
            )
        time.sleep(0.05)
    proc.kill()
    pytest.fail("no checkpoint appeared within the timeout")


@pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
def test_workload_cli_interrupt_resume_identical(tmp_path, sig):
    ckpt_dir = tmp_path / "ckpt"
    out = tmp_path / "resumed.json"

    proc = subprocess.Popen(
        _workload_cmd(ckpt_dir, out),
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    _interrupt_after_checkpoint(
        proc, ckpt_dir / "checkpoint.json", sig
    )
    _, stderr = proc.communicate(timeout=60)
    assert proc.returncode == GRACEFUL_EXIT_CODE, stderr
    assert "interrupted" in stderr
    assert (ckpt_dir / "checkpoint.json").exists()

    # Strict resume (--resume) finishes the run...
    resumed = subprocess.run(
        _workload_cmd(ckpt_dir, out, extra=("--resume",)),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr

    # ...and matches an uninterrupted run byte for byte.
    golden_out = tmp_path / "golden.json"
    golden = subprocess.run(
        _workload_cmd(tmp_path / "ckpt-golden", golden_out),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert golden.returncode == 0, golden.stderr
    assert out.read_bytes() == golden_out.read_bytes()
    # Completed runs cleared their slots.
    assert not (ckpt_dir / "checkpoint.json").exists()


def test_runner_cli_interrupt_exits_75(tmp_path):
    # The runner CLI wires the same InterruptFlag through run_specs;
    # SIGTERM during a (slow, uncached) figure run must exit 75 and
    # report the abandoned specs.
    manifest = tmp_path / "manifest.jsonl"
    cmd = [
        sys.executable,
        "-m",
        "repro.runner",
        "fig10",
        "--with-scale",  # multi-second specs: a real interrupt window
        "--no-cache",
        "--output-dir",
        str(tmp_path / "out"),
        "--summary-json",
        str(tmp_path / "summary.json"),
        "--manifest",
        str(manifest),
    ]
    proc = subprocess.Popen(
        cmd,
        env=_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(tmp_path),
    )
    # Signal only once the run demonstrably started (manifest header
    # written => InterruptFlag installed), else SIGTERM just kills the
    # interpreter mid-import.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not manifest.exists():
        assert proc.poll() is None, "runner exited before starting"
        time.sleep(0.05)
    assert manifest.exists(), "runner never wrote its manifest header"
    proc.send_signal(signal.SIGTERM)
    _, stderr = proc.communicate(timeout=60)
    assert proc.returncode == GRACEFUL_EXIT_CODE, stderr
    assert "abandoned" in stderr


def test_kill_at_requires_checkpoint_dir():
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.workload",
            "--kill-at",
            "3.0",
        ],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "--checkpoint-dir" in result.stderr
