"""Packets and exponential backoff."""

import pytest

from repro.errors import ConfigurationError
from repro.transport.backoff import ExponentialBackoff
from repro.transport.packet import Packet


class TestPacket:
    def test_orders_by_deadline(self):
        early = Packet(deadline=0.1, stream="s", seq=0)
        late = Packet(deadline=0.2, stream="s", seq=1)
        assert early < late

    def test_tie_breaks_by_stream_then_seq(self):
        a = Packet(deadline=0.1, stream="a", seq=5)
        b = Packet(deadline=0.1, stream="b", seq=0)
        assert a < b
        s0 = Packet(deadline=0.1, stream="a", seq=0)
        assert s0 < a

    def test_delivery_flags(self):
        pkt = Packet(deadline=1.0, stream="s", seq=0)
        assert not pkt.delivered
        assert not pkt.missed_deadline
        pkt.delivered_at = 0.5
        assert pkt.delivered
        assert not pkt.missed_deadline
        pkt.delivered_at = 1.5
        assert pkt.missed_deadline

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Packet(deadline=0.0, stream="s", seq=0, size=0)


class TestBackoff:
    def test_doubles_until_cap(self):
        backoff = ExponentialBackoff(base_delay=0.01, factor=2.0, max_delay=0.05)
        delays = [backoff.next_delay() for _ in range(5)]
        assert delays == pytest.approx([0.01, 0.02, 0.04, 0.05, 0.05])

    def test_reset_restarts(self):
        backoff = ExponentialBackoff(base_delay=0.01)
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.failures == 0
        assert backoff.next_delay() == pytest.approx(0.01)

    def test_counts_failures(self):
        backoff = ExponentialBackoff()
        for _ in range(3):
            backoff.next_delay()
        assert backoff.failures == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(base_delay=0.0)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(factor=0.5)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(base_delay=1.0, max_delay=0.5)
