"""Delivery edge cases, asserted identically under both sim backends.

Satellite coverage for the vectorized core's corners: zero-length
delivery windows (no-op advances, open/close inside one interval, a
single-window packet session), stream close racing a pending remap, and
paths whose residual-bandwidth draw has nothing mapped to them.  Every
test drives the scalar and vectorized backends through the same script
and asserts byte-equality of the resulting state, not just plausibility.
"""

import numpy as np
import pytest

from repro.apps.smartpointer import smartpointer_streams
from repro.core.spec import StreamSpec
from repro.errors import ConfigurationError
from repro.middleware.service import IQPathsService
from repro.network.emulab import make_figure8_testbed
from repro.runner.cache import payload_digest
from repro.transport.session import run_packet_session

BACKENDS = ("scalar", "vectorized")


def make_service(backend: str, seed: int = 11, duration: float = 60.0):
    realization = make_figure8_testbed().realize(
        seed=seed, duration=duration, dt=0.1
    )
    return IQPathsService(
        realization,
        warmup_intervals=100,
        strict_admission=False,
        sim_backend=backend,
    )


def digests(service: IQPathsService):
    state = payload_digest(service.state_dict())
    reports = {
        name: report.mbps.tolist()
        for name, report in service.reports().items()
    }
    return state, reports


class TestZeroLengthWindows:
    def test_zero_advance_is_a_noop(self):
        results = []
        for backend in BACKENDS:
            service = make_service(backend)
            service.open_stream(
                StreamSpec(name="s", required_mbps=10.0, probability=0.9)
            )
            service.advance(0.0)
            results.append(digests(service))
        assert results[0] == results[1]
        # Nothing stepped: the stream's history is empty either way.
        assert results[0][1]["s"] == []

    def test_open_close_within_one_interval(self):
        """A stream whose lifetime is zero delivery windows."""
        results = []
        for backend in BACKENDS:
            service = make_service(backend)
            service.open_stream(
                StreamSpec(name="blip", required_mbps=5.0, probability=0.9)
            )
            service.close_stream("blip")
            service.advance(2.0)
            results.append(digests(service))
        assert results[0] == results[1]
        assert results[0][1]["blip"] == []

    def test_single_window_packet_session(self):
        """The shortest legal session: exactly one traffic window."""
        realization = make_figure8_testbed().realize(
            seed=5, duration=31.0, dt=0.1
        )
        sessions = [
            run_packet_session(
                realization,
                smartpointer_streams(),
                tw=1.0,
                warmup_windows=30,
                sim_backend=backend,
            )
            for backend in BACKENDS
        ]
        assert sessions[0].n_windows == 1
        assert sessions[0].sent == sessions[1].sent
        assert (
            sessions[0].quarantine_series == sessions[1].quarantine_series
        )

    def test_session_with_no_traffic_windows_rejected(self):
        realization = make_figure8_testbed().realize(
            seed=5, duration=30.0, dt=0.1
        )
        for backend in BACKENDS:
            with pytest.raises(ConfigurationError):
                run_packet_session(
                    realization,
                    smartpointer_streams(),
                    tw=1.0,
                    warmup_windows=30,
                    sim_backend=backend,
                )


class TestCloseDuringRemap:
    def test_close_while_remap_pending(self):
        """Membership churn voids the mapping; the close must land first.

        Closing a stream immediately after opening another leaves the
        scheduler with a voided mapping *and* a freed row whose recycled
        slot must not leak into the next compiled template.
        """
        results = []
        for backend in BACKENDS:
            service = make_service(backend)
            for i in range(3):
                service.open_stream(
                    StreamSpec(
                        name=f"s{i}", required_mbps=8.0, probability=0.9
                    )
                )
            service.advance(3.0)
            # New member voids the mapping; close "s1" before any step
            # runs the pending remap.
            service.open_stream(
                StreamSpec(name="late", required_mbps=6.0, probability=0.9)
            )
            service.close_stream("s1")
            service.advance(3.0)
            # Reopen the closed name: recycles s1's row, fresh history.
            service.open_stream(
                StreamSpec(name="s1", required_mbps=4.0, probability=0.9)
            )
            service.advance(2.0)
            results.append(digests(service))
        assert results[0] == results[1]
        assert len(results[0][1]["s1"]) == 20  # reopened lifetime only

    def test_close_all_streams_then_step(self):
        """Delivery over an empty stream set is a well-defined no-op."""
        results = []
        for backend in BACKENDS:
            service = make_service(backend)
            service.open_stream(
                StreamSpec(name="s", required_mbps=10.0, probability=0.9)
            )
            service.advance(1.0)
            service.close_stream("s")
            service.advance(1.0)
            results.append(digests(service))
        assert results[0] == results[1]


class TestEmptyPathResidualDraw:
    def test_path_with_nothing_mapped_still_validated(self):
        """A one-stream set leaves a path with an empty request list.

        The scalar loop still calls water_fill([], capacity) on that
        path (validating the capacity); the vectorized backend must do
        the same rather than skipping the path.
        """
        results = []
        for backend in BACKENDS:
            service = make_service(backend)
            service.open_stream(
                StreamSpec(name="solo", required_mbps=2.0, probability=0.9)
            )
            service.advance(5.0)
            results.append(digests(service))
        assert results[0] == results[1]
        series = np.asarray(results[0][1]["solo"])
        assert len(series) == 50
        assert series.max() > 0.0

    def test_elastic_only_residual_draw(self):
        """Rule-3-only traffic: the whole draw is residual bandwidth."""
        results = []
        for backend in BACKENDS:
            service = make_service(backend)
            service.open_stream(
                StreamSpec(name="bulk", elastic=True, nominal_mbps=40.0)
            )
            service.advance(4.0)
            results.append(digests(service))
        assert results[0] == results[1]
        assert max(results[0][1]["bulk"]) > 0.0
