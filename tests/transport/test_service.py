"""Path services: budgets, blocking, backoff interplay, fluid mode."""

import pytest

from repro.errors import ConfigurationError
from repro.transport.backoff import ExponentialBackoff
from repro.transport.packet import Packet
from repro.transport.service import PathService


def pkt(seq: int, stream: str = "s", size: int = 1000) -> Packet:
    return Packet(deadline=float(seq), stream=stream, seq=seq, size=size)


class TestOffer:
    def test_delivers_within_budget(self):
        service = PathService("A")
        service.begin_interval(0.0, 2500)
        assert service.offer(pkt(0))
        assert service.offer(pkt(1))
        assert service.remaining_budget == 500

    def test_blocks_beyond_budget(self):
        service = PathService("A")
        service.begin_interval(0.0, 1500)
        assert service.offer(pkt(0))
        assert not service.offer(pkt(1))
        assert service.blocked

    def test_stamps_delivery(self):
        service = PathService("A")
        service.begin_interval(2.0, 5000)
        packet = pkt(0)
        service.offer(packet)
        assert packet.delivered_at == 2.0
        assert packet.path == "A"

    def test_backoff_window_refuses_even_with_budget(self):
        service = PathService(
            "A", backoff=ExponentialBackoff(base_delay=0.5, max_delay=1.0)
        )
        service.begin_interval(0.0, 500)
        assert not service.offer(pkt(0))  # too big -> backoff starts
        service.begin_interval(0.1, 10_000)  # budget plenty, still backing off
        assert not service.offer(pkt(1))
        service.begin_interval(0.6, 10_000)  # backoff elapsed
        assert service.offer(pkt(2))

    def test_success_resets_backoff(self):
        backoff = ExponentialBackoff(base_delay=0.01)
        service = PathService("A", backoff=backoff)
        service.begin_interval(0.0, 500)
        service.offer(pkt(0))  # blocked
        assert backoff.failures == 1
        service.begin_interval(1.0, 10_000)
        service.offer(pkt(1))
        assert backoff.failures == 0


class TestAccounting:
    def test_per_stream_bytes(self):
        service = PathService("A")
        service.begin_interval(0.0, 10_000)
        service.offer(pkt(0, "x"))
        service.offer(pkt(1, "y"))
        service.offer(pkt(2, "x"))
        assert service.log.bytes_by_stream == {"x": 2000.0, "y": 1000.0}
        assert service.log.packets_by_stream == {"x": 2, "y": 1}

    def test_interval_bytes_reset(self):
        service = PathService("A")
        service.begin_interval(0.0, 10_000)
        service.offer(pkt(0))
        service.begin_interval(0.1, 10_000)
        assert service.log.interval_bytes == {}
        assert service.log.bytes_by_stream["s"] == 1000.0

    def test_deadline_misses_counted(self):
        service = PathService("A")
        service.begin_interval(5.0, 10_000)
        service.offer(pkt(0))  # deadline 0.0 < delivered_at 5.0
        assert service.log.deadline_misses == {"s": 1}


class TestFluidMode:
    def test_budget_limited(self):
        service = PathService("A")
        service.begin_interval(0.0, 1000)
        assert service.deliver_bytes("s", 1500) == 1000
        assert service.remaining_budget == 0

    def test_accumulates(self):
        service = PathService("A")
        service.begin_interval(0.0, 5000)
        service.deliver_bytes("s", 2000)
        service.deliver_bytes("s", 1000)
        assert service.log.bytes_by_stream["s"] == 3000

    def test_negative_rejected(self):
        service = PathService("A")
        service.begin_interval(0.0, 1000)
        with pytest.raises(ConfigurationError):
            service.deliver_bytes("s", -1)

    def test_negative_budget_rejected(self):
        service = PathService("A")
        with pytest.raises(ConfigurationError):
            service.begin_interval(0.0, -5)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            PathService("")
