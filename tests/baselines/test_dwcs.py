"""DWCS: the window-constrained scheduler PGOS descends from."""

import pytest

from repro.baselines.dwcs import DWCSScheduler, utilization
from repro.core.spec import WindowConstraint
from repro.errors import ConfigurationError


def wc(x, y):
    return WindowConstraint(x=x, y=y)


class TestFeasibleSchedules:
    def test_single_stream_fully_served(self):
        sched = DWCSScheduler({"a": (wc(3, 10), 10)})
        sched.run(100)
        assert sched.violations("a") == 0
        assert sched.serviced("a") == 100  # work-conserving

    def test_two_streams_share_without_violations(self):
        # Requirements: 5/10 + 5/10 = full utilization, still feasible.
        sched = DWCSScheduler(
            {"a": (wc(5, 10), 10), "b": (wc(5, 10), 10)}
        )
        sched.run(200)
        assert sched.violations("a") == 0
        assert sched.violations("b") == 0

    def test_mixed_windows_feasible(self):
        sched = DWCSScheduler(
            {
                "tight": (wc(2, 4), 4),  # 50 % of slots
                "loose": (wc(2, 10), 10),  # 20 % of slots
            }
        )
        sched.run(400)
        assert sched.violations("tight") == 0
        assert sched.violations("loose") == 0

    def test_utilization_helper(self):
        constraints = {"a": (wc(5, 10), 10), "b": (wc(3, 10), 10)}
        assert utilization(constraints) == pytest.approx(0.8)


class TestOverload:
    def test_overload_forces_violations(self):
        # 8/10 + 8/10 = 160 % of slots: someone must miss.
        sched = DWCSScheduler(
            {"a": (wc(8, 10), 10), "b": (wc(8, 10), 10)}
        )
        sched.run(300)
        assert sched.violations("a") + sched.violations("b") > 0

    def test_overload_shared_roughly_fairly(self):
        sched = DWCSScheduler(
            {"a": (wc(8, 10), 10), "b": (wc(8, 10), 10)}
        )
        sched.run(1000)
        va, vb = sched.violations("a"), sched.violations("b")
        assert va > 0 and vb > 0
        assert abs(va - vb) <= 0.2 * max(va, vb)

    def test_tight_constraint_preferred_at_tie(self):
        # Same windows; "hungry" needs 9/10, "light" needs 1/10 — the
        # precedence (highest x'/y' first) must not starve hungry.
        sched = DWCSScheduler(
            {"hungry": (wc(9, 10), 10), "light": (wc(1, 10), 10)}
        )
        sched.run(500)
        assert sched.violations("hungry") == 0
        assert sched.violations("light") == 0

    def test_violation_rate(self):
        sched = DWCSScheduler({"a": (wc(10, 10), 10), "b": (wc(10, 10), 10)})
        sched.run(200)
        # Each stream can get at most half the slots but needs all.
        assert sched.violation_rate("a") == pytest.approx(0.5, abs=0.1)


class TestQueueMetering:
    def test_idle_stream_yields_slots(self):
        sched = DWCSScheduler(
            {"a": (wc(5, 10), 10), "b": (wc(5, 10), 10)}
        )
        sched.arrive("a", 100)
        # b never has arrivals: a gets every slot.
        sched.run(50, always_backlogged=False)
        assert sched.serviced("a") == 50
        assert sched.serviced("b") == 0

    def test_no_arrivals_no_service(self):
        sched = DWCSScheduler({"a": (wc(1, 10), 10)})
        sched.run(20, always_backlogged=False)
        assert sched.serviced("a") == 0


class TestValidation:
    def test_empty_constraints(self):
        with pytest.raises(ConfigurationError):
            DWCSScheduler({})

    def test_x_exceeding_window(self):
        with pytest.raises(ConfigurationError):
            DWCSScheduler({"a": (wc(5, 10), 3)})

    def test_bad_window_slots(self):
        with pytest.raises(ConfigurationError):
            DWCSScheduler({"a": (wc(1, 2), 0)})

    def test_unknown_stream(self):
        sched = DWCSScheduler({"a": (wc(1, 2), 4)})
        with pytest.raises(ConfigurationError):
            sched.violations("ghost")

    def test_negative_slots(self):
        sched = DWCSScheduler({"a": (wc(1, 2), 4)})
        with pytest.raises(ConfigurationError):
            sched.run(-1)
