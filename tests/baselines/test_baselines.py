"""The comparison schedulers: WFQ, MSFQ, OptSched, MeanPred."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.baselines.meanpred import MeanPredictionScheduler
from repro.baselines.msfq import MSFQScheduler
from repro.baselines.optsched import OptSchedScheduler
from repro.baselines.wfq import WFQScheduler
from repro.core.scheduler import water_fill
from repro.core.spec import StreamSpec

STREAMS = [
    StreamSpec(name="crit", required_mbps=20.0, probability=0.95),
    StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
]
BACKLOG = {"crit": 20.0, "bulk": None}


class TestWFQ:
    def test_uses_single_path(self):
        wfq = WFQScheduler()
        wfq.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        requests = wfq.allocate(0, BACKLOG)
        assert set(requests) == {"A"}
        assert wfq.path == "A"

    def test_explicit_path(self):
        wfq = WFQScheduler(path="B")
        wfq.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        assert wfq.path == "B"

    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError):
            WFQScheduler(path="Z").setup(STREAMS, ["A", "B"], 0.1, 1.0)

    def test_weights_proportional_to_targets(self):
        wfq = WFQScheduler()
        wfq.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        requests = wfq.allocate(0, BACKLOG)["A"]
        weights = {r.stream: r.weight for r in requests}
        assert weights == {"crit": 20.0, "bulk": 30.0}

    def test_all_same_priority_level(self):
        wfq = WFQScheduler()
        wfq.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        assert {r.level for r in wfq.allocate(0, BACKLOG)["A"]} == {0}

    def test_overload_squeezes_everyone(self):
        # The WFQ failure mode: path dips below demand, critical suffers.
        wfq = WFQScheduler()
        wfq.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        granted = water_fill(wfq.allocate(0, BACKLOG)["A"], 25.0)
        assert granted["crit"] == pytest.approx(10.0)  # 20/50 * 25
        assert granted["bulk"] == pytest.approx(15.0)

    def test_path_before_setup_rejected(self):
        with pytest.raises(ConfigurationError):
            WFQScheduler().path


class TestMSFQ:
    def _setup(self) -> MSFQScheduler:
        msfq = MSFQScheduler(alpha=0.5)
        msfq.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        return msfq

    def test_even_split_before_observations(self):
        msfq = self._setup()
        requests = msfq.allocate(0, BACKLOG)
        crit_a = next(r for r in requests["A"] if r.stream == "crit")
        crit_b = next(r for r in requests["B"] if r.stream == "crit")
        assert crit_a.demand_mbps == pytest.approx(10.0)
        assert crit_b.demand_mbps == pytest.approx(10.0)

    def test_split_follows_predicted_rates(self):
        msfq = self._setup()
        for k in range(50):
            msfq.observe(k, {"A": 60.0, "B": 20.0})
        requests = msfq.allocate(50, BACKLOG)
        crit_a = next(r for r in requests["A"] if r.stream == "crit")
        assert crit_a.demand_mbps == pytest.approx(15.0)  # 60/80 share

    def test_misprediction_hurts_critical(self):
        # Path B predicted at 20 but actually delivers 5: the B-assigned
        # quarter of crit's demand is mostly lost this interval.
        msfq = self._setup()
        for k in range(50):
            msfq.observe(k, {"A": 60.0, "B": 20.0})
        requests = msfq.allocate(50, BACKLOG)
        granted_b = water_fill(requests["B"], 5.0)
        assert granted_b["crit"] < 5.0  # far short of the 5 Mbps assigned

    def test_seed_history(self):
        msfq = MSFQScheduler()
        msfq.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        msfq.seed_history({"A": [60.0] * 10, "B": [20.0] * 10})
        requests = msfq.allocate(0, BACKLOG)
        crit_a = next(r for r in requests["A"] if r.stream == "crit")
        assert crit_a.demand_mbps == pytest.approx(15.0)


class TestOptSched:
    def _setup(self, avail_a, avail_b) -> OptSchedScheduler:
        opt = OptSchedScheduler()
        opt.set_oracle({"A": np.asarray(avail_a), "B": np.asarray(avail_b)})
        opt.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        return opt

    def test_requires_oracle(self):
        with pytest.raises(ConfigurationError, match="oracle"):
            OptSchedScheduler().setup(STREAMS, ["A"], 0.1, 1.0)

    def test_critical_exactly_served_when_feasible(self):
        opt = self._setup([50.0, 50.0], [30.0, 30.0])
        requests = opt.allocate(0, BACKLOG)
        crit = [
            r for p in ("A", "B") for r in requests[p] if r.stream == "crit"
        ]
        assert sum(r.demand_mbps for r in crit) == pytest.approx(20.0)
        assert all(r.level == 0 for r in crit)

    def test_splits_exactly_when_no_single_path_fits(self):
        opt = self._setup([15.0], [15.0])
        requests = opt.allocate(0, BACKLOG)
        crit_demands = {
            p: sum(r.demand_mbps for r in requests[p] if r.stream == "crit")
            for p in ("A", "B")
        }
        assert sum(crit_demands.values()) == pytest.approx(20.0)
        assert max(crit_demands.values()) <= 15.0

    def test_sticky_placement(self):
        opt = self._setup([50.0, 40.0, 50.0], [45.0, 45.0, 45.0])
        def crit_path(k):
            requests = opt.allocate(k, BACKLOG)
            return [
                p
                for p in ("A", "B")
                if any(r.stream == "crit" for r in requests[p])
            ]
        first = crit_path(0)
        # Interval 1: B has more capacity, but the stream stays put.
        assert crit_path(1) == first

    def test_oracle_index_clamped(self):
        opt = self._setup([50.0], [30.0])
        requests = opt.allocate(99, BACKLOG)  # beyond the series
        assert requests  # no IndexError


class TestMeanPred:
    def _setup(self, headroom=1.0) -> MeanPredictionScheduler:
        meanpred = MeanPredictionScheduler(alpha=0.5, headroom=headroom)
        meanpred.setup(STREAMS, ["A", "B"], 0.1, 1.0)
        meanpred.seed_history({"A": [50.0] * 20, "B": [30.0] * 20})
        return meanpred

    def test_places_critical_on_predicted_best(self):
        meanpred = self._setup()
        requests = meanpred.allocate(0, BACKLOG)
        assert any(r.stream == "crit" for r in requests["A"])
        assert not any(
            r.stream == "crit" and r.level == 0 for r in requests["B"]
        )

    def test_headroom_derates_prediction(self):
        # With headroom 0.3, neither path's derated mean (15/9) fits the
        # 20 Mbps stream; it must split (predicted-infeasible handling).
        meanpred = self._setup(headroom=0.3)
        requests = meanpred.allocate(0, BACKLOG)
        crit_paths = [
            p
            for p in ("A", "B")
            if any(r.stream == "crit" for r in requests[p])
        ]
        assert len(crit_paths) == 2

    def test_elastic_rides_level1(self):
        meanpred = self._setup()
        for p in ("A", "B"):
            bulk = [r for r in meanpred.allocate(0, BACKLOG)[p] if r.stream == "bulk"]
            assert bulk and bulk[0].level == 1
