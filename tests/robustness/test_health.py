"""Path-health state machine: transitions, hysteresis, backoff gating."""

import pytest

from repro.errors import ConfigurationError
from repro.robustness.health import (
    HealthThresholds,
    HealthTracker,
    PathHealth,
    PathHealthMachine,
)

TH = HealthThresholds(
    degrade_after=2,
    fail_after=2,
    recover_after=3,
    probe_confirm=2,
    backoff_base=1.0,
    backoff_max=8.0,
)


def feed(machine, t0, samples, dt=0.1, **kwargs):
    """Feed a bandwidth sequence; returns (next_t, all transitions)."""
    transitions = []
    t = t0
    for bw in samples:
        transitions += machine.update(t, bw, **kwargs)
        t += dt
    return t, transitions


class TestClassification:
    def test_starts_healthy_with_no_baseline(self):
        m = PathHealthMachine("A", TH)
        assert m.state is PathHealth.HEALTHY
        assert m.baseline_mbps is None

    def test_first_sample_sets_baseline(self):
        m = PathHealthMachine("A", TH)
        m.update(0.0, 50.0)
        assert m.baseline_mbps == pytest.approx(50.0)

    def test_baseline_tracks_good_windows_only(self):
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 10)
        baseline_before = m.baseline_mbps
        # A collapse must not drag the baseline down with it.
        feed(m, 1.0, [0.0] * 4)
        assert m.baseline_mbps == pytest.approx(baseline_before)


class TestLadder:
    def test_collapse_walks_healthy_to_failed(self):
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 5)
        _, transitions = feed(m, 0.5, [0.0] * 6)
        states = [t.new for t in transitions]
        assert states == [
            PathHealth.DEGRADED,
            PathHealth.SUSPECT,
            PathHealth.FAILED,
        ]
        assert m.quarantined

    def test_single_bad_window_does_not_transition(self):
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 5)
        _, transitions = feed(m, 0.5, [0.0])
        assert transitions == []
        assert m.state is PathHealth.HEALTHY

    def test_flapping_below_hysteresis_never_escalates(self):
        # One bad window between good ones: degrade_after=2 never fires.
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 5)
        _, transitions = feed(m, 0.5, [0.0, 50.0] * 20)
        assert transitions == []
        assert m.state is PathHealth.HEALTHY

    def test_probe_timeout_is_a_fail_signal(self):
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 5)
        _, transitions = feed(m, 0.5, [None] * 6)
        assert transitions[-1].new is PathHealth.FAILED

    def test_loss_spike_is_a_fail_signal(self):
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 5)
        _, transitions = feed(m, 0.5, [50.0] * 6, loss=0.5)
        assert transitions[-1].new is PathHealth.FAILED

    def test_ks_shift_degrades_but_does_not_fail(self):
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 5)
        _, transitions = feed(m, 0.5, [50.0] * 10, ks_shift=True)
        assert [t.new for t in transitions] == [PathHealth.DEGRADED]
        assert m.state is PathHealth.DEGRADED

    def test_degraded_recovers_after_sustained_good(self):
        m = PathHealthMachine("A", TH)
        feed(m, 0.0, [50.0] * 5)
        feed(m, 0.5, [0.0] * 2)  # -> DEGRADED
        assert m.state is PathHealth.DEGRADED
        _, transitions = feed(m, 0.7, [50.0] * 3)
        assert transitions[-1].new is PathHealth.HEALTHY


class TestFailedAndRecovery:
    def fail(self, m, t0=0.0):
        t, _ = feed(m, t0, [50.0] * 5)
        t, _ = feed(m, t, [0.0] * 6)
        assert m.state is PathHealth.FAILED
        return t

    def test_backoff_gates_probing(self):
        m = PathHealthMachine("A", TH)
        t = self.fail(m)
        # Inside the gate: even perfect bandwidth changes nothing.
        transitions = m.update(t, 50.0)
        assert transitions == []
        assert m.state is PathHealth.FAILED

    def test_probe_confirmed_recovery(self):
        m = PathHealthMachine("A", TH)
        t = self.fail(m)
        t += TH.backoff_base + 0.01
        _, transitions = feed(m, t, [50.0] * 2)
        states = [tr.new for tr in transitions]
        assert states == [PathHealth.RECOVERING, PathHealth.HEALTHY]
        assert not m.quarantined

    def test_failed_probe_doubles_the_gate(self):
        m = PathHealthMachine("A", TH)
        t = self.fail(m)
        t += TH.backoff_base + 0.01
        _, transitions = feed(m, t, [0.0])
        assert [tr.new for tr in transitions] == [
            PathHealth.RECOVERING,
            PathHealth.FAILED,
        ]
        # Second gate is doubled: base * 2.
        assert m.blocked_until == pytest.approx(t + 2 * TH.backoff_base)

    def test_recovery_resets_backoff(self):
        m = PathHealthMachine("A", TH)
        t = self.fail(m)
        t += TH.backoff_base + 0.01
        t, _ = feed(m, t, [50.0] * 2)  # recovered
        t, _ = feed(m, t, [50.0] * 5)
        t2 = self.fail(m, t)  # fail again
        # Gate is back at the base delay, not the doubled one.
        assert m.blocked_until <= t2 + TH.backoff_base + 1e-9

    def test_ks_shift_during_probation_stalls_but_does_not_refail(self):
        m = PathHealthMachine("A", TH)
        t = self.fail(m)
        t += TH.backoff_base + 0.01
        m.update(t, 50.0)  # -> RECOVERING
        transitions = m.update(t + 0.1, 50.0, ks_shift=True)
        assert transitions == []
        assert m.state is PathHealth.RECOVERING


class TestTracker:
    def test_needs_at_least_one_path(self):
        with pytest.raises(ConfigurationError):
            HealthTracker([])

    def test_quarantine_set_tracks_machines(self):
        tracker = HealthTracker(["A", "B"], TH)
        for i in range(5):
            tracker.update(i * 0.1, {"A": 50.0, "B": 30.0})
        for i in range(5, 11):
            tracker.update(i * 0.1, {"A": 0.0, "B": 30.0})
        assert tracker.quarantined() == frozenset({"A"})
        assert tracker.usable() == ["B"]
        assert not tracker.all_healthy()

    def test_transition_log_is_time_ordered(self):
        tracker = HealthTracker(["A", "B"], TH)
        for i in range(5):
            tracker.update(i * 0.1, {"A": 50.0, "B": 30.0})
        for i in range(5, 12):
            tracker.update(i * 0.1, {"A": 0.0, "B": 0.0})
        times = [tr.time for tr in tracker.transitions]
        assert times == sorted(times)
        assert len(tracker.transitions_for({"A"})) > 0


class TestThresholdValidation:
    def test_rejects_bad_ratios(self):
        with pytest.raises(ConfigurationError):
            HealthThresholds(degraded_ratio=0.2, failed_ratio=0.5)

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ConfigurationError):
            HealthThresholds(degrade_after=0)
