"""Graceful-degradation planner: shed elastic first, downgrade, never drop."""

import numpy as np
import pytest

from repro.core.spec import StreamSpec
from repro.errors import ConfigurationError
from repro.monitoring.cdf import EmpiricalCDF
from repro.robustness.degradation import (
    DegradationLevel,
    plan_degradation,
)


def cdf(mean, std=2.0, n=2000, seed=0):
    rng = np.random.default_rng(seed)
    return EmpiricalCDF(np.clip(mean + std * rng.standard_normal(n), 0, None))


@pytest.fixture
def streams():
    return [
        StreamSpec(name="g1", required_mbps=10.0, probability=0.95),
        StreamSpec(name="g2", required_mbps=8.0, probability=0.9),
        StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
    ]


class TestNormal:
    def test_feasible_and_no_quarantine_serves_everything(self, streams):
        plan = plan_degradation(streams, {"A": cdf(60.0)}, tw=1.0)
        assert plan.level is DegradationLevel.NORMAL
        assert {s.name for s in plan.serve} == {"g1", "g2", "bulk"}
        assert plan.shed == ()
        assert not plan.downgraded

    def test_requires_a_usable_path(self, streams):
        with pytest.raises(ConfigurationError):
            plan_degradation(streams, {}, tw=1.0)


class TestShedElastic:
    def test_quarantine_sheds_elastic_even_if_feasible(self, streams):
        plan = plan_degradation(
            streams, {"A": cdf(60.0)}, tw=1.0, quarantine_active=True
        )
        assert plan.level is DegradationLevel.SHED_ELASTIC
        assert plan.shed == ("bulk",)
        assert {s.name for s in plan.serve} == {"g1", "g2"}
        # Guarantees are untouched on this rung.
        assert not plan.downgraded

    def test_elastic_stream_is_paused_not_dropped(self, streams):
        plan = plan_degradation(
            streams, {"A": cdf(60.0)}, tw=1.0, quarantine_active=True
        )
        assert plan.spec_for("bulk") is None
        assert "bulk" in plan.shed


class TestDowngrade:
    def test_infeasible_set_downgrades_before_dropping(self, streams):
        # 12 Mbps path cannot hold 18 Mbps of guarantees.
        plan = plan_degradation(
            streams, {"A": cdf(12.0, std=1.0)}, tw=1.0,
            quarantine_active=True,
        )
        assert plan.level is DegradationLevel.DOWNGRADED
        # Every guaranteed stream is still served somehow.
        assert {s.name for s in plan.serve} == {"g1", "g2"}
        # Only rejected streams are touched — but at least one must be.
        assert plan.downgraded
        originals = {s.name: s for s in streams}
        for name in plan.downgraded:
            served = plan.spec_for(name)
            assert served is not None
            original_p = originals[name].probability
            assert served.probability is None or (
                served.probability < original_p
            )

    def test_downgraded_probabilities_reported(self, streams):
        plan = plan_degradation(
            streams, {"A": cdf(12.0, std=1.0)}, tw=1.0,
            quarantine_active=True,
        )
        for name, new_p in plan.downgraded.items():
            served = plan.spec_for(name)
            assert served is not None
            if new_p is None:
                # Guarantee stripped: stream rides as elastic best-effort.
                assert served.elastic
                assert served.probability is None
            else:
                assert served.probability == pytest.approx(new_p)

    def test_hopeless_overlay_strips_to_best_effort_but_serves(self, streams):
        # A nearly-dead path: nothing is admittable at any probability.
        plan = plan_degradation(
            streams, {"A": cdf(0.5, std=0.2)}, tw=1.0,
            quarantine_active=True,
        )
        assert plan.level is DegradationLevel.DOWNGRADED
        # Never drop: both guaranteed streams still appear in the plan.
        assert {s.name for s in plan.serve} == {"g1", "g2"}
        for spec in plan.serve:
            assert spec.probability is None or spec.probability > 0

    def test_notes_trace_every_decision(self, streams):
        plan = plan_degradation(
            streams, {"A": cdf(12.0, std=1.0)}, tw=1.0,
            quarantine_active=True,
        )
        assert plan.notes
        assert any("shed elastic" in n for n in plan.notes)
