"""The advertised public API: imports, __all__ hygiene, version."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.traces",
    "repro.network",
    "repro.transport",
    "repro.monitoring",
    "repro.core",
    "repro.baselines",
    "repro.apps",
    "repro.middleware",
    "repro.overlay",
    "repro.harness",
    "repro.workload",
    "repro.topo",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists {name!r}"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_convenience_exports():
    import repro

    # The README quickstart's names are importable from the root.
    assert repro.StreamSpec is not None
    assert repro.PGOSScheduler is not None
    assert repro.EmpiricalCDF is not None
    assert callable(repro.probabilistic_guarantee)
    assert callable(repro.violation_bound)


def test_every_public_module_has_docstring():
    import pkgutil

    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} lacks a module docstring"
