"""Theorem 1, empirically.

"If there is a feasible schedule for PGOS to deliver streams S_i over
paths P_j during scheduling window (t, t + tw) with bandwidth guarantees,
then stream S_i's window constraint will be met with probability P_i."

We check the statement end to end: admit the workload (so a feasible
schedule exists by construction), run PGOS, and measure the fraction of
scheduling windows in which each guaranteed stream's ``x_i`` packets were
serviced.  That fraction must be at least ``P_i`` (within Monte-Carlo
tolerance) for every guaranteed stream, across seeds.
"""

import pytest

from repro.apps.smartpointer import run_smartpointer, smartpointer_streams
from repro.core.admission import AdmissionController
from repro.harness.metrics import window_constraint_satisfaction
from repro.monitoring.cdf import EmpiricalCDF
from repro.network.emulab import make_figure8_testbed

TW = 1.0


@pytest.mark.parametrize("seed", (7, 71, 717))
class TestTheorem1:
    def test_window_constraints_met_with_probability_p(self, seed):
        # Establish feasibility first (Theorem 1's premise).
        testbed = make_figure8_testbed()
        probe = testbed.realize(seed=seed, duration=30.0, dt=0.1)
        cdfs = {
            p: EmpiricalCDF(probe.available[p].available_mbps)
            for p in probe.path_names()
        }
        decision = AdmissionController(tw=TW).try_admit(
            smartpointer_streams(), cdfs
        )
        assert decision.admitted, "premise violated: workload infeasible"

        result = run_smartpointer(
            "PGOS", seed=seed, duration=120.0, warmup_intervals=300
        )
        for spec in smartpointer_streams():
            if not spec.guaranteed:
                continue
            satisfaction = window_constraint_satisfaction(
                result.stream_series(spec.name),
                dt=result.dt,
                tw=TW,
                x_packets=spec.packets_in_window(TW),
                packet_size=spec.packet_size,
            )
            # Monte-Carlo slack: ~90 windows per run.
            assert satisfaction >= spec.probability - 0.03, (
                spec.name,
                satisfaction,
            )

    def test_non_pgos_baselines_do_not_satisfy_theorem(self, seed):
        """The theorem is about PGOS: MSFQ's windows miss far more often."""
        result = run_smartpointer(
            "MSFQ", seed=seed, duration=120.0, warmup_intervals=300
        )
        bond1 = next(
            s for s in smartpointer_streams() if s.name == "Bond1"
        )
        satisfaction = window_constraint_satisfaction(
            result.stream_series("Bond1"),
            dt=result.dt,
            tw=TW,
            x_packets=bond1.packets_in_window(TW),
            packet_size=bond1.packet_size,
        )
        assert satisfaction < bond1.probability
