"""Fault injection and PGOS recovery via the KS remap trigger."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.apps.smartpointer import BOND1_MBPS, smartpointer_streams
from repro.core.pgos import PGOSScheduler
from repro.harness.experiment import run_schedule_experiment
from repro.harness.metrics import fraction_of_time_at_least
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import PathFault, inject_faults


@pytest.fixture(scope="module")
def realization():
    testbed = make_figure8_testbed()
    return testbed.realize(seed=41, duration=150.0, dt=0.1)


@pytest.fixture(scope="module")
def realization_with_backup():
    """Path B light enough to host the critical streams after a failover.

    (On the default testbed path B cannot guarantee Bond1 at 95 %, so a
    post-fault remap would rightly be refused — recovery needs a viable
    backup path.)
    """
    testbed = make_figure8_testbed(
        profile_a="abilene-moderate", profile_b="light"
    )
    return testbed.realize(seed=41, duration=150.0, dt=0.1)


class TestInjection:
    def test_outage_zeroes_availability(self, realization):
        faulted = inject_faults(
            realization, [PathFault(path="A", start=10.0, end=20.0)]
        )
        bw = faulted.available["A"].available_mbps
        assert np.all(bw[100:200] == 0.0)
        assert np.all(bw[:100] > 0.0)

    def test_partial_degradation(self, realization):
        faulted = inject_faults(
            realization,
            [PathFault(path="A", start=0.0, end=5.0, severity=0.5)],
        )
        original = realization.available["A"].available_mbps[:50]
        degraded = faulted.available["A"].available_mbps[:50]
        assert np.allclose(degraded, original * 0.5)

    def test_extra_loss_applied(self, realization):
        faulted = inject_faults(
            realization,
            [
                PathFault(
                    path="B", start=0.0, end=5.0, severity=0.1, extra_loss=0.2
                )
            ],
        )
        assert np.all(faulted.qos["B"].loss_rate[:50] >= 0.2)

    def test_original_untouched(self, realization):
        before = realization.available["A"].available_mbps.copy()
        inject_faults(realization, [PathFault(path="A", start=0.0, end=5.0)])
        assert np.array_equal(
            realization.available["A"].available_mbps, before
        )

    def test_unknown_path_rejected(self, realization):
        with pytest.raises(ConfigurationError, match="unknown path"):
            inject_faults(
                realization, [PathFault(path="Z", start=0.0, end=1.0)]
            )

    def test_out_of_range_window_rejected(self, realization):
        with pytest.raises(ConfigurationError, match="outside"):
            inject_faults(
                realization, [PathFault(path="A", start=500.0, end=600.0)]
            )

    def test_fault_validation(self):
        with pytest.raises(ConfigurationError):
            PathFault(path="A", start=5.0, end=5.0)
        with pytest.raises(ConfigurationError):
            PathFault(path="A", start=0.0, end=1.0, severity=0.0)
        with pytest.raises(ConfigurationError):
            PathFault(path="A", start=0.0, end=1.0, extra_loss=2.0)


class TestRecovery:
    def test_pgos_remaps_off_degraded_path(self, realization_with_backup):
        # Degrade path A (the critical streams' home) heavily for the
        # second half of the run: PGOS must detect the CDF shift and move
        # Bond1's guarantee to path B.
        faulted = inject_faults(
            realization_with_backup,
            [PathFault(path="A", start=75.0, end=150.0, severity=0.75)],
        )
        scheduler = PGOSScheduler(ks_threshold=0.15)
        result = run_schedule_experiment(
            scheduler,
            faulted,
            smartpointer_streams(),
            warmup_intervals=300,
        )
        assert scheduler.remap_count >= 2  # initial + at least one recovery
        bond1 = result.stream_series("Bond1")
        # After the fault there is a detection lag, then the guarantee is
        # re-established: the last 30 s must be back at target.
        tail = bond1[-300:]
        assert fraction_of_time_at_least(tail, BOND1_MBPS * 0.999) > 0.9

    def test_frozen_mapping_survives_via_overflow(
        self, realization_with_backup
    ):
        # Even with the remap trigger disabled (KS threshold 1.0), PGOS's
        # rule-2 overflow spills the critical stream's shortfall to the
        # healthy path — the precedence table provides resilience on its
        # own.  (The remap restores the *guarantee semantics*; overflow
        # restores the throughput.)
        faulted = inject_faults(
            realization_with_backup,
            [PathFault(path="A", start=75.0, end=150.0, severity=0.75)],
        )
        frozen = PGOSScheduler(ks_threshold=1.0)
        result = run_schedule_experiment(
            frozen, faulted, smartpointer_streams(), warmup_intervals=300
        )
        assert frozen.remap_count == 1  # only the initial mapping
        tail = result.stream_series("Bond1")[-300:]
        assert fraction_of_time_at_least(tail, BOND1_MBPS * 0.999) > 0.9

    def test_static_single_path_does_not_recover(
        self, realization_with_backup
    ):
        # The true static counterfactual: a single-path deployment pinned
        # to the failed path (non-overlay WFQ) stays degraded for the
        # whole fault, while adaptive PGOS restores the guarantee.
        from repro.baselines.wfq import WFQScheduler

        faulted = inject_faults(
            realization_with_backup,
            [PathFault(path="A", start=75.0, end=150.0, severity=0.75)],
        )
        wfq_result = run_schedule_experiment(
            WFQScheduler(path="A"),
            faulted,
            smartpointer_streams(),
            warmup_intervals=300,
        )
        pgos_result = run_schedule_experiment(
            PGOSScheduler(ks_threshold=0.15),
            faulted,
            smartpointer_streams(),
            warmup_intervals=300,
        )
        tail_wfq = wfq_result.stream_series("Bond1")[-300:]
        tail_pgos = pgos_result.stream_series("Bond1")[-300:]
        assert fraction_of_time_at_least(tail_wfq, BOND1_MBPS * 0.999) < 0.2
        assert fraction_of_time_at_least(tail_pgos, BOND1_MBPS * 0.999) > 0.9
