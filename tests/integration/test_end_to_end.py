"""End-to-end shape claims across modules (the paper's headline results)."""

import numpy as np
import pytest

from repro.apps.smartpointer import (
    ATOM_MBPS,
    BOND1_MBPS,
    run_smartpointer,
    smartpointer_streams,
)
from repro.core.admission import AdmissionController
from repro.harness.metrics import bandwidth_at_time_fraction
from repro.monitoring.cdf import EmpiricalCDF
from repro.network.emulab import make_figure8_testbed

DURATION = 80.0
WARMUP = 250


@pytest.fixture(scope="module")
def runs():
    return {
        alg: run_smartpointer(
            alg, seed=13, duration=DURATION, warmup_intervals=WARMUP
        )
        for alg in ("WFQ", "MSFQ", "PGOS", "OptSched")
    }


class TestHeadlineClaims:
    def test_pgos_guarantees_critical_streams(self, runs):
        pgos = runs["PGOS"]
        for stream, target in (("Atom", ATOM_MBPS), ("Bond1", BOND1_MBPS)):
            p95 = bandwidth_at_time_fraction(pgos.stream_series(stream), 0.95)
            assert p95 >= target * 0.995, stream

    def test_wfq_cannot_guarantee(self, runs):
        wfq = runs["WFQ"]
        p95 = bandwidth_at_time_fraction(wfq.stream_series("Bond1"), 0.95)
        assert p95 < BOND1_MBPS * 0.95

    def test_msfq_fluctuates(self, runs):
        msfq = runs["MSFQ"]
        p95 = bandwidth_at_time_fraction(msfq.stream_series("Bond1"), 0.95)
        assert p95 < BOND1_MBPS * 0.95
        assert msfq.stream_series("Bond1").std() > 3 * runs[
            "PGOS"
        ].stream_series("Bond1").std()

    def test_pgos_tracks_oracle(self, runs):
        pgos_b1 = runs["PGOS"].stream_series("Bond1")
        opt_b1 = runs["OptSched"].stream_series("Bond1")
        assert pgos_b1.mean() == pytest.approx(opt_b1.mean(), rel=0.02)

    def test_noncritical_not_compromised(self, runs):
        bond2_pgos = runs["PGOS"].stream_series("Bond2").mean()
        bond2_msfq = runs["MSFQ"].stream_series("Bond2").mean()
        assert bond2_pgos == pytest.approx(bond2_msfq, rel=0.05)

    def test_full_bandwidth_utilization(self, runs):
        # "providing guarantees does not imply sacrificing bandwidth":
        # PGOS's aggregate throughput matches MSFQ's work-conserving total.
        total_pgos = runs["PGOS"].total_series().mean()
        total_msfq = runs["MSFQ"].total_series().mean()
        assert total_pgos >= total_msfq * 0.97

    def test_deterministic_reproduction(self):
        a = run_smartpointer("PGOS", seed=21, duration=40.0, warmup_intervals=100)
        b = run_smartpointer("PGOS", seed=21, duration=40.0, warmup_intervals=100)
        for stream in ("Atom", "Bond1", "Bond2"):
            assert np.array_equal(
                a.stream_series(stream), b.stream_series(stream)
            )


class TestMonitoringToAdmissionPipeline:
    def test_testbed_monitoring_admits_paper_workload(self):
        # Monitor the realized paths, then admit the SmartPointer streams
        # against the monitored CDFs — the full paper pipeline minus the
        # scheduler.
        testbed = make_figure8_testbed()
        realization = testbed.realize(seed=31, duration=60.0, dt=0.1)
        cdfs = {
            p: EmpiricalCDF(realization.available[p].available_mbps)
            for p in realization.path_names()
        }
        decision = AdmissionController(tw=1.0).try_admit(
            smartpointer_streams(), cdfs
        )
        assert decision.admitted
        mapping = decision.mapping
        # Both critical streams ride the stable path A, unsplit.
        assert mapping.paths_of("Atom") == ["A"]
        assert mapping.paths_of("Bond1") == ["A"]
        assert not mapping.is_split("Bond1")

    def test_overloaded_workload_rejected_with_hint(self):
        testbed = make_figure8_testbed()
        realization = testbed.realize(seed=31, duration=60.0, dt=0.1)
        cdfs = {
            p: EmpiricalCDF(realization.available[p].available_mbps)
            for p in realization.path_names()
        }
        from repro.core.spec import StreamSpec

        greedy = [
            StreamSpec(name="monster", required_mbps=150.0, probability=0.95)
        ]
        decision = AdmissionController(tw=1.0).try_admit(greedy, cdfs)
        assert not decision.admitted
        assert decision.rejected_stream == "monster"
