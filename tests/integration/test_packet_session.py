"""The packet-level session agrees with the fluid driver's guarantees."""

import pytest

from repro.errors import ConfigurationError
from repro.apps.smartpointer import smartpointer_streams
from repro.core.pgos import PGOSScheduler
from repro.core.spec import StreamSpec
from repro.network.emulab import make_figure8_testbed
from repro.transport.session import run_packet_session


@pytest.fixture(scope="module")
def session_result():
    testbed = make_figure8_testbed()
    realization = testbed.realize(seed=17, duration=120.0, dt=0.1)
    return run_packet_session(
        realization,
        smartpointer_streams(),
        warmup_windows=30,
    )


class TestPacketSession:
    def test_guarantees_hold_at_packet_level(self, session_result):
        streams = {s.name: s for s in smartpointer_streams()}
        assert session_result.attainment(streams["Atom"]) >= 0.93
        assert session_result.attainment(streams["Bond1"]) >= 0.93

    def test_critical_stream_throughput(self, session_result):
        streams = {s.name: s for s in smartpointer_streams()}
        bond1 = session_result.throughput_mbps("Bond1", 1500)
        assert bond1.mean() == pytest.approx(22.148, rel=0.03)

    def test_elastic_uses_both_paths(self, session_result):
        sent = session_result.sent["Bond2"]
        assert sum(sent["A"]) > 0
        assert sum(sent["B"]) > 0

    def test_elastic_fills_leftover(self, session_result):
        bond2 = session_result.throughput_mbps("Bond2", 1500)
        # Mean leftover on the testbed is ~60 Mbps; at packet granularity
        # with per-window budgets the elastic stream captures most of it.
        assert bond2.mean() > 40.0

    def test_low_miss_rate_for_critical(self, session_result):
        streams = {s.name: s for s in smartpointer_streams()}
        total_pkts = streams["Bond1"].packets_in_window(1.0) * (
            session_result.n_windows
        )
        misses = session_result.deadline_misses["Bond1"]
        assert misses / total_pkts < 0.05

    def test_remaps_are_rare(self, session_result):
        assert 1 <= session_result.remap_count <= 10

    def test_tw_must_divide_dt(self):
        testbed = make_figure8_testbed()
        realization = testbed.realize(seed=17, duration=20.0, dt=0.3)
        with pytest.raises(ConfigurationError):
            run_packet_session(
                realization, smartpointer_streams(), tw=1.0, warmup_windows=2
            )

    def test_warmup_bound(self):
        testbed = make_figure8_testbed()
        realization = testbed.realize(seed=17, duration=10.0, dt=0.1)
        with pytest.raises(ConfigurationError):
            run_packet_session(
                realization, smartpointer_streams(), warmup_windows=50
            )

    def test_unknown_stream_throughput_rejected(self, session_result):
        with pytest.raises(ConfigurationError):
            session_result.throughput_mbps("ghost", 1500)

    def test_attainment_needs_requirement(self, session_result):
        bulk = StreamSpec(name="Bond2", elastic=True, nominal_mbps=40.0)
        with pytest.raises(ConfigurationError):
            session_result.attainment(bulk)


class TestGridFTPPacketSession:
    """Packet-level cross-check of the Section-6.2 workload."""

    def test_iqpg_guarantees_hold_packetwise(self):
        from repro.apps.gridftp import gridftp_streams

        testbed = make_figure8_testbed(profile_a="light", profile_b="light")
        realization = testbed.realize(seed=29, duration=90.0, dt=0.1)
        result = run_packet_session(
            realization, gridftp_streams(), warmup_windows=25
        )
        streams = {s.name: s for s in gridftp_streams()}
        assert result.attainment(streams["DT1"]) >= 0.93
        assert result.attainment(streams["DT2"]) >= 0.93
        dt3 = result.throughput_mbps("DT3", 1500)
        assert dt3.mean() > 40.0  # the elastic component really flows
