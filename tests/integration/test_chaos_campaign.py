"""Chaos campaigns: detection, remap, recovery, and degradation ordering."""

import numpy as np
import pytest

from repro.apps.smartpointer import smartpointer_streams
from repro.harness.chaos import run_chaos_campaign, run_chaos_suite
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import FaultCampaign, correlated_outage
from repro.robustness.health import PathHealth
from repro.transport.session import run_packet_session


@pytest.fixture(scope="module")
def realization():
    """Figure-8 testbed with path B light enough to host a failover."""
    testbed = make_figure8_testbed(
        profile_a="abilene-moderate", profile_b="light"
    )
    return testbed.realize(seed=41, duration=220.0, dt=0.1)


@pytest.fixture(scope="module")
def outage_campaign():
    """A full outage on path A (the best path) mid-session."""
    return FaultCampaign(
        faults=tuple(correlated_outage(["A"], start=30.0, duration=15.0)),
        name="outage-A",
    )


@pytest.fixture(scope="module")
def outage_report(realization, outage_campaign):
    return run_chaos_campaign(
        realization, smartpointer_streams(), outage_campaign, duration=120.0
    )


class TestOutageOnBestPath:
    def test_detected_within_bounded_window(self, outage_report):
        # Default thresholds: 3 degrade + 3 + 3 fail windows at dt=0.1 s
        # puts the first transition well under two seconds after onset.
        assert outage_report.detected
        assert 0.0 <= outage_report.time_to_detect <= 2.0

    def test_recovered_within_backoff_bound(self, outage_report):
        # Recovery waits out the exponential backoff gate plus the probe
        # confirmation, so it is bounded by the backoff cap.
        assert outage_report.recovered
        assert outage_report.time_to_recover <= 30.0 + 1.0

    def test_remap_moved_guaranteed_streams(self, outage_report):
        assert outage_report.remap_count >= 2  # away and (maybe) back
        # Guaranteed streams kept flowing: the violation window is a
        # fraction of the 15 s outage, not the whole of it.
        for name in ("Atom", "Bond1"):
            assert outage_report.violation_seconds[name] <= 15.0

    def test_guaranteed_attainment_beats_elastic_during_fault(
        self, realization, outage_campaign, outage_report
    ):
        # During the outage the elastic stream is shed (recovery
        # isolation) while the guaranteed streams ride the backup path:
        # guaranteed attainment must not be the thing sacrificed.
        transitions = [str(e) for e in outage_report.events]
        assert any("shed elastic" in e for e in transitions)
        for name in ("Atom", "Bond1"):
            attainment = outage_report.attainment[name]
            assert attainment is not None and attainment >= 0.85

    def test_quarantined_path_reenters_through_probation(self, outage_report):
        # The failed path must pass through RECOVERING (probe-confirmed)
        # before serving again — never FAILED -> HEALTHY directly.
        a_transitions = [
            t for t in outage_report.transitions if t.path == "A"
        ]
        for prev, nxt in zip(a_transitions, a_transitions[1:]):
            if nxt.new is PathHealth.HEALTHY:
                assert prev.new is not PathHealth.FAILED
                assert nxt.old in (
                    PathHealth.RECOVERING, PathHealth.DEGRADED
                )


class TestDeterminism:
    def test_same_seed_same_report(self, realization):
        reports = [
            run_chaos_campaign(
                realization,
                smartpointer_streams(),
                FaultCampaign.random(["A", "B"], duration=80.0, seed=7),
            )
            for _ in range(2)
        ]
        assert reports[0].time_to_detect == reports[1].time_to_detect
        assert reports[0].time_to_recover == reports[1].time_to_recover
        assert reports[0].violation_seconds == reports[1].violation_seconds
        assert (
            reports[0].packets_lost_during_remap
            == reports[1].packets_lost_during_remap
        )
        assert reports[0].remap_count == reports[1].remap_count

    def test_report_is_finite(self, realization):
        campaign = FaultCampaign.random(["A", "B"], duration=80.0, seed=7)
        report = run_chaos_campaign(
            realization, smartpointer_streams(), campaign
        )
        assert report.detected and report.recovered
        assert np.isfinite(report.time_to_detect)
        assert np.isfinite(report.time_to_recover)


class TestPacketSessionQuarantine:
    def test_no_guaranteed_packets_on_quarantined_path(self, realization):
        campaign = FaultCampaign(
            faults=tuple(
                correlated_outage(["A"], start=40.0, duration=20.0)
            ),
            name="outage-A",
        )
        streams = smartpointer_streams()
        result = run_packet_session(
            realization, streams, tw=1.0, warmup_windows=30,
            campaign=campaign,
        )
        quarantined_windows = result.quarantine_series["A"]
        assert any(quarantined_windows)  # the outage was quarantined
        for spec in streams:
            if not spec.guaranteed:
                continue
            on_a = result.sent[spec.name]["A"]
            assert all(
                sent == 0
                for sent, quarantined in zip(on_a, quarantined_windows)
                if quarantined
            )

    def test_attainment_survives_the_outage(self, realization):
        campaign = FaultCampaign(
            faults=tuple(
                correlated_outage(["A"], start=40.0, duration=20.0)
            ),
        )
        streams = smartpointer_streams()
        result = run_packet_session(
            realization, streams, tw=1.0, warmup_windows=30,
            campaign=campaign,
        )
        for spec in streams:
            if spec.guaranteed:
                assert result.attainment(spec) >= 0.9


@pytest.mark.chaos
class TestChaosSweep:
    """Multi-seed sweep; excluded from tier-1 (run with -m chaos)."""

    def test_every_seed_detects_and_recovers(self, realization):
        campaigns = [
            FaultCampaign.random(["A", "B"], duration=80.0, seed=seed)
            for seed in range(5)
        ]
        reports = run_chaos_suite(
            realization, smartpointer_streams(), campaigns
        )
        for report in reports:
            assert report.detected, report.campaign
            assert report.recovered, report.campaign
            for name in ("Atom", "Bond1"):
                assert report.violation_seconds[name] < 40.0
