"""The headline conclusions hold across seeds, not just the canonical one.

A reproduction's conclusions are only as good as their robustness to the
random realization; these tests re-check the figure claims' *orderings*
(never the absolute numbers) on several fresh seeds.
"""

import pytest

from repro.apps.gridftp import run_gridftp
from repro.apps.smartpointer import ATOM_MBPS, BOND1_MBPS, run_smartpointer
from repro.harness.metrics import bandwidth_at_time_fraction

SEEDS = (101, 202, 303)
KW = dict(duration=70.0, warmup_intervals=200)


@pytest.mark.parametrize("seed", SEEDS)
class TestSmartPointerAcrossSeeds:
    def test_pgos_guarantee_and_stability(self, seed):
        pgos = run_smartpointer("PGOS", seed=seed, **KW)
        msfq = run_smartpointer("MSFQ", seed=seed, **KW)
        pgos_b1 = pgos.stream_series("Bond1")
        msfq_b1 = msfq.stream_series("Bond1")
        # Guarantee: >= 99% of required bandwidth 95% of the time.
        assert bandwidth_at_time_fraction(pgos_b1, 0.95) >= BOND1_MBPS * 0.99
        # Stability ordering vs MSFQ.
        assert pgos_b1.std() < msfq_b1.std()
        # Non-critical throughput preserved.
        assert pgos.stream_series("Bond2").mean() == pytest.approx(
            msfq.stream_series("Bond2").mean(), rel=0.05
        )

    def test_atom_guarantee(self, seed):
        pgos = run_smartpointer("PGOS", seed=seed, **KW)
        atom = pgos.stream_series("Atom")
        assert bandwidth_at_time_fraction(atom, 0.95) >= ATOM_MBPS * 0.99


@pytest.mark.parametrize("seed", SEEDS)
class TestGridFTPAcrossSeeds:
    def test_iqpg_guarantee_ordering(self, seed):
        from repro.apps.gridftp import DT1_MBPS
        from repro.harness.metrics import downside_deviation

        iqpg = run_gridftp("IQPG", seed=seed, **KW)
        gftp = run_gridftp("GridFTP", seed=seed, **KW)
        iqpg_dt1 = iqpg.stream_series("DT1")
        gftp_dt1 = gftp.stream_series("DT1")
        # IQPG holds the guarantee level; GridFTP sits below it.
        assert bandwidth_at_time_fraction(iqpg_dt1, 0.95) >= DT1_MBPS * 0.99
        assert bandwidth_at_time_fraction(
            iqpg_dt1, 0.95
        ) > bandwidth_at_time_fraction(gftp_dt1, 0.95)
        # Stability below the target (catch-up spikes above it are free).
        assert downside_deviation(iqpg_dt1, DT1_MBPS) < downside_deviation(
            gftp_dt1, DT1_MBPS
        )
        # IQPG pins DT1 at its target on average.
        assert iqpg_dt1.mean() == pytest.approx(34.56, rel=0.01)
