"""Isolating recovery/replication traffic (the paper's future work).

"An interesting use of IQ-Paths is to differentiate data traffic required
for replication from other traffic ... to isolate the effects of fault
tolerance or recovery traffic from regular data traffic, perhaps to avoid
the additional disturbances arising during recovery."

Scenario: a steady critical stream runs; at some point a heavy *recovery*
transfer (replica re-synchronization) joins for a while.  Under PGOS the
recovery stream is opened best-effort, so the critical stream's guarantee
is undisturbed; under fair queuing the recovery burst squeezes everyone.
"""

import numpy as np
import pytest

from repro.baselines.msfq import MSFQScheduler
from repro.core.spec import StreamSpec
from repro.harness.metrics import fraction_of_time_at_least
from repro.middleware.service import IQPathsService
from repro.network.emulab import make_figure8_testbed

CRITICAL_MBPS = 22.0
RECOVERY_NOMINAL = 60.0


@pytest.fixture(scope="module")
def realization():
    testbed = make_figure8_testbed()
    return testbed.realize(seed=53, duration=120.0, dt=0.1)


def critical_spec():
    return StreamSpec(
        name="data", required_mbps=CRITICAL_MBPS, probability=0.95
    )


def recovery_spec():
    return StreamSpec(
        name="recovery", elastic=True, nominal_mbps=RECOVERY_NOMINAL
    )


class TestRecoveryIsolation:
    def test_pgos_isolates_recovery_burst(self, realization):
        service = IQPathsService(realization, warmup_intervals=200)
        service.open_stream(critical_spec())
        service.at(30.0, lambda: service.open_stream(recovery_spec()))
        service.at(70.0, lambda: service.close_stream("recovery"))
        service.advance(100.0)

        data = service.report("data")
        # The guarantee holds across the whole run, burst included.
        assert data.attainment >= 0.95
        # During the burst specifically:
        burst = data.mbps[320:680]
        assert fraction_of_time_at_least(
            burst, CRITICAL_MBPS * 0.999
        ) >= 0.93
        # And the recovery transfer actually moved a lot of data.
        assert service.report("recovery").mean_mbps > 30.0

    def test_fair_queuing_lets_recovery_disturb_data(self, realization):
        # The counterfactual: MSFQ weights recovery traffic by its demand,
        # so during the burst the critical stream loses its share.
        from repro.harness.experiment import run_schedule_experiment

        result = run_schedule_experiment(
            MSFQScheduler(),
            realization,
            [critical_spec(), recovery_spec()],
            warmup_intervals=200,
        )
        data = result.stream_series("data")
        assert fraction_of_time_at_least(data, CRITICAL_MBPS * 0.999) < 0.90

    def test_recovery_throughput_comparable(self, realization):
        # Isolation does not starve the recovery traffic: PGOS gives it
        # the leftover, which is most of the overlay's spare capacity.
        service = IQPathsService(realization, warmup_intervals=200)
        service.open_stream(critical_spec())
        service.open_stream(recovery_spec())
        service.advance(60.0)
        recovery = service.report("recovery").mean_mbps
        total_avail = float(
            np.mean(
                sum(
                    realization.available[p].available_mbps[200:800]
                    for p in realization.path_names()
                )
            )
        )
        assert recovery >= (total_avail - CRITICAL_MBPS) * 0.8
