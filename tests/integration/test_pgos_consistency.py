"""Packet fast path vs fluid interval model: the two PGOS faces agree.

The experiment driver uses the fluid (rate-based) rendering of PGOS; the
packet fast path walks V_P/V_S packet by packet.  Over one scheduling
window with ample per-path budgets, the packet counts each sub-stream
sends must equal the mapping's ``Tp_i^j`` exactly; with constrained
budgets, the totals must match the water-filled fluid allocation to
within a packet quantum.
"""

import numpy as np
import pytest

from repro.core.mapping import compute_mapping
from repro.core.pgos import dispatch_window, make_packet_queue
from repro.core.scheduler import PathShareRequest, water_fill
from repro.core.spec import StreamSpec
from repro.monitoring.cdf import EmpiricalCDF
from repro.transport.backoff import ExponentialBackoff
from repro.transport.service import PathService

PKT = 1500
TW = 1.0


@pytest.fixture
def mapping(rng):
    cdfs = {
        "A": EmpiricalCDF(np.clip(50 + 4 * rng.standard_normal(2000), 0, None)),
        "B": EmpiricalCDF(np.clip(30 + 9 * rng.standard_normal(2000), 0, None)),
    }
    specs = [
        StreamSpec(name="crit", required_mbps=20.0, probability=0.95),
        StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
    ]
    return compute_mapping(specs, cdfs, tw=TW)


def services_with_budget(budgets):
    out = {}
    for name, budget in budgets.items():
        svc = PathService(
            name, backoff=ExponentialBackoff(base_delay=10.0, max_delay=10.0)
        )
        svc.begin_interval(0.0, budget)
        out[name] = svc
    return out


class TestConsistency:
    def test_ample_budget_matches_mapping_exactly(self, mapping):
        schedule = mapping.compile(
            stream_order=["crit", "bulk"], path_order=["A", "B"]
        )
        queues = {
            "crit": make_packet_queue(
                "crit", schedule.packets_for("crit"), TW, PKT
            )
        }
        bulk_pkts = sum(mapping.packets["bulk"].values())
        unscheduled = {"bulk": make_packet_queue("bulk", bulk_pkts, TW, PKT)}
        svc = services_with_budget({"A": 1e9, "B": 1e9})
        result = dispatch_window(schedule, svc, queues, unscheduled)
        for stream, shares in schedule.stream_path_packets.items():
            assert result.sent[stream] == shares
        assert result.sent_total("bulk") == bulk_pkts

    def test_constrained_budget_matches_fluid_within_quantum(self, mapping):
        schedule = mapping.compile(
            stream_order=["crit", "bulk"], path_order=["A", "B"]
        )
        # Fluid model: water-fill each path with the mapped rates.
        crit_rate = {p: mapping.rate("crit", p) for p in ("A", "B")}
        bulk_rate = {p: mapping.rate("bulk", p) for p in ("A", "B")}
        capacity = {"A": 30.0, "B": 25.0}  # Mbps, tight
        fluid = {}
        for p in ("A", "B"):
            requests = []
            if crit_rate[p] > 0:
                requests.append(
                    PathShareRequest(
                        stream="crit",
                        demand_mbps=crit_rate[p],
                        weight=crit_rate[p],
                        level=0,
                    )
                )
            if bulk_rate[p] > 0:
                requests.append(
                    PathShareRequest(
                        stream="bulk",
                        demand_mbps=bulk_rate[p],
                        weight=bulk_rate[p],
                        level=2,
                    )
                )
            fluid[p] = water_fill(requests, capacity[p])

        # Packet model: same budgets in bytes per window.
        bulk_plan = sum(mapping.packets["bulk"].values())
        queues = {
            "crit": make_packet_queue(
                "crit", schedule.packets_for("crit"), TW, PKT
            )
        }
        unscheduled = {"bulk": make_packet_queue("bulk", bulk_plan, TW, PKT)}
        budgets = {
            p: capacity[p] * 1e6 / 8.0 * TW for p in ("A", "B")
        }
        svc = services_with_budget(budgets)
        result = dispatch_window(schedule, svc, queues, unscheduled)

        # Compare per-stream totals (packets can cross paths via rule 2,
        # so per-path shares may legitimately differ).
        plans = {"crit": schedule.packets_for("crit"), "bulk": bulk_plan}
        for stream in ("crit", "bulk"):
            fluid_total_mbps = sum(fluid[p].get(stream, 0.0) for p in ("A", "B"))
            fluid_pkts = fluid_total_mbps * 1e6 / 8.0 * TW / PKT
            sent = result.sent_total(stream)
            assert sent <= plans[stream]
            assert sent == pytest.approx(
                min(fluid_pkts, plans[stream]), abs=max(3, 0.03 * plans[stream])
            ), stream

    def test_critical_survives_elastic_pressure(self, mapping):
        # Even with the elastic stream holding far more queued packets,
        # the critical stream's scheduled quota goes out first.
        schedule = mapping.compile(
            stream_order=["crit", "bulk"], path_order=["A", "B"]
        )
        crit_pkts = schedule.packets_for("crit")
        queues = {"crit": make_packet_queue("crit", crit_pkts, TW, PKT)}
        unscheduled = {"bulk": make_packet_queue("bulk", 10_000, TW, PKT)}
        # Budget: just enough for crit plus a little.
        crit_path = mapping.paths_of("crit")[0]
        budgets = {p: 0.0 for p in ("A", "B")}
        budgets[crit_path] = (crit_pkts + 10) * PKT
        svc = services_with_budget(budgets)
        result = dispatch_window(schedule, svc, queues, unscheduled)
        assert result.sent_total("crit") == crit_pkts
        # The spare 10-packet budget goes to best-effort traffic (rule 3).
        assert result.sent_total("bulk") == 10
