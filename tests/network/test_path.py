"""Overlay paths: validation, composed metrics, bandwidth realization."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.network.crosstraffic import CrossTrafficSource
from repro.network.link import Link
from repro.network.node import Node
from repro.network.path import OverlayPath
from repro.sim.random import RandomStreams


def chain(*capacities, delays=None, losses=None) -> OverlayPath:
    """Build a linear path with the given per-link capacities."""
    nodes = [Node(f"n{i}") for i in range(len(capacities) + 1)]
    delays = delays or [1.0] * len(capacities)
    losses = losses or [0.0] * len(capacities)
    links = [
        Link(
            a=nodes[i],
            b=nodes[i + 1],
            capacity_mbps=c,
            delay_ms=delays[i],
            loss_rate=losses[i],
        )
        for i, c in enumerate(capacities)
    ]
    return OverlayPath(tuple(nodes), tuple(links))


class TestValidation:
    def test_link_count_must_match(self):
        nodes = (Node("a"), Node("b"), Node("c"))
        links = (Link(a=nodes[0], b=nodes[1], capacity_mbps=10.0),)
        with pytest.raises(TopologyError):
            OverlayPath(nodes, links)

    def test_links_must_connect_nodes(self):
        a, b, c = Node("a"), Node("b"), Node("c")
        wrong = Link(a=a, b=c, capacity_mbps=10.0)
        with pytest.raises(TopologyError, match="does not connect"):
            OverlayPath((a, b), (wrong,))

    def test_no_repeated_nodes(self):
        a, b = Node("a"), Node("b")
        l1 = Link(a=a, b=b, capacity_mbps=10.0)
        l2 = Link(a=b, b=a, capacity_mbps=10.0)
        with pytest.raises(TopologyError, match="twice"):
            OverlayPath((a, b, a), (l1, l2))


class TestMetrics:
    def test_capacity_is_bottleneck(self):
        assert chain(100.0, 50.0, 80.0).capacity_mbps == 50.0

    def test_rtt_sums_delays(self):
        path = chain(10.0, 10.0, delays=[3.0, 7.0])
        assert path.rtt_ms == pytest.approx(20.0)

    def test_loss_composes_multiplicatively(self):
        path = chain(10.0, 10.0, losses=[0.1, 0.2])
        assert path.loss_rate == pytest.approx(1 - 0.9 * 0.8)

    def test_endpoints(self):
        path = chain(10.0, 10.0)
        assert path.source.name == "n0"
        assert path.sink.name == "n2"


class TestRealization:
    def test_min_over_links(self):
        path = chain(100.0, 100.0)
        path.links[0].add_cross_traffic(
            CrossTrafficSource(name="x", series=(40.0,))
        )
        path.links[1].add_cross_traffic(
            CrossTrafficSource(name="y", series=(70.0,))
        )
        bw = path.realize_bandwidth(10, 0.1, RandomStreams(1))
        assert np.all(bw.available_mbps == 30.0)

    def test_metadata(self):
        bw = chain(100.0).realize_bandwidth(50, 0.1, RandomStreams(1))
        assert bw.n_intervals == 50
        assert bw.duration == pytest.approx(5.0)
        assert bw.mean() == 100.0
        assert bw.percentile(10) == 100.0

    def test_window_slice(self):
        bw = chain(100.0).realize_bandwidth(50, 0.1, RandomStreams(1))
        assert bw.window(10, 5).shape == (5,)
        assert bw.window(48, 10).shape == (2,)  # clamped at the end

    def test_window_rejects_bad_args(self):
        bw = chain(100.0).realize_bandwidth(10, 0.1, RandomStreams(1))
        with pytest.raises(ValueError):
            bw.window(-1, 5)
        with pytest.raises(ValueError):
            bw.window(0, 0)
