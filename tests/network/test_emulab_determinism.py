"""Satellite 2: TestbedRealization is a pure function of its seed.

The whole reproduction stack leans on `EmulabTestbed.realize` being
byte-deterministic — same seed, same series, to the last ULP — and on
distinct seeds actually decorrelating the cross traffic. Guard both
directions explicitly on the Figure-8 reference testbed.
"""

import numpy as np

from repro.network.emulab import make_figure8_testbed


def _realize(seed):
    return make_figure8_testbed().realize(seed=seed, duration=8.0, dt=0.1)


class TestSeededDeterminism:
    def test_same_seed_byte_identical(self):
        r1, r2 = _realize(seed=42), _realize(seed=42)
        assert sorted(r1.available) == sorted(r2.available)
        for name in r1.available:
            np.testing.assert_array_equal(
                r1.available[name].available_mbps,
                r2.available[name].available_mbps,
            )
            np.testing.assert_array_equal(
                r1.qos[name].rtt_ms, r2.qos[name].rtt_ms
            )
            np.testing.assert_array_equal(
                r1.qos[name].loss_rate, r2.qos[name].loss_rate
            )

    def test_independent_testbed_instances_agree(self):
        # Realization state must live in the seed, not the instance.
        r1 = make_figure8_testbed().realize(seed=7, duration=8.0, dt=0.1)
        r2 = make_figure8_testbed().realize(seed=7, duration=8.0, dt=0.1)
        for name in r1.available:
            np.testing.assert_array_equal(
                r1.available[name].available_mbps,
                r2.available[name].available_mbps,
            )

    def test_different_seeds_differ(self):
        r1, r2 = _realize(seed=1), _realize(seed=2)
        assert any(
            not np.array_equal(
                r1.available[name].available_mbps,
                r2.available[name].available_mbps,
            )
            for name in r1.available
        )
        assert any(
            not np.array_equal(r1.qos[name].rtt_ms, r2.qos[name].rtt_ms)
            for name in r1.qos
        )
