"""Topology graph: construction, lookup, disjoint paths."""

import pytest

from repro.errors import TopologyError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology


def diamond() -> Topology:
    """s -> {a, b} -> t."""
    topo = Topology()
    s, a, b, t = Node("s"), Node("a"), Node("b"), Node("t")
    for x, y in [(s, a), (a, t), (s, b), (b, t)]:
        topo.add_link(Link(a=x, b=y, capacity_mbps=100.0))
    return topo


class TestConstruction:
    def test_add_node_idempotent(self):
        topo = Topology()
        first = topo.add_node(Node("x"))
        second = topo.add_node(Node("x"))
        assert first is second

    def test_duplicate_link_rejected(self):
        topo = Topology()
        link = Link(a=Node("a"), b=Node("b"), capacity_mbps=10.0)
        topo.add_link(link)
        with pytest.raises(TopologyError, match="duplicate"):
            topo.add_link(Link(a=Node("a"), b=Node("b"), capacity_mbps=10.0))

    def test_bidirectional_by_default(self):
        topo = Topology()
        topo.add_link(Link(a=Node("a"), b=Node("b"), capacity_mbps=10.0))
        assert topo.link("b", "a").capacity_mbps == 10.0

    def test_reverse_link_has_no_cross_traffic(self):
        from repro.network.crosstraffic import CrossTrafficSource

        topo = Topology()
        fwd = Link(a=Node("a"), b=Node("b"), capacity_mbps=10.0)
        fwd.add_cross_traffic(CrossTrafficSource(name="x", series=(1.0,)))
        topo.add_link(fwd)
        assert topo.link("b", "a").cross_traffic == []

    def test_unidirectional_option(self):
        topo = Topology()
        topo.add_link(
            Link(a=Node("a"), b=Node("b"), capacity_mbps=10.0),
            bidirectional=False,
        )
        with pytest.raises(TopologyError):
            topo.link("b", "a")


class TestLookup:
    def test_unknown_node(self):
        with pytest.raises(TopologyError, match="unknown node"):
            Topology().node("ghost")

    def test_unknown_link(self):
        topo = diamond()
        with pytest.raises(TopologyError, match="no link"):
            topo.link("a", "b")

    def test_links_enumeration(self):
        topo = diamond()
        names = {l.name for l in topo.links}
        assert "s->a" in names and "a->s" in names
        assert len(names) == 8


class TestPaths:
    def test_explicit_path(self):
        topo = diamond()
        path = topo.path(["s", "a", "t"])
        assert path.name == "s->a->t"
        assert path.hop_count == 2

    def test_path_needs_two_nodes(self):
        with pytest.raises(TopologyError):
            diamond().path(["s"])

    def test_path_with_missing_link(self):
        with pytest.raises(TopologyError):
            diamond().path(["s", "t"])

    def test_shortest_path(self):
        path = diamond().shortest_path("s", "t")
        assert path.hop_count == 2

    def test_shortest_path_no_route(self):
        topo = diamond()
        topo.add_node(Node("island"))
        with pytest.raises(TopologyError):
            topo.shortest_path("s", "island")

    def test_disjoint_paths(self):
        paths = diamond().disjoint_paths("s", "t", k=2)
        assert len(paths) == 2
        middles = {p.nodes[1].name for p in paths}
        assert middles == {"a", "b"}

    def test_disjoint_paths_insufficient(self):
        with pytest.raises(TopologyError, match="node-disjoint"):
            diamond().disjoint_paths("s", "t", k=3)

    def test_shared_links_empty_for_disjoint(self):
        topo = diamond()
        paths = topo.disjoint_paths("s", "t", k=2)
        assert topo.shared_links(paths) == set()

    def test_shared_links_detects_overlap(self):
        topo = diamond()
        p1 = topo.path(["s", "a", "t"])
        p2 = topo.path(["s", "a", "t"])
        assert topo.shared_links([p1, p2]) == {"s->a", "a->t"}
