"""Nodes and capacity links."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.crosstraffic import CrossTrafficSource
from repro.network.link import Link
from repro.network.node import Node, NodeKind
from repro.sim.random import RandomStreams


class TestNode:
    def test_equality_by_name(self):
        assert Node("N-1", NodeKind.SERVER) == Node("N-1", NodeKind.CLIENT)
        assert Node("N-1") != Node("N-2")

    def test_hashable(self):
        assert len({Node("a"), Node("a"), Node("b")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Node("")

    def test_str(self):
        assert str(Node("N-3")) == "N-3"


class TestLink:
    def _link(self, **kwargs) -> Link:
        defaults = dict(a=Node("a"), b=Node("b"), capacity_mbps=100.0)
        defaults.update(kwargs)
        return Link(**defaults)

    def test_name(self):
        assert self._link().name == "a->b"

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            self._link(capacity_mbps=0.0)

    def test_invalid_loss_rate(self):
        with pytest.raises(ConfigurationError):
            self._link(loss_rate=1.0)

    def test_residual_without_cross_traffic_is_capacity(self):
        link = self._link()
        residual = link.residual_series(100, 0.1, RandomStreams(1))
        assert np.all(residual == 100.0)

    def test_residual_subtracts_cross_traffic(self):
        link = self._link()
        link.add_cross_traffic(
            CrossTrafficSource(name="ct", series=(30.0,))
        )
        residual = link.residual_series(50, 0.1, RandomStreams(1))
        assert np.all(residual == 70.0)

    def test_residual_sums_multiple_sources(self):
        link = self._link()
        link.add_cross_traffic(CrossTrafficSource(name="x", series=(30.0,)))
        link.add_cross_traffic(CrossTrafficSource(name="y", series=(20.0,)))
        residual = link.residual_series(10, 0.1, RandomStreams(1))
        assert np.all(residual == 50.0)

    def test_residual_clipped_at_zero(self):
        link = self._link()
        link.add_cross_traffic(CrossTrafficSource(name="x", series=(500.0,)))
        residual = link.residual_series(10, 0.1, RandomStreams(1))
        assert np.all(residual == 0.0)

    def test_residual_deterministic_per_seed(self):
        def make():
            link = self._link()
            link.add_cross_traffic(
                CrossTrafficSource.from_profile_name("ct", "light")
            )
            return link.residual_series(100, 0.1, RandomStreams(42))

        assert np.array_equal(make(), make())


class TestCrossTrafficSource:
    def test_requires_exactly_one_of_profile_or_series(self):
        with pytest.raises(ConfigurationError):
            CrossTrafficSource(name="bad")

    def test_series_tiles_to_length(self):
        src = CrossTrafficSource(name="s", series=(1.0, 2.0))
        out = src.realize(5, 0.1, RandomStreams(1))
        assert np.allclose(out, [1.0, 2.0, 1.0, 2.0, 1.0])

    def test_scale_applied(self):
        src = CrossTrafficSource(name="s", series=(10.0,), scale=0.5)
        assert np.all(src.realize(3, 0.1, RandomStreams(1)) == 5.0)

    def test_unknown_profile_name(self):
        with pytest.raises(ConfigurationError, match="unknown cross-traffic"):
            CrossTrafficSource.from_profile_name("s", "missing")

    def test_profile_sources_independent_by_name(self):
        a = CrossTrafficSource.from_profile_name("one", "light")
        b = CrossTrafficSource.from_profile_name("two", "light")
        streams = RandomStreams(5)
        assert not np.array_equal(
            a.realize(100, 0.1, streams), b.realize(100, 0.1, streams)
        )

    def test_profile_source_replayable(self):
        src = CrossTrafficSource.from_profile_name("one", "light")
        assert np.array_equal(
            src.realize(100, 0.1, RandomStreams(5)),
            src.realize(100, 0.1, RandomStreams(5)),
        )

    def test_empty_series_rejected_on_realize(self):
        src = CrossTrafficSource(name="s", series=())
        with pytest.raises(ConfigurationError):
            src.realize(3, 0.1, RandomStreams(1))
