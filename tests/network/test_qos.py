"""RTT / loss-rate realization and guarantees."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.qos import (
    MAX_QUEUE_FACTOR,
    PathQoS,
    loss_guarantee,
    realize_qos,
    rtt_guarantee,
)
from repro.sim.random import RandomStreams


def _bandwidth(available, capacity=100.0, loss=0.0):
    """Build a PathBandwidth over a 2-link chain with given availability."""
    from repro.network.link import Link
    from repro.network.node import Node
    from repro.network.path import OverlayPath, PathBandwidth

    a, b, c = Node("a"), Node("b"), Node("c")
    links = (
        Link(a=a, b=b, capacity_mbps=capacity, delay_ms=5.0, loss_rate=loss),
        Link(a=b, b=c, capacity_mbps=capacity, delay_ms=5.0, loss_rate=loss),
    )
    path = OverlayPath((a, b, c), links)
    return PathBandwidth(
        path=path, dt=0.1, available_mbps=np.asarray(available, dtype=float)
    )


class TestRealizeQoS:
    def test_idle_path_rtt_near_propagation(self, rng):
        bw = _bandwidth(np.full(500, 100.0))
        qos = realize_qos(bw, rng, jitter_ms=0.1)
        assert qos.mean_rtt() == pytest.approx(20.0, abs=0.3)

    def test_rtt_grows_with_utilization(self, rng):
        idle = realize_qos(_bandwidth(np.full(500, 90.0)), rng)
        busy = realize_qos(_bandwidth(np.full(500, 10.0)), rng)
        assert busy.mean_rtt() > idle.mean_rtt()

    def test_rtt_capped_under_saturation(self, rng):
        qos = realize_qos(_bandwidth(np.full(100, 0.0)), rng, jitter_ms=0.0)
        assert qos.rtt_ms.max() <= 20.0 * (1 + MAX_QUEUE_FACTOR) + 1e-9

    def test_loss_zero_when_uncongested(self, rng):
        qos = realize_qos(_bandwidth(np.full(100, 50.0)), rng)
        assert np.all(qos.loss_rate == 0.0)

    def test_loss_appears_under_saturation(self, rng):
        qos = realize_qos(_bandwidth(np.full(100, 1.0)), rng)
        assert qos.mean_loss() > 0.0

    def test_base_loss_composes(self, rng):
        qos = realize_qos(_bandwidth(np.full(100, 50.0), loss=0.01), rng)
        # Two links at 1 % each -> ~1.99 %.
        assert qos.loss_rate[0] == pytest.approx(1 - 0.99**2)

    def test_negative_jitter_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            realize_qos(_bandwidth(np.full(10, 50.0)), rng, jitter_ms=-1.0)

    def test_rtt_easier_to_predict_than_bandwidth(self, testbed):
        # The paper's observation (citing Rao): RTT is far less noisy
        # than available bandwidth, relatively.
        r = testbed.realize(seed=8, duration=60.0, dt=0.1)
        for p in r.path_names():
            bw = r.available[p].available_mbps
            rtt = r.qos[p].rtt_ms
            assert (rtt.std() / rtt.mean()) < (bw.std() / bw.mean())


class TestGuarantees:
    def test_rtt_guarantee_is_quantile(self, rng):
        rtt = 20 + np.abs(rng.standard_normal(2000))
        g = rtt_guarantee(rtt, 0.95)
        assert np.mean(rtt <= g) == pytest.approx(0.95, abs=0.01)

    def test_loss_guarantee_monotone_in_probability(self, rng):
        loss = np.clip(0.01 + 0.005 * rng.standard_normal(1000), 0, 1)
        assert loss_guarantee(loss, 0.5) <= loss_guarantee(loss, 0.99)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            rtt_guarantee(np.ones(10), 1.0)
        with pytest.raises(ConfigurationError):
            loss_guarantee(np.ones(10), 0.0)


class TestRealizationIntegration:
    def test_testbed_carries_qos(self, realization):
        for p in realization.path_names():
            qos = realization.qos[p]
            assert isinstance(qos, PathQoS)
            assert qos.n_intervals == realization.n_intervals
            assert np.all(qos.rtt_ms >= 0)
            assert np.all((qos.loss_rate >= 0) & (qos.loss_rate <= 1))
