"""Fault windows, overlap semantics, and dynamic campaign schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import (
    FaultCampaign,
    MonitorBlackout,
    PathFault,
    correlated_outage,
    flapping_faults,
    inject_faults,
)


@pytest.fixture(scope="module")
def realization():
    return make_figure8_testbed().realize(seed=3, duration=60.0, dt=0.1)


class TestWindowRounding:
    def test_window_covers_exactly_its_intervals(self, realization):
        # Regression: lo used to floor while hi rounded, so a window
        # offset by +0.06 s gained an extra leading interval.
        faulted = inject_faults(
            realization,
            [PathFault(path="A", start=10.06, end=12.06)],
        )
        bw = faulted.available["A"].available_mbps
        assert np.all(bw[101:121] == 0.0)
        assert bw[100] > 0.0  # interval 100 is before the rounded start
        assert bw[121] > 0.0

    def test_n_dt_window_hits_n_intervals_anywhere(self, realization):
        dt = realization.dt
        for offset in (0.0, 0.03, 0.049, 0.051, 0.09):
            faulted = inject_faults(
                realization,
                [PathFault(path="A", start=5.0 + offset, end=7.0 + offset)],
            )
            bw = faulted.available["A"].available_mbps
            assert int((bw == 0.0).sum()) == int(round(2.0 / dt))


class TestOverlapSemantics:
    def test_overlapping_severities_multiply(self, realization):
        faulted = inject_faults(
            realization,
            [
                PathFault(path="A", start=10.0, end=20.0, severity=0.5),
                PathFault(path="A", start=15.0, end=25.0, severity=0.5),
            ],
        )
        original = realization.available["A"].available_mbps
        bw = faulted.available["A"].available_mbps
        assert np.allclose(bw[100:150], original[100:150] * 0.5)
        assert np.allclose(bw[150:200], original[150:200] * 0.25)
        assert np.allclose(bw[200:250], original[200:250] * 0.5)

    def test_overlapping_extra_loss_adds_and_clips(self, realization):
        faulted = inject_faults(
            realization,
            [
                PathFault(
                    path="A", start=10.0, end=20.0,
                    severity=0.1, extra_loss=0.7,
                ),
                PathFault(
                    path="A", start=10.0, end=20.0,
                    severity=0.1, extra_loss=0.7,
                ),
            ],
        )
        loss = faulted.qos["A"].loss_rate
        assert np.all(loss[100:200] <= 1.0)
        assert np.all(loss[100:200] >= 0.7)

    def test_campaign_multiplier_matches_static_semantics(self):
        campaign = FaultCampaign(
            faults=(
                PathFault(path="A", start=1.0, end=3.0, severity=0.5),
                PathFault(path="A", start=2.0, end=4.0, severity=0.5),
            )
        )
        assert campaign.availability_multiplier("A", 1.5) == 0.5
        assert campaign.availability_multiplier("A", 2.5) == 0.25
        assert campaign.availability_multiplier("A", 3.5) == 0.5
        assert campaign.availability_multiplier("A", 5.0) == 1.0
        assert campaign.availability_multiplier("B", 2.5) == 1.0


class TestGenerators:
    def test_flapping_is_seeded_and_bounded(self):
        rng = np.random.default_rng(11)
        faults = flapping_faults("A", start=10.0, end=40.0, rng=rng)
        again = flapping_faults(
            "A", start=10.0, end=40.0, rng=np.random.default_rng(11)
        )
        assert faults == again
        for f in faults:
            assert 10.0 <= f.start < f.end <= 40.0
            assert f.path == "A"

    def test_flapping_episodes_do_not_overlap(self):
        faults = flapping_faults(
            "A", start=0.0, end=100.0, rng=np.random.default_rng(5)
        )
        for a, b in zip(faults, faults[1:]):
            assert a.end <= b.start

    def test_correlated_outage_staggers(self):
        faults = correlated_outage(
            ["A", "B"], start=10.0, duration=5.0, stagger=0.5
        )
        assert faults[0].start == 10.0
        assert faults[1].start == 10.5
        assert all(f.end - f.start == 5.0 for f in faults)

    def test_correlated_outage_needs_paths(self):
        with pytest.raises(ConfigurationError):
            correlated_outage([], start=0.0, duration=1.0)


class TestCampaign:
    def test_needs_at_least_one_event(self):
        with pytest.raises(ConfigurationError):
            FaultCampaign()

    def test_blackout_drops_observations(self):
        campaign = FaultCampaign(
            blackouts=(MonitorBlackout(path="A", start=5.0, end=8.0),)
        )
        assert campaign.observed("A", 4.9)
        assert not campaign.observed("A", 5.0)
        assert not campaign.observed("A", 7.9)
        assert campaign.observed("A", 8.0)
        assert campaign.observed("B", 6.0)

    def test_extent_queries(self):
        campaign = FaultCampaign(
            faults=(
                PathFault(path="A", start=3.0, end=6.0),
                PathFault(path="B", start=4.0, end=9.0),
            )
        )
        assert campaign.first_onset == 3.0
        assert campaign.last_end == 9.0
        assert campaign.faulted_paths == frozenset({"A", "B"})

    def test_shifted_moves_everything(self):
        campaign = FaultCampaign(
            faults=(PathFault(path="A", start=3.0, end=6.0),),
            blackouts=(MonitorBlackout(path="B", start=1.0, end=2.0),),
        )
        moved = campaign.shifted(10.0)
        assert moved.faults[0].start == 13.0
        assert moved.blackouts[0].end == 12.0

    def test_random_campaign_is_deterministic(self):
        one = FaultCampaign.random(["A", "B"], duration=60.0, seed=42)
        two = FaultCampaign.random(["A", "B"], duration=60.0, seed=42)
        other = FaultCampaign.random(["A", "B"], duration=60.0, seed=43)
        assert one.faults == two.faults
        assert one.blackouts == two.blackouts
        assert one.faults != other.faults

    def test_random_campaign_stays_in_window(self):
        campaign = FaultCampaign.random(["A", "B"], duration=50.0, seed=9)
        for f in campaign.faults:
            assert 0.0 <= f.start < f.end <= 50.0 + 50.0 * 0.13
        for b in campaign.blackouts:
            assert 0.0 <= b.start < b.end <= 50.0

    def test_as_static_matches_dynamic_multiplier(self, realization):
        campaign = FaultCampaign(
            faults=(PathFault(path="A", start=5.0, end=10.0, severity=0.5),)
        )
        baked = campaign.as_static(realization, offset=20.0)
        original = realization.available["A"].available_mbps
        bw = baked.available["A"].available_mbps
        assert np.allclose(bw[250:300], original[250:300] * 0.5)
        assert np.allclose(bw[:250], original[:250])
