"""The Figure-8 testbed: structure and calibration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.emulab import LINK_CAPACITY_MBPS, make_figure8_testbed
from repro.network.node import NodeKind


class TestStructure:
    def test_two_node_disjoint_paths(self, testbed):
        paths = testbed.paths
        assert set(paths) == {"A", "B"}
        names_a = {n.name for n in paths["A"].nodes}
        names_b = {n.name for n in paths["B"].nodes}
        # Node-disjoint except the shared endpoints.
        assert names_a & names_b == {"N-1", "N-6"}

    def test_paths_share_no_links(self, testbed):
        assert testbed.topology.shared_links(testbed.paths.values()) == set()

    def test_paper_path_routes(self, testbed):
        assert testbed.paths["A"].name == "N-1->N-2->N-4->N-6"
        assert testbed.paths["B"].name == "N-1->N-3->N-5->N-6"

    def test_cross_traffic_on_bottlenecks(self, testbed):
        topo = testbed.topology
        assert topo.link("N-2", "N-4").cross_traffic
        assert topo.link("N-3", "N-5").cross_traffic
        assert not topo.link("N-1", "N-2").cross_traffic

    def test_cross_traffic_hosts_present(self, testbed):
        kinds = {
            n.name: n.kind for n in testbed.topology.nodes
        }
        for name in ("N-9", "N-10", "N-11", "N-12", "N-13", "N-14"):
            assert kinds[name] is NodeKind.CROSS_TRAFFIC

    def test_fourteen_nodes(self, testbed):
        assert len(testbed.topology.nodes) == 14

    def test_server_client_roles(self, testbed):
        assert testbed.server.kind is NodeKind.SERVER
        assert testbed.client.kind is NodeKind.CLIENT

    def test_link_capacity_is_fast_ethernet(self, testbed):
        assert all(
            l.capacity_mbps == LINK_CAPACITY_MBPS for l in testbed.topology.links
        )


class TestRealization:
    def test_deterministic(self, testbed):
        r1 = testbed.realize(seed=3, duration=10.0, dt=0.1)
        r2 = testbed.realize(seed=3, duration=10.0, dt=0.1)
        for p in ("A", "B"):
            assert np.array_equal(
                r1.available[p].available_mbps, r2.available[p].available_mbps
            )

    def test_seeds_differ(self, testbed):
        r1 = testbed.realize(seed=3, duration=10.0, dt=0.1)
        r2 = testbed.realize(seed=4, duration=10.0, dt=0.1)
        assert not np.array_equal(
            r1.available["A"].available_mbps, r2.available["A"].available_mbps
        )

    def test_paths_independent_noise(self, testbed):
        r = testbed.realize(seed=3, duration=30.0, dt=0.1)
        a = r.available["A"].available_mbps
        b = r.available["B"].available_mbps
        assert not np.array_equal(a, b)

    def test_within_capacity(self, realization):
        for p in realization.path_names():
            bw = realization.available[p].available_mbps
            assert np.all(bw >= 0.0)
            assert np.all(bw <= LINK_CAPACITY_MBPS)

    def test_bad_duration_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            testbed.realize(seed=1, duration=0.0, dt=0.1)
        with pytest.raises(ConfigurationError):
            testbed.realize(seed=1, duration=0.05, dt=0.1)


class TestCalibration:
    """Section 6.1's operating point: A higher/stabler, B lower/noisier."""

    def test_path_a_higher_mean(self, testbed):
        r = testbed.realize(seed=7, duration=120.0, dt=0.1)
        assert r.available["A"].mean() > r.available["B"].mean()

    def test_path_b_larger_variance(self, testbed):
        r = testbed.realize(seed=7, duration=120.0, dt=0.1)
        assert (
            r.available["B"].available_mbps.std()
            > r.available["A"].available_mbps.std()
        )

    def test_path_a_sustains_critical_demand(self, testbed):
        # Atom + Bond1 = 25.4 Mbps must fit on A at the 95 % level.
        r = testbed.realize(seed=7, duration=120.0, dt=0.1)
        assert r.available["A"].percentile(5) > 25.4

    def test_xtraffic_scale_shifts_operating_point(self):
        heavy = make_figure8_testbed(xtraffic_scale=1.5)
        light = make_figure8_testbed(xtraffic_scale=0.5)
        rh = heavy.realize(seed=7, duration=60.0, dt=0.1)
        rl = light.realize(seed=7, duration=60.0, dt=0.1)
        assert rl.available["A"].mean() > rh.available["A"].mean()
