"""Trace persistence and resampling."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.io import Trace, load_trace, save_trace


class TestTrace:
    def test_duration(self):
        trace = Trace(rates=np.ones(50), dt=0.1)
        assert trace.duration == pytest.approx(5.0)

    def test_resample_averages_groups(self):
        trace = Trace(rates=np.array([1.0, 3.0, 5.0, 7.0]), dt=0.5)
        coarse = trace.resample(1.0)
        assert np.allclose(coarse.rates, [2.0, 6.0])
        assert coarse.dt == 1.0

    def test_resample_drops_trailing_partial_group(self):
        trace = Trace(rates=np.arange(5, dtype=float), dt=1.0)
        coarse = trace.resample(2.0)
        assert len(coarse.rates) == 2

    def test_resample_identity(self):
        trace = Trace(rates=np.ones(10), dt=0.1)
        assert trace.resample(0.1) is trace

    def test_resample_preserves_mean(self, rng):
        trace = Trace(rates=rng.random(1000), dt=0.1)
        coarse = trace.resample(0.5)
        assert coarse.rates.mean() == pytest.approx(trace.rates.mean(), rel=1e-9)

    def test_non_integer_ratio_rejected(self):
        trace = Trace(rates=np.ones(10), dt=0.3)
        with pytest.raises(TraceError):
            trace.resample(0.5)

    def test_too_short_rejected(self):
        trace = Trace(rates=np.ones(3), dt=0.1)
        with pytest.raises(TraceError):
            trace.resample(1.0)


class TestPersistence:
    def test_round_trip(self, tmp_path, rng):
        original = Trace(rates=rng.random(100) * 50, dt=0.1, name="abilene")
        path = tmp_path / "trace.npz"
        save_trace(path, original)
        loaded = load_trace(path)
        assert np.array_equal(loaded.rates, original.rates)
        assert loaded.dt == original.dt
        assert loaded.name == "abilene"

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(tmp_path / "nope.npz")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, wrong_key=np.ones(3))
        with pytest.raises(TraceError, match="malformed"):
            load_trace(path)
