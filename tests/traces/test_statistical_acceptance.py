"""Statistical acceptance tests of the trace generators.

The reproduction's argument rests on the synthetic traces actually having
the properties the paper assumes: long-range dependence with the
requested Hurst parameter (Davies–Harte fGn), heavy-tailed burst noise,
and calibrated rate levels.  These tests estimate those properties from
fixed-seed realizations and assert they land within tolerance — with two
*independent* Hurst estimators (aggregated variance and rescaled range)
so an estimator bug cannot silently pass its own generator.

Every test is seeded; three consecutive runs must produce byte-identical
outcomes (no random module state, no time dependence).
"""

import numpy as np
import pytest

from repro.traces import (
    fractional_gaussian_noise,
    hill_tail_index,
    hurst_exponent,
    rs_hurst,
)
from repro.traces.synthetic import (
    CompositeProcess,
    ConstantProcess,
    HeavyTailNoise,
    IIDProcess,
    MarkovModulatedProcess,
    SelfSimilarProcess,
)

N = 8192


class TestHurstCalibration:
    """fGn must carry the Hurst parameter it was asked for."""

    @pytest.mark.parametrize("target", [0.6, 0.75, 0.85])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_aggregated_variance_estimate(self, target, seed):
        x = fractional_gaussian_noise(N, target, np.random.default_rng(seed))
        estimate = hurst_exponent(x)
        assert abs(estimate - target) < 0.10, (
            f"H={target} seed={seed}: aggregated-variance estimate "
            f"{estimate:.3f} off by more than 0.10"
        )

    @pytest.mark.parametrize("target", [0.6, 0.75, 0.85])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_rescaled_range_estimate(self, target, seed):
        x = fractional_gaussian_noise(N, target, np.random.default_rng(seed))
        estimate = rs_hurst(x)
        assert abs(estimate - target) < 0.08, (
            f"H={target} seed={seed}: R/S estimate {estimate:.3f} off by "
            f"more than 0.08"
        )

    def test_white_noise_is_memoryless(self):
        x = np.random.default_rng(11).standard_normal(N)
        assert abs(hurst_exponent(x) - 0.5) < 0.10
        assert abs(rs_hurst(x) - 0.5) < 0.10

    def test_estimators_rank_processes_consistently(self):
        """Both estimators must order H=0.6 < H=0.85 realizations."""
        rng_lo = np.random.default_rng(21)
        rng_hi = np.random.default_rng(21)
        lo = fractional_gaussian_noise(N, 0.6, rng_lo)
        hi = fractional_gaussian_noise(N, 0.85, rng_hi)
        assert hurst_exponent(lo) < hurst_exponent(hi)
        assert rs_hurst(lo) < rs_hurst(hi)

    def test_self_similar_process_inherits_hurst(self):
        proc = SelfSimilarProcess(mean=50.0, std=5.0, hurst=0.8)
        x = proc.sample(N, np.random.default_rng(31))
        assert abs(rs_hurst(x) - 0.8) < 0.10


class TestTailIndex:
    """HeavyTailNoise must actually be heavy-tailed."""

    def test_bursts_heavier_than_gaussian(self):
        rng = np.random.default_rng(41)
        bursts = HeavyTailNoise(burst_prob=0.05, burst_scale=20.0).sample(
            20_000, rng
        )
        gauss = np.abs(np.random.default_rng(42).normal(10.0, 2.0, 20_000))
        alpha_bursts = hill_tail_index(bursts[bursts > 0])
        alpha_gauss = hill_tail_index(gauss)
        # Hill alpha: smaller = heavier tail.  Lognormal bursts sit far
        # below the effectively-exponential Gaussian tail.
        assert alpha_bursts < 6.0
        assert alpha_gauss > 12.0
        assert alpha_bursts < alpha_gauss / 3.0

    def test_pareto_index_recovered(self):
        """Sanity-pin the estimator itself on a known power law."""
        rng = np.random.default_rng(43)
        x = rng.pareto(1.5, 40_000) + 1.0
        assert abs(hill_tail_index(x) - 1.5) < 0.25


class TestRateCalibration:
    """Generated traces must sit at the rates the figures request."""

    def test_constant_process_exact(self):
        x = ConstantProcess(rate=42.0).sample(100, np.random.default_rng(0))
        assert np.all(x == 42.0)

    def test_iid_moments(self):
        proc = IIDProcess(mean=50.0, std=5.0)
        x = proc.sample(20_000, np.random.default_rng(51))
        assert abs(float(x.mean()) - 50.0) < 0.15  # ~4 sigma of the SEM
        assert abs(float(x.std()) - 5.0) < 0.15

    def test_markov_levels_time_share(self):
        proc = MarkovModulatedProcess(levels=(20.0, 60.0), stay_prob=0.99)
        x = proc.sample(50_000, np.random.default_rng(61))
        assert set(np.unique(x)) == {20.0, 60.0}
        # Symmetric two-state chain: long-run occupancy 50/50.
        frac_high = float(np.mean(x == 60.0))
        assert abs(frac_high - 0.5) < 0.1

    def test_composite_mean_is_sum_of_components(self):
        proc = CompositeProcess(
            components=(
                ConstantProcess(rate=40.0),
                IIDProcess(mean=10.0, std=2.0),
            ),
            floor=0.0,
        )
        x = proc.sample(20_000, np.random.default_rng(71))
        assert abs(float(x.mean()) - 50.0) < 0.2

    def test_composite_respects_ceiling(self):
        proc = CompositeProcess(
            components=(ConstantProcess(rate=95.0), IIDProcess(mean=0.0, std=20.0)),
            floor=0.0,
            ceiling=100.0,
        )
        x = proc.sample(5_000, np.random.default_rng(81))
        assert float(x.max()) <= 100.0
        assert float(x.min()) >= 0.0


class TestDeterminism:
    """Same seed, same trace — the property every golden test leans on."""

    def test_fgn_reproducible(self):
        a = fractional_gaussian_noise(1024, 0.75, np.random.default_rng(5))
        b = fractional_gaussian_noise(1024, 0.75, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_estimators_pure(self):
        x = fractional_gaussian_noise(2048, 0.7, np.random.default_rng(6))
        assert hurst_exponent(x) == hurst_exponent(x.copy())
        assert rs_hurst(x) == rs_hurst(x.copy())
        assert hill_tail_index(np.abs(x) + 1.0) == hill_tail_index(
            np.abs(x) + 1.0
        )
