"""NLANR-like profiles: the statistical properties the evaluation rests on."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.nlanr import PROFILES, CrossTrafficProfile, synthesize_cross_traffic
from repro.traces.stats import TraceStats


class TestProfiles:
    def test_all_registered_profiles_sample(self, rng):
        for name, profile in PROFILES.items():
            x = profile.sample(1000, rng)
            assert x.shape == (1000,)
            assert np.all(x >= 0.0), name

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_mean_near_calibration(self, name, rng):
        profile = PROFILES[name]
        x = profile.sample(50_000, rng)
        assert x.mean() == pytest.approx(profile.mean_mbps, rel=0.15)

    def test_noisy_profile_noisier_than_light(self, rng):
        noisy = PROFILES["abilene-noisy"].sample(20_000, rng)
        light = PROFILES["light"].sample(20_000, rng)
        assert noisy.std() > light.std()

    def test_regime_shifts_present(self, rng):
        # abilene-moderate has a two-level regime component: block means
        # over long windows should spread more than IID noise alone allows.
        profile = PROFILES["abilene-moderate"]
        x = profile.sample(60_000, rng)
        block_means = x.reshape(-1, 1000).mean(axis=1)
        assert block_means.std() > 0.5

    def test_custom_profile_build(self, rng):
        profile = CrossTrafficProfile(
            name="custom", mean_mbps=10.0, iid_std=1.0
        )
        x = profile.sample(10_000, rng)
        assert x.mean() == pytest.approx(10.0, rel=0.05)

    def test_negative_mean_rejected(self, rng):
        bad = CrossTrafficProfile(name="bad", mean_mbps=-5.0, iid_std=1.0)
        with pytest.raises(ConfigurationError):
            bad.build()


class TestSynthesize:
    def test_length_from_duration(self, rng):
        x = synthesize_cross_traffic("light", duration=30.0, dt=0.1, rng=rng)
        assert x.shape == (300,)

    def test_accepts_profile_instance(self, rng):
        x = synthesize_cross_traffic(
            PROFILES["calm"], duration=1.0, dt=0.1, rng=rng
        )
        assert x.shape == (10,)

    def test_unknown_profile_rejected(self, rng):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            synthesize_cross_traffic("nope", duration=1.0, dt=0.1, rng=rng)

    def test_bad_duration_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            synthesize_cross_traffic("calm", duration=0.0, dt=0.1, rng=rng)

    def test_sub_interval_duration_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            synthesize_cross_traffic("calm", duration=0.01, dt=0.1, rng=rng)


class TestStatisticalShape:
    """The Figure-4 preconditions: near-IID noise, stable distribution."""

    def test_short_timescale_noise_dominates(self, rng):
        from repro.traces.stats import autocorrelation

        x = PROFILES["abilene-noisy"].sample(50_000, rng)
        # Lag-1 autocorrelation well below 1: the per-interval signal is
        # mostly noise, which is what defeats mean predictors.
        assert autocorrelation(x, 1)[1] < 0.5

    def test_short_horizon_distribution_stable(self, rng):
        # Percentiles of adjacent 500-sample windows should agree within a
        # few Mbps — the property percentile prediction exploits.
        x = PROFILES["abilene-moderate"].sample(10_000, rng)
        p10_first = np.percentile(x[:5000], 10)
        p10_second = np.percentile(x[5000:], 10)
        assert abs(p10_first - p10_second) < 0.15 * max(p10_first, 1.0)

    def test_stats_summary(self, rng):
        x = PROFILES["auckland"].sample(20_000, rng)
        stats = TraceStats.from_series(x)
        assert stats.p05 <= stats.p50 <= stats.p95
        assert "mean=" in stats.describe()
