"""Fractional Gaussian noise: exactness of the Davies-Harte construction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.fgn import fbm_from_fgn, fgn_autocovariance, fractional_gaussian_noise
from repro.traces.stats import hurst_exponent


class TestAutocovariance:
    def test_lag_zero_is_unit_variance(self):
        gamma = fgn_autocovariance(10, 0.8)
        assert gamma[0] == pytest.approx(1.0)

    def test_white_noise_case(self):
        gamma = fgn_autocovariance(10, 0.5)
        assert gamma[0] == pytest.approx(1.0)
        assert np.allclose(gamma[1:], 0.0, atol=1e-12)

    def test_positive_correlation_for_high_hurst(self):
        gamma = fgn_autocovariance(20, 0.85)
        assert np.all(gamma[1:] > 0)

    def test_slow_decay_for_lrd(self):
        gamma = fgn_autocovariance(100, 0.9)
        # gamma(k) ~ H(2H-1) k^{2H-2}; ratio between lags 10 and 40 should
        # match the power law within a few percent.
        expected = (40 / 10) ** (2 * 0.9 - 2)
        assert gamma[40] / gamma[10] == pytest.approx(expected, rel=0.05)


class TestSampling:
    def test_output_length(self, rng):
        assert fractional_gaussian_noise(1000, 0.8, rng).shape == (1000,)

    def test_unit_variance(self, rng):
        x = fractional_gaussian_noise(100_000, 0.8, rng)
        assert x.std() == pytest.approx(1.0, rel=0.05)
        # Long memory: the sample mean converges as n^(H-1) ~ n^-0.2, so
        # its standard error at n=1e5 is ~0.1, not the 1/sqrt(n) of IID.
        assert x.mean() == pytest.approx(0.0, abs=0.4)

    def test_sample_autocovariance_matches_theory(self, rng):
        x = fractional_gaussian_noise(200_000, 0.8, rng)
        gamma_hat = np.array(
            [np.mean(x[:-k] * x[k:]) for k in (1, 2, 4)]
        )
        gamma = fgn_autocovariance(5, 0.8)
        assert gamma_hat == pytest.approx(gamma[[1, 2, 4]], abs=0.03)

    def test_hurst_recovered(self, rng):
        x = fractional_gaussian_noise(65536, 0.8, rng)
        assert hurst_exponent(x) == pytest.approx(0.8, abs=0.1)

    def test_white_noise_hurst(self, rng):
        x = fractional_gaussian_noise(65536, 0.5, rng)
        assert hurst_exponent(x) == pytest.approx(0.5, abs=0.1)

    def test_deterministic_given_rng(self):
        a = fractional_gaussian_noise(100, 0.8, np.random.default_rng(1))
        b = fractional_gaussian_noise(100, 0.8, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_n_one_works(self, rng):
        assert fractional_gaussian_noise(1, 0.7, rng).shape == (1,)

    @pytest.mark.parametrize("hurst", [0.0, 1.0, -0.3, 1.5])
    def test_invalid_hurst_rejected(self, rng, hurst):
        with pytest.raises(ConfigurationError):
            fractional_gaussian_noise(10, hurst, rng)

    def test_invalid_n_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            fractional_gaussian_noise(0, 0.8, rng)


class TestFBM:
    def test_fbm_is_cumsum(self, rng):
        x = fractional_gaussian_noise(100, 0.8, rng)
        fbm = fbm_from_fgn(x)
        assert fbm[0] == pytest.approx(x[0])
        assert fbm[-1] == pytest.approx(x.sum())
