"""Synthetic bandwidth processes: distributions, composition, clipping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.synthetic import (
    CompositeProcess,
    ConstantProcess,
    HeavyTailNoise,
    IIDProcess,
    MarkovModulatedProcess,
    OrnsteinUhlenbeckProcess,
    SelfSimilarProcess,
)


class TestConstant:
    def test_constant_values(self, rng):
        x = ConstantProcess(42.0).sample(100, rng)
        assert np.all(x == 42.0)


class TestIID:
    def test_mean_and_std(self, rng):
        x = IIDProcess(mean=50.0, std=5.0).sample(50_000, rng)
        assert x.mean() == pytest.approx(50.0, abs=0.2)
        assert x.std() == pytest.approx(5.0, rel=0.05)

    def test_near_zero_autocorrelation(self, rng):
        from repro.traces.stats import autocorrelation

        x = IIDProcess(mean=0.0, std=1.0).sample(20_000, rng)
        assert abs(autocorrelation(x, 1)[1]) < 0.03

    def test_negative_std_rejected(self):
        with pytest.raises(ConfigurationError):
            IIDProcess(mean=1.0, std=-1.0)


class TestHeavyTail:
    def test_burst_probability(self, rng):
        x = HeavyTailNoise(burst_prob=0.1, burst_scale=5.0).sample(50_000, rng)
        assert np.mean(x > 0) == pytest.approx(0.1, abs=0.01)

    def test_zero_prob_is_silent(self, rng):
        x = HeavyTailNoise(burst_prob=0.0, burst_scale=5.0).sample(1000, rng)
        assert np.all(x == 0.0)

    def test_heavy_upper_tail(self, rng):
        x = HeavyTailNoise(burst_prob=1.0, burst_scale=1.0, sigma=1.0).sample(
            50_000, rng
        )
        # Lognormal: max far beyond the mean.
        assert x.max() > 5 * x.mean()

    def test_invalid_prob_rejected(self):
        with pytest.raises(ConfigurationError):
            HeavyTailNoise(burst_prob=1.5, burst_scale=1.0)


class TestMarkovModulated:
    def test_visits_all_levels(self, rng):
        proc = MarkovModulatedProcess(levels=(10.0, 30.0), stay_prob=0.95)
        x = proc.sample(5000, rng)
        assert set(np.unique(x)) == {10.0, 30.0}

    def test_stays_long_in_state(self, rng):
        proc = MarkovModulatedProcess(levels=(0.0, 1.0), stay_prob=0.99)
        x = proc.sample(20_000, rng)
        switches = np.sum(np.abs(np.diff(x)) > 0)
        # Expected ~1% switch rate.
        assert switches / x.size == pytest.approx(0.01, abs=0.005)

    def test_single_level_constant(self, rng):
        x = MarkovModulatedProcess(levels=(7.0,)).sample(100, rng)
        assert np.all(x == 7.0)

    def test_starts_in_initial_state(self, rng):
        proc = MarkovModulatedProcess(
            levels=(1.0, 2.0, 3.0), stay_prob=0.9999, initial_state=2
        )
        x = proc.sample(10, rng)
        assert x[0] == 3.0

    def test_bad_initial_state_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkovModulatedProcess(levels=(1.0, 2.0), initial_state=5)

    def test_empty_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkovModulatedProcess(levels=())


class TestOrnsteinUhlenbeck:
    def test_stationary_moments(self, rng):
        proc = OrnsteinUhlenbeckProcess(mean=40.0, std=4.0, theta=0.1)
        x = proc.sample(100_000, rng)
        assert x.mean() == pytest.approx(40.0, abs=0.5)
        assert x.std() == pytest.approx(4.0, rel=0.1)

    def test_mean_reversion(self, rng):
        from repro.traces.stats import autocorrelation

        proc = OrnsteinUhlenbeckProcess(mean=0.0, std=1.0, theta=0.2)
        x = proc.sample(50_000, rng)
        acf = autocorrelation(x, 2)
        assert acf[1] == pytest.approx(0.8, abs=0.05)  # 1 - theta

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            OrnsteinUhlenbeckProcess(mean=0.0, std=1.0, theta=0.0)


class TestSelfSimilar:
    def test_moments(self, rng):
        x = SelfSimilarProcess(mean=20.0, std=3.0, hurst=0.8).sample(
            50_000, rng
        )
        # LRD sample mean has standard error ~ std * n^(H-1) ~ 0.35 here.
        assert x.mean() == pytest.approx(20.0, abs=1.5)
        assert x.std() == pytest.approx(3.0, rel=0.1)

    def test_positive_lag1_correlation(self, rng):
        from repro.traces.stats import autocorrelation

        x = SelfSimilarProcess(mean=0.0, std=1.0, hurst=0.85).sample(
            20_000, rng
        )
        assert autocorrelation(x, 1)[1] > 0.2

    def test_invalid_hurst_rejected(self):
        with pytest.raises(ConfigurationError):
            SelfSimilarProcess(mean=0.0, std=1.0, hurst=1.2)


class TestComposite:
    def test_sum_of_components(self, rng):
        proc = CompositeProcess(
            [ConstantProcess(10.0), ConstantProcess(5.0)]
        )
        assert np.all(proc.sample(50, rng) == 15.0)

    def test_clipping(self, rng):
        proc = CompositeProcess(
            [IIDProcess(mean=0.0, std=10.0)], floor=0.0, ceiling=5.0
        )
        x = proc.sample(10_000, rng)
        assert x.min() >= 0.0
        assert x.max() <= 5.0

    def test_add_operator(self, rng):
        proc = ConstantProcess(1.0) + ConstantProcess(2.0)
        assert isinstance(proc, CompositeProcess)
        assert np.all(proc.sample(10, rng) == 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeProcess([])

    def test_floor_above_ceiling_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeProcess([ConstantProcess(1.0)], floor=10.0, ceiling=5.0)
