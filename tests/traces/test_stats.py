"""Trace characterization: ACF, Hurst estimation, summaries."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.traces.stats import TraceStats, autocorrelation, hurst_exponent


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        x = rng.random(1000)
        assert autocorrelation(x, 5)[0] == 1.0

    def test_white_noise_near_zero(self, rng):
        x = rng.standard_normal(50_000)
        acf = autocorrelation(x, 3)
        assert np.all(np.abs(acf[1:]) < 0.02)

    def test_perfect_persistence(self):
        x = np.ones(100)
        acf = autocorrelation(x, 2)
        # Constant series: defined as acf 0 beyond lag 0.
        assert acf[0] == 1.0
        assert np.all(acf[1:] == 0.0)

    def test_ar1_recovers_phi(self, rng):
        phi = 0.7
        n = 50_000
        x = np.empty(n)
        x[0] = 0.0
        eps = rng.standard_normal(n)
        for i in range(1, n):
            x[i] = phi * x[i - 1] + eps[i]
        assert autocorrelation(x, 1)[1] == pytest.approx(phi, abs=0.02)

    def test_too_short_rejected(self):
        with pytest.raises(TraceError):
            autocorrelation(np.array([1.0]), 1)

    def test_lag_exceeding_length_rejected(self, rng):
        with pytest.raises(TraceError):
            autocorrelation(rng.random(10), 10)


class TestHurst:
    def test_white_noise_near_half(self, rng):
        assert hurst_exponent(rng.standard_normal(65536)) == pytest.approx(
            0.5, abs=0.08
        )

    def test_short_series_rejected(self, rng):
        with pytest.raises(TraceError):
            hurst_exponent(rng.random(10))

    def test_result_clipped_to_unit_interval(self, rng):
        h = hurst_exponent(np.cumsum(rng.standard_normal(4096)))
        assert 0.0 < h < 1.0


class TestSteadiness:
    def test_constant_series_fully_steady(self):
        from repro.traces.stats import fraction_steady, mean_steady_period

        x = np.full(100, 10.0)
        assert fraction_steady(x, rho=1.2, horizon=5) == 1.0
        assert mean_steady_period(x, rho=1.2) == 100.0

    def test_alternating_beyond_rho_never_steady(self):
        from repro.traces.stats import fraction_steady

        x = np.array([10.0, 30.0] * 50)
        assert fraction_steady(x, rho=1.5, horizon=3) == 0.0

    def test_looser_rho_is_steadier(self, rng):
        from repro.traces.stats import fraction_steady

        x = np.clip(20 + 3 * rng.standard_normal(5000), 0.1, None)
        tight = fraction_steady(x, rho=1.1, horizon=10)
        loose = fraction_steady(x, rho=2.0, horizon=10)
        assert loose >= tight

    def test_zero_touching_windows_unsteady(self):
        from repro.traces.stats import fraction_steady

        x = np.array([0.0, 10.0, 10.0, 10.0, 10.0])
        assert fraction_steady(x, rho=5.0, horizon=5) == 0.0

    def test_steady_period_splits_on_jump(self):
        from repro.traces.stats import mean_steady_period

        x = np.concatenate([np.full(50, 10.0), np.full(50, 100.0)])
        assert mean_steady_period(x, rho=1.5) == pytest.approx(50.0)

    def test_quieter_series_has_longer_periods(self, rng):
        from repro.traces.stats import mean_steady_period

        quiet = np.clip(20 + 0.5 * rng.standard_normal(3000), 0.1, None)
        noisy = np.clip(20 + 6.0 * rng.standard_normal(3000), 0.1, None)
        assert mean_steady_period(quiet, 1.3) > mean_steady_period(noisy, 1.3)

    def test_validation(self, rng):
        from repro.traces.stats import fraction_steady, mean_steady_period

        x = rng.random(100)
        with pytest.raises(TraceError):
            fraction_steady(x, rho=1.0, horizon=5)
        with pytest.raises(TraceError):
            fraction_steady(x, rho=2.0, horizon=1)
        with pytest.raises(TraceError):
            fraction_steady(x[:3], rho=2.0, horizon=5)
        with pytest.raises(TraceError):
            mean_steady_period(np.array([]), rho=2.0)


class TestTraceStats:
    def test_percentile_ordering(self, rng):
        stats = TraceStats.from_series(rng.random(5000) * 100)
        assert (
            stats.p05 <= stats.p10 <= stats.p50 <= stats.p90 <= stats.p95
        )

    def test_gaussian_values(self, rng):
        stats = TraceStats.from_series(50 + 5 * rng.standard_normal(100_000))
        assert stats.mean == pytest.approx(50.0, abs=0.2)
        assert stats.std == pytest.approx(5.0, rel=0.05)
        assert stats.p10 == pytest.approx(50 - 1.2816 * 5, abs=0.3)

    def test_needs_two_samples(self):
        with pytest.raises(TraceError):
            TraceStats.from_series(np.array([1.0]))
