"""The trace tooling CLI."""

import pytest

from repro.traces.cli import main


class TestTraceCLI:
    def test_list_profiles(self, capsys):
        assert main(["list-profiles"]) == 0
        out = capsys.readouterr().out
        assert "abilene-noisy" in out
        assert "light" in out

    def test_generate_and_inspect_round_trip(self, tmp_path, capsys):
        out_file = tmp_path / "trace.npz"
        assert (
            main(
                [
                    "generate",
                    "calm",
                    "--duration",
                    "60",
                    "--seed",
                    "5",
                    "-o",
                    str(out_file),
                ]
            )
            == 0
        )
        assert out_file.exists()
        assert main(["inspect", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "600 samples" in out or "600 x" in out
        assert "mean=" in out

    def test_inspect_with_resample(self, tmp_path, capsys):
        out_file = tmp_path / "trace.npz"
        main(["generate", "calm", "--duration", "60", "-o", str(out_file)])
        assert main(["inspect", str(out_file), "--resample", "1.0"]) == 0
        assert "60 x 1.0s" in capsys.readouterr().out

    def test_generation_deterministic(self, tmp_path):
        import numpy as np

        from repro.traces.io import load_trace

        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        for path in (a, b):
            main(
                ["generate", "calm", "--duration", "30", "--seed", "9", "-o", str(path)]
            )
        assert np.array_equal(load_trace(a).rates, load_trace(b).rates)

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "nope", "-o", "x.npz"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
