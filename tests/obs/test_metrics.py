"""Metrics registry: instrument semantics, edge cases, persistence."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("hits")
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)

    def test_snapshot(self):
        c = Counter("hits")
        c.inc(4)
        assert c.snapshot() == {"type": "counter", "value": 4.0}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(3)
        g.dec(1)
        assert g.value == 12.0

    def test_snapshot(self):
        g = Gauge("depth")
        g.set(-2.5)
        assert g.snapshot() == {"type": "gauge", "value": -2.5}


class TestHistogram:
    def test_value_exactly_on_bucket_edge_lands_in_that_bucket(self):
        # Cumulative-le convention: a value equal to a bound belongs to
        # that bound's bucket, not the next one up.
        h = Histogram("lat", bounds=[1.0, 5.0, 10.0])
        for v in (1.0, 5.0, 10.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 0]

    def test_values_between_edges_and_overflow(self):
        h = Histogram("lat", bounds=[1.0, 5.0])
        h.observe(0.5)   # <= 1
        h.observe(3.0)   # <= 5
        h.observe(5.001) # overflow
        assert h.counts == [1, 1, 1]

    def test_min_max_mean_track_observations(self):
        h = Histogram("lat", bounds=[10.0])
        assert h.mean is None
        h.observe(2.0)
        h.observe(6.0)
        assert h.min == 2.0
        assert h.max == 6.0
        assert math.isclose(h.mean, 4.0)
        assert h.count == 2

    def test_empty_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", bounds=[])

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", bounds=[1.0, 1.0, 2.0])
        with pytest.raises(ConfigurationError):
            Histogram("lat", bounds=[2.0, 1.0])

    def test_snapshot_round_trips_through_json(self):
        h = Histogram("lat", bounds=[1.0, 2.0])
        h.observe(0.5)
        h.observe(3.0)
        snap = json.loads(json.dumps(h.snapshot()))
        assert snap["counts"] == [1, 0, 1]
        assert snap["count"] == 2
        assert snap["sum"] == 3.5


class TestRegistry:
    def test_create_or_get_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", [1.0]) is reg.histogram("h", [1.0])

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")

    def test_histogram_reregistered_with_different_bounds_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            reg.histogram("h", [1.0, 3.0])

    def test_snapshot_at_sim_time_zero(self):
        # t=0 is a legitimate snapshot time (run start), not a falsy
        # value to be skipped.
        reg = MetricsRegistry()
        reg.counter("c").inc()
        state = reg.snapshot(0.0)
        assert reg.snapshots == [(0.0, state)]
        assert state["c"]["value"] == 1.0

    def test_snapshots_accumulate_in_order(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        reg.snapshot(0.0)
        c.inc(5)
        reg.snapshot(2.0)
        assert [t for t, _ in reg.snapshots] == [0.0, 2.0]
        assert reg.snapshots[0][1]["c"]["value"] == 0.0
        assert reg.snapshots[1][1]["c"]["value"] == 5.0

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert isinstance(reg.get("b"), Counter)
        assert reg.get("missing") is None

    def test_export_load_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h", [1.0]).observe(0.5)
        reg.snapshot(0.0)
        reg.snapshot(10.0)
        out = tmp_path / "metrics.json"
        reg.export_json(out)
        data = MetricsRegistry.load_json(out)
        assert data == reg.to_dict()
        assert data["current"]["c"]["value"] == 3.0
        assert [s["sim_time"] for s in data["snapshots"]] == [0.0, 10.0]


class TestNullRegistry:
    def test_all_instruments_share_one_inert_object(self):
        reg = NullMetricsRegistry()
        c = reg.counter("a")
        assert c is reg.gauge("b")
        assert c is reg.histogram("c", [1.0])

    def test_updates_keep_no_state(self):
        reg = NullMetricsRegistry()
        reg.counter("a").inc(100)
        reg.gauge("b").set(5)
        reg.histogram("c", [1.0]).observe(0.5)
        assert reg.counter("a").value == 0.0
        assert reg.names() == []
        assert reg.get("a") is None

    def test_snapshot_and_export_are_inert_but_valid(self, tmp_path):
        reg = NullMetricsRegistry()
        assert reg.snapshot(0.0) == {}
        out = tmp_path / "metrics.json"
        reg.export_json(out)
        assert NullMetricsRegistry.load_json(out) == {
            "current": {},
            "snapshots": [],
        }
