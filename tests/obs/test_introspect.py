"""Trace introspection: robustness figures and causal chains."""

from repro.obs.events import Category
from repro.obs.introspect import (
    detection_latency_from_trace,
    explain_shortfall,
    guarantee_violations,
    health_transitions,
    recovery_latency_from_trace,
    render_chain,
    summarize,
)
from repro.obs.trace import TraceBus


def _transition(bus, t, path, old, new, reason="test"):
    return bus.emit(
        t, Category.HEALTH, "transition",
        path=path, old=old, new=new, reason=reason,
    )


def _outage_trace():
    """A synthetic run: path A fails at t=10, heals at t=30, and stream 1
    misses its guarantee at t=12 while A is quarantined."""
    bus = TraceBus()
    bus.emit(0.0, Category.SCHEDULER, "remap", remap_id=1, paths=["A", "B"])
    _transition(bus, 10.2, "A", "healthy", "degraded")
    _transition(bus, 10.5, "A", "degraded", "failed", reason="probe timeout")
    bus.emit(10.6, Category.SCHEDULER, "quarantine", paths=["A"], usable=["B"])
    bus.emit(10.7, Category.SCHEDULER, "remap", remap_id=2, paths=["B"])
    bus.emit(
        12.0, Category.SERVICE, "window_shortfall",
        stream_id=1, stream="gridftp", window=120,
        delivered_mbps=1.0, required_mbps=4.0,
    )
    _transition(bus, 30.0, "A", "failed", "recovering")
    _transition(bus, 30.4, "A", "recovering", "healthy", reason="probe ok")
    bus.emit(
        31.0, Category.SERVICE, "window_shortfall",
        stream_id=1, stream="gridftp", window=310,
        delivered_mbps=3.0, required_mbps=4.0,
    )
    return bus


class TestRobustnessFigures:
    def test_detection_latency_first_off_healthy_transition(self):
        events = list(_outage_trace())
        latency = detection_latency_from_trace(events, ["A"], 10.0)
        assert latency == 10.2 - 10.0

    def test_detection_ignores_unfaulted_paths_and_pre_onset(self):
        events = list(_outage_trace())
        assert detection_latency_from_trace(events, ["B"], 10.0) is None
        assert detection_latency_from_trace(events, ["A"], 40.0) is None

    def test_recovery_latency_until_all_paths_healthy(self):
        events = list(_outage_trace())
        latency = recovery_latency_from_trace(events, ["A", "B"], 25.0)
        assert latency == 30.4 - 25.0

    def test_recovery_zero_when_already_healthy(self):
        bus = TraceBus()
        _transition(bus, 1.0, "A", "healthy", "failed")
        _transition(bus, 2.0, "A", "failed", "healthy")
        assert recovery_latency_from_trace(list(bus), ["A"], 5.0) == 0.0

    def test_recovery_none_when_a_path_never_heals(self):
        bus = TraceBus()
        _transition(bus, 1.0, "A", "healthy", "failed")
        assert recovery_latency_from_trace(list(bus), ["A"], 0.5) is None


class TestCausalChains:
    def test_explain_shortfall_orders_detect_quarantine_remap(self):
        events = list(_outage_trace())
        shortfall = guarantee_violations(events, stream="gridftp")[0]
        chain = explain_shortfall(events, shortfall)
        kinds = [(e.category, e.name) for e in chain]
        assert kinds == [
            (Category.HEALTH, "transition"),
            (Category.SCHEDULER, "quarantine"),
            (Category.SCHEDULER, "remap"),
            (Category.SERVICE, "window_shortfall"),
        ]
        # The detect link is the transition *into* quarantine, not the
        # earlier healthy->degraded step.
        assert chain[0].fields["new"] == "failed"
        assert chain[-1] is shortfall

    def test_healed_path_drops_out_of_later_chains(self):
        # The second shortfall happens after A healed: its chain must not
        # blame the long-resolved failure.
        events = list(_outage_trace())
        late = guarantee_violations(events, stream="gridftp")[-1]
        assert late.fields["window"] == 310
        chain = explain_shortfall(events, late)
        assert all(
            not (e.category == Category.HEALTH and e.fields.get("new") == "failed")
            for e in chain[:-1]
        )

    def test_lookback_limits_the_causal_window(self):
        events = list(_outage_trace())
        shortfall = guarantee_violations(events, stream="gridftp")[0]
        chain = explain_shortfall(events, shortfall, lookback=1.0)
        # Only the quarantine/remap at t=10.6/10.7 fall within 1 s of the
        # t=12.0 shortfall... which they don't; chain degrades to just
        # the shortfall itself.
        assert [e.name for e in chain] == ["window_shortfall"]

    def test_filters_by_stream_and_id(self):
        events = list(_outage_trace())
        assert len(guarantee_violations(events, stream="gridftp")) == 2
        assert len(guarantee_violations(events, stream_id=1)) == 2
        assert guarantee_violations(events, stream="other") == []
        assert guarantee_violations(events, stream_id=9) == []


class TestRendering:
    def test_render_chain_mentions_every_link(self):
        events = list(_outage_trace())
        shortfall = guarantee_violations(events, stream="gridftp")[0]
        text = render_chain(explain_shortfall(events, shortfall))
        assert "degraded -> failed" in text
        assert "quarantined=['A']" in text
        assert "remap #2" in text
        assert "stream 'gridftp' window 120" in text

    def test_summarize_counts_and_span(self):
        text = summarize(list(_outage_trace()))
        assert "spanning t=[0.00, 31.00]s" in text
        assert "health.transition" in text
        assert "service.window_shortfall" in text
        assert text.splitlines()[-1].split()[-1] == "2"

    def test_health_transitions_are_time_ordered(self):
        events = list(reversed(list(_outage_trace())))
        ts = [e.sim_time for e in health_transitions(events)]
        assert ts == sorted(ts)


class TestDropAccounting:
    def test_full_trace_reports_zero_dropped(self):
        from repro.obs.introspect import dropped_from_trace, summarize_dict

        events = list(_outage_trace())
        assert dropped_from_trace(events) == 0
        summary = summarize_dict(events)
        assert summary["dropped"] == 0
        assert summary["emitted"] == summary["events"]
        assert "dropped" not in summarize(events)

    def test_wrapped_trace_reports_drop_count(self):
        from repro.obs.introspect import dropped_from_trace, summarize_dict

        bus = TraceBus(capacity=3)
        for i in range(7):
            bus.emit(float(i), Category.ENGINE, "heap_compacted")
        events = list(bus)
        assert dropped_from_trace(events) == 4
        summary = summarize_dict(events)
        assert summary == {
            "events": 3,
            "emitted": 7,
            "dropped": 4,
            "t_min": 4.0,
            "t_max": 6.0,
            "counts": {"engine.heap_compacted": 3},
        }
        text = summarize(events)
        assert "4 older events dropped by the ring buffer" in text
        assert "7 emitted" in text

    def test_empty_trace(self):
        from repro.obs.introspect import dropped_from_trace, summarize_dict

        assert dropped_from_trace([]) == 0
        assert summarize_dict([])["emitted"] == 0
