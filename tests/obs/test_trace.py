"""Trace bus: ring-buffer semantics, filtering, JSONL persistence."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.events import CATEGORIES, EVENT_NAMES, Category, TraceEvent
from repro.obs.trace import NullTraceBus, TraceBus


class TestEmit:
    def test_sequence_numbers_are_monotone(self):
        bus = TraceBus()
        events = [
            bus.emit(float(i), Category.ENGINE, "heap_compacted")
            for i in range(5)
        ]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]
        assert bus.emitted == 5

    def test_unknown_category_rejected(self):
        bus = TraceBus()
        with pytest.raises(ConfigurationError):
            bus.emit(0.0, "nonsense", "boom")

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceBus(capacity=0)


class TestRingBuffer:
    def test_wraparound_drops_oldest_and_counts(self):
        bus = TraceBus(capacity=3)
        for i in range(5):
            bus.emit(float(i), Category.SERVICE, "stream_open", stream_id=i)
        assert len(bus) == 3
        assert bus.dropped == 2
        assert bus.emitted == 5
        # Only the newest three survive, in emission order.
        assert [e.stream_id for e in bus] == [2, 3, 4]
        assert [e.seq for e in bus] == [2, 3, 4]

    def test_exactly_at_capacity_drops_nothing(self):
        bus = TraceBus(capacity=3)
        for i in range(3):
            bus.emit(float(i), Category.HEALTH, "transition")
        assert len(bus) == 3
        assert bus.dropped == 0


class TestFiltering:
    def test_events_filters_compose(self):
        bus = TraceBus()
        bus.emit(0.0, Category.HEALTH, "transition", path="A")
        bus.emit(1.0, Category.HEALTH, "transition", path="B")
        bus.emit(2.0, Category.SCHEDULER, "remap", path="A")
        bus.emit(3.0, Category.SERVICE, "stream_open", stream_id=7)
        assert len(bus.events(category=Category.HEALTH)) == 2
        assert len(bus.events(path="A")) == 2
        assert len(bus.events(category=Category.HEALTH, path="A")) == 1
        assert bus.events(stream_id=7)[0].name == "stream_open"
        assert bus.events(name="remap")[0].category == Category.SCHEDULER


class TestJsonlRoundTrip:
    def test_every_registered_event_type_round_trips(self, tmp_path):
        # One event per (category, name) pair the repo emits, each with
        # every optional field populated, survives export -> load intact.
        bus = TraceBus()
        t = 0.0
        for category in CATEGORIES:
            for name in EVENT_NAMES[category]:
                bus.emit(
                    t,
                    category,
                    name,
                    stream_id=int(t),
                    path=f"P{int(t)}",
                    window=int(t),
                    note=f"{category}.{name}",
                )
                t += 1.0
        path = tmp_path / "trace.jsonl"
        written = bus.export_jsonl(path)
        loaded = TraceBus.load_jsonl(path)
        assert written == len(loaded) == sum(
            len(names) for names in EVENT_NAMES.values()
        )
        for original, copy in zip(bus, loaded):
            assert copy == original

    def test_null_join_keys_omitted_from_json_but_restored(self, tmp_path):
        bus = TraceBus()
        bus.emit(1.5, Category.ENGINE, "heap_compacted")
        line = next(iter(bus)).to_json()
        assert "stream_id" not in line and "path" not in line
        restored = TraceEvent.from_json(line)
        assert restored.stream_id is None
        assert restored.path is None
        assert restored.fields == {}

    def test_load_skips_blank_lines(self, tmp_path):
        bus = TraceBus()
        bus.emit(0.0, Category.HARNESS, "campaign_start")
        path = tmp_path / "trace.jsonl"
        path.write_text(
            next(iter(bus)).to_json() + "\n\n\n", encoding="utf-8"
        )
        assert len(TraceBus.load_jsonl(path)) == 1


class TestNullBus:
    def test_emit_records_nothing(self):
        bus = NullTraceBus()
        assert bus.emit(0.0, Category.ENGINE, "heap_compacted") is None
        assert len(bus) == 0
        assert list(bus) == []
        assert bus.events() == []
        assert bus.emitted == 0

    def test_export_writes_empty_file(self, tmp_path):
        bus = NullTraceBus()
        path = tmp_path / "trace.jsonl"
        assert bus.export_jsonl(path) == 0
        assert path.read_text(encoding="utf-8") == ""
        assert NullTraceBus.load_jsonl(path) == []
