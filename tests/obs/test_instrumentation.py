"""End-to-end instrumentation: sessions and chaos runs explain themselves.

These run real (small) workloads, so they double as the acceptance check
for the observability layer: the packet session emits consistent metrics
and trace events without perturbing the simulation, the chaos harness's
trace-derived robustness figures match its legacy transition-log
bookkeeping on the same seed, and ``tools/trace_report.py`` reconstructs
a guarantee violation as an ordered causal chain.
"""

import importlib.util
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.apps.smartpointer import smartpointer_streams
from repro.harness.chaos import (
    _detection_latency,
    _recovery_latency,
    run_chaos_campaign,
)
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import FaultCampaign, correlated_outage
from repro.obs import Observability, TraceBus
from repro.obs.events import Category
from repro.obs.introspect import explain_shortfall, guarantee_violations
from repro.transport.session import run_packet_session

TOOLS = Path(__file__).resolve().parents[2] / "tools"


@pytest.fixture(scope="module")
def realization():
    # Path B carries heavy cross-traffic so the degraded mapping after a
    # path-A outage still misses guarantees — the shortfalls whose causal
    # chains the report must reconstruct.
    testbed = make_figure8_testbed(
        profile_a="abilene-moderate", profile_b="wild"
    )
    return testbed.realize(seed=23, duration=120.0, dt=0.1)


@pytest.fixture(scope="module")
def outage_campaign():
    return FaultCampaign(
        faults=tuple(correlated_outage(["A"], start=30.0, duration=10.0)),
        name="outage-A-obs",
    )


@pytest.fixture(scope="module")
def chaos_report(realization, outage_campaign):
    return run_chaos_campaign(
        realization, smartpointer_streams(), outage_campaign, duration=90.0
    )


class TestSessionInstrumentation:
    @pytest.fixture(scope="class")
    def session_pair(self, realization):
        streams = smartpointer_streams()
        plain = run_packet_session(realization, streams, warmup_windows=15)
        obs = Observability()
        traced = run_packet_session(
            realization, streams, warmup_windows=15, obs=obs
        )
        return plain, traced, obs

    def test_observability_does_not_perturb_the_simulation(
        self, session_pair
    ):
        plain, traced, _ = session_pair
        assert traced.n_windows == plain.n_windows
        assert traced.sent == plain.sent
        assert traced.deadline_misses == plain.deadline_misses

    def test_engine_and_transport_metrics_are_consistent(self, session_pair):
        _, traced, obs = session_pair
        metrics = obs.metrics
        scheduled = metrics.get("engine.events_scheduled").value
        fired = metrics.get("engine.events_fired").value
        assert 0 < fired <= scheduled
        windows = metrics.get("transport.windows").value
        assert windows == traced.n_windows
        assert len(obs.trace.events(category=Category.TRANSPORT,
                                    name="window")) == windows
        assert metrics.get("transport.packets_delivered").value > 0
        # One metrics snapshot per window, stamped with sim time.
        assert len(metrics.snapshots) >= windows

    def test_streams_got_stable_ids(self, session_pair):
        _, _, obs = session_pair
        ids = obs.stream_ids()
        assert set(ids) == {s.name for s in smartpointer_streams()}
        assert sorted(ids.values()) == list(range(1, len(ids) + 1))

    def test_trace_round_trips_at_scale(self, session_pair, tmp_path):
        _, _, obs = session_pair
        out = tmp_path / "session.jsonl"
        written = obs.trace.export_jsonl(out)
        assert written == len(obs.trace)
        loaded = TraceBus.load_jsonl(out)
        assert [e.seq for e in loaded] == [e.seq for e in obs.trace]
        assert loaded[-1] == list(obs.trace)[-1]


class TestChaosTraceParity:
    def test_trace_figures_match_legacy_bookkeeping(
        self, chaos_report, outage_campaign, realization
    ):
        # The report's numbers are computed from the trace; the legacy
        # transition-log computation must agree exactly on the same run.
        legacy_detect = _detection_latency(
            list(chaos_report.transitions), outage_campaign
        )
        tracker_view = SimpleNamespace(
            machines={p: None for p in realization.path_names()},
            transitions=list(chaos_report.transitions),
        )
        legacy_recover = _recovery_latency(tracker_view, outage_campaign)
        assert chaos_report.time_to_detect == legacy_detect
        assert chaos_report.time_to_recover == legacy_recover
        assert chaos_report.detected and chaos_report.recovered

    def test_campaign_markers_bracket_the_trace(self, chaos_report):
        events = list(chaos_report.obs.trace)
        assert events[0].name == "campaign_start"
        end = [e for e in events if e.name == "campaign_end"]
        assert len(end) == 1
        assert end[0].fields["time_to_detect"] == chaos_report.time_to_detect
        assert end[0].fields["time_to_recover"] == (
            chaos_report.time_to_recover
        )

    def test_violation_reconstructs_as_ordered_causal_chain(
        self, chaos_report
    ):
        # At least one shortfall during the outage must explain itself as
        # health transition -> quarantine -> remap -> shortfall, in order.
        events = list(chaos_report.obs.trace)
        full_chains = []
        for shortfall in guarantee_violations(events):
            chain = explain_shortfall(events, shortfall)
            kinds = [(e.category, e.name) for e in chain]
            if (
                (Category.HEALTH, "transition") in kinds
                and (Category.SCHEDULER, "quarantine") in kinds
                and (Category.SCHEDULER, "remap") in kinds
                and kinds[-1] == (Category.SERVICE, "window_shortfall")
            ):
                full_chains.append(chain)
        assert full_chains, "no shortfall produced a complete causal chain"
        chain = full_chains[0]
        times = [(e.sim_time, e.seq) for e in chain]
        assert times == sorted(times)
        # Every link carries the join keys the report needs.
        assert chain[-1].stream_id is not None
        assert any(e.path is not None for e in chain)


class TestTraceReportCli:
    @pytest.fixture(scope="class")
    def trace_report(self):
        spec = importlib.util.spec_from_file_location(
            "trace_report", TOOLS / "trace_report.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @pytest.fixture(scope="class")
    def artifacts(self, chaos_report, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("obs")
        trace = tmp / "trace.jsonl"
        metrics = tmp / "metrics.json"
        chaos_report.obs.trace.export_jsonl(trace)
        chaos_report.obs.metrics.export_json(metrics)
        return trace, metrics

    def test_report_explains_shortfalls(
        self, trace_report, artifacts, capsys
    ):
        trace, metrics = artifacts
        rc = trace_report.main([str(trace), "--metrics", str(metrics)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time to detect (from trace)" in out
        assert "window_shortfall" in out
        assert "explaining" in out

    def test_report_fails_loudly_on_missing_window(
        self, trace_report, artifacts, capsys
    ):
        trace, _ = artifacts
        rc = trace_report.main(
            [str(trace), "--stream", "Atom", "--window", "999999"]
        )
        capsys.readouterr()
        assert rc == 1
