"""Prometheus exposition exporter: names, types, cumulative buckets."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    escape_label_value,
    export_metrics,
    export_prometheus,
    render_prometheus,
    sanitize_metric_name,
    split_labeled_counter,
)


def _registry():
    registry = MetricsRegistry()
    counter = registry.counter("engine.events_fired")
    counter.inc()
    counter.inc(2)
    registry.gauge("engine.heap_depth").set(17)
    histogram = registry.histogram("service.latency", bounds=[1.0, 5.0])
    for value in (0.5, 0.5, 3.0, 100.0):
        histogram.observe(value)
    return registry


class TestNames:
    def test_dots_become_underscores_with_namespace(self):
        assert (
            sanitize_metric_name("engine.events_fired")
            == "repro_engine_events_fired"
        )

    def test_invalid_characters_replaced(self):
        assert (
            sanitize_metric_name("admission.ok.tenant.gold-1", namespace="")
            == "admission_ok_tenant_gold_1"
        )

    def test_leading_digit_gets_underscore(self):
        assert sanitize_metric_name("9lives", namespace="") == "_9lives"


class TestRender:
    def test_counter_gets_total_suffix_and_type(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_engine_events_fired_total counter" in text
        assert "repro_engine_events_fired_total 3" in text

    def test_gauge_sample(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_engine_heap_depth gauge" in text
        assert "repro_engine_heap_depth 17" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = render_prometheus(_registry()).splitlines()
        buckets = [
            line for line in lines if "repro_service_latency_bucket" in line
        ]
        assert buckets == [
            'repro_service_latency_bucket{le="1"} 2',
            'repro_service_latency_bucket{le="5"} 3',
            'repro_service_latency_bucket{le="+Inf"} 4',
        ]
        assert "repro_service_latency_sum 104" in lines
        assert "repro_service_latency_count 4" in lines

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_every_line_is_sample_or_comment(self):
        for line in render_prometheus(_registry()).splitlines():
            assert line.startswith("#") or len(line.split(" ")) == 2


class TestLabelEscaping:
    def test_backslash_quote_and_newline_escaped(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_backslash_escaped_before_its_own_escapes(self):
        # A literal backslash-n must not collapse into a newline escape.
        assert escape_label_value("\\n") == "\\\\n"

    def test_plain_values_pass_through(self):
        assert escape_label_value("gold") == "gold"


class TestLabeledCounters:
    def test_split_recognizes_tenant_and_partition(self):
        assert split_labeled_counter("admission.ok.tenant.gold") == (
            "admission.ok",
            "tenant",
            "gold",
        )
        assert split_labeled_counter("admission.ok.partition.p0") == (
            "admission.ok",
            "partition",
            "p0",
        )
        assert split_labeled_counter("admission.ok") == (
            "admission.ok",
            None,
            None,
        )

    def test_tenant_counters_render_as_one_labeled_family(self):
        registry = MetricsRegistry()
        registry.counter("admission.admitted").inc(3)
        registry.counter("admission.admitted.tenant.gold").inc(2)
        registry.counter("admission.admitted.tenant.silver").inc()
        lines = render_prometheus(registry).splitlines()
        family = [
            line for line in lines if "admission_admitted" in line
        ]
        assert family == [
            "# HELP repro_admission_admitted_total admission.admitted",
            "# TYPE repro_admission_admitted_total counter",
            "repro_admission_admitted_total 3",
            'repro_admission_admitted_total{tenant="gold"} 2',
            'repro_admission_admitted_total{tenant="silver"} 1',
        ]

    def test_hostile_tenant_name_is_escaped_in_place(self):
        registry = MetricsRegistry()
        registry.counter('admission.ok.tenant.ev\\il"t\nen').inc()
        text = render_prometheus(registry)
        assert (
            'repro_admission_ok_total{tenant="ev\\\\il\\"t\\nen"} 1'
            in text
        )
        # The raw newline must never reach the exposition text.
        assert all("\t" not in line for line in text.splitlines())
        assert text.count("\n") == len(text.splitlines())

    def test_labeled_family_without_base_counter_still_typed(self):
        registry = MetricsRegistry()
        registry.counter("shed.count.partition.bronze").inc()
        lines = render_prometheus(registry).splitlines()
        assert "# TYPE repro_shed_count_total counter" in lines
        assert (
            'repro_shed_count_total{partition="bronze"} 1' in lines
        )


class TestExport:
    def test_export_prometheus_writes_rendered_text(self, tmp_path):
        path = tmp_path / "metrics.prom"
        text = export_prometheus(_registry(), path)
        assert path.read_text() == text

    def test_export_metrics_auto_picks_by_extension(self, tmp_path):
        registry = _registry()
        prom = tmp_path / "metrics.prom"
        assert export_metrics(registry, prom) == "prometheus"
        assert "# TYPE" in prom.read_text()
        js = tmp_path / "metrics.json"
        assert export_metrics(registry, js) == "json"
        assert js.read_text().lstrip().startswith("{")

    def test_export_metrics_explicit_format_wins(self, tmp_path):
        path = tmp_path / "metrics.json"
        assert export_metrics(_registry(), path, fmt="prometheus") == (
            "prometheus"
        )
        assert "# TYPE" in path.read_text()

    def test_export_metrics_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_metrics(_registry(), tmp_path / "m.out", fmt="xml")
