"""Perf ledger: harvesting, regression gating, noise widening."""

import json

import pytest

from repro.obs.ledger import (
    HEADLINE_METRICS,
    PerfLedger,
    collect_headline_metrics,
    machine_fingerprint,
    make_entry,
)

MACHINE = {"id": "aaaabbbbcccc"}
OTHER_MACHINE = {"id": "ddddeeeeffff"}


def _entry(metrics, machine=MACHINE):
    return {"schema": 1, "machine": machine, "metrics": metrics}


def _ledger(tmp_path, entries):
    ledger = PerfLedger(tmp_path / "LEDGER.jsonl")
    for entry in entries:
        ledger.append(entry)
    return ledger


def _finding(findings, metric):
    return next(f for f in findings if f.metric == metric)


class TestHarvest:
    def test_collects_from_real_results_dir(self, tmp_path):
        (tmp_path / "BENCH_cdf.json").write_text(json.dumps(
            {"latest": {"incremental_us_per_cycle": 9.5, "speedup": 8.0}}
        ))
        metrics = collect_headline_metrics(tmp_path)
        assert metrics == {
            "cdf.incremental_us_per_cycle": 9.5,
            "cdf.speedup": 8.0,
        }

    def test_missing_files_and_keys_are_skipped(self, tmp_path):
        (tmp_path / "BENCH_runner.json").write_text(
            json.dumps({"latest": {}})
        )
        assert collect_headline_metrics(tmp_path) == {}

    def test_make_entry_is_stamped_and_appendable(self, tmp_path):
        (tmp_path / "BENCH_runner.json").write_text(
            json.dumps({"latest": {"speedup": 1.4}})
        )
        entry = make_entry(tmp_path, note="unit test")
        assert entry["metrics"] == {"runner.speedup": 1.4}
        assert entry["machine"]["id"] == machine_fingerprint()["id"]
        assert entry["note"] == "unit test"
        ledger = _ledger(tmp_path, [entry])
        assert ledger.entries() == [entry]


class TestCheck:
    def test_empty_ledger_is_vacuously_green(self, tmp_path):
        ledger = PerfLedger(tmp_path / "LEDGER.jsonl")
        assert ledger.check() == []
        assert "vacuously" in PerfLedger.render([])

    def test_single_entry_has_no_baseline(self, tmp_path):
        ledger = _ledger(
            tmp_path, [_entry({"scale.sessions_per_sec": 90.0})]
        )
        findings = ledger.check()
        assert len(findings) == 1
        assert findings[0].baseline is None
        assert not findings[0].regressed

    def test_higher_is_better_regression_detected(self, tmp_path):
        # Throughput drops 20% against a stable trajectory: regression.
        history = [100.0, 101.0, 99.0]
        ledger = _ledger(tmp_path, [
            *[_entry({"scale.sessions_per_sec": v}) for v in history],
            _entry({"scale.sessions_per_sec": 80.0}),
        ])
        finding = _finding(ledger.check(), "scale.sessions_per_sec")
        assert finding.regressed
        assert finding.change == pytest.approx(100.0 / 80.0 - 1.0)

    def test_lower_is_better_regression_detected(self, tmp_path):
        history = [10.0, 10.1, 9.9]
        ledger = _ledger(tmp_path, [
            *[_entry({"cdf.incremental_us_per_cycle": v}) for v in history],
            _entry({"cdf.incremental_us_per_cycle": 13.0}),
        ])
        assert _finding(
            ledger.check(), "cdf.incremental_us_per_cycle"
        ).regressed

    def test_improvement_passes(self, tmp_path):
        ledger = _ledger(tmp_path, [
            _entry({"scale.sessions_per_sec": 100.0}),
            _entry({"scale.sessions_per_sec": 130.0}),
        ])
        finding = _finding(ledger.check(), "scale.sessions_per_sec")
        assert not finding.regressed
        assert finding.change < 0

    def test_noisy_history_widens_the_budget(self, tmp_path):
        # 40% spread in history: a 50% drop still fits 2x spread; the
        # same drop against a quiet history regresses.
        noisy = [100.0, 140.0, 120.0]
        ledger = _ledger(tmp_path, [
            *[_entry({"scale.sessions_per_sec": v}) for v in noisy],
            _entry({"scale.sessions_per_sec": 80.0}),
        ])
        finding = _finding(ledger.check(), "scale.sessions_per_sec")
        assert finding.budget == pytest.approx(0.8)
        assert not finding.regressed

    def test_other_machines_are_excluded_from_history(self, tmp_path):
        ledger = _ledger(tmp_path, [
            _entry({"scale.sessions_per_sec": 500.0}, OTHER_MACHINE),
            _entry({"scale.sessions_per_sec": 100.0}),
        ])
        finding = _finding(ledger.check(), "scale.sessions_per_sec")
        # Only the fast machine's entry exists as history, and it is
        # another machine's: no baseline, no false regression.
        assert finding.baseline is None
        assert not finding.regressed

    def test_window_limits_the_history(self, tmp_path):
        values = [200.0, 100.0, 100.0, 100.0]
        ledger = _ledger(tmp_path, [
            *[_entry({"scale.sessions_per_sec": v}) for v in values],
            _entry({"scale.sessions_per_sec": 99.0}),
        ])
        finding = _finding(ledger.check(window=3), "scale.sessions_per_sec")
        assert finding.baseline == pytest.approx(100.0)
        assert not finding.regressed

    def test_unregistered_metrics_never_gate(self, tmp_path):
        ledger = _ledger(tmp_path, [
            _entry({"made.up_metric": 1.0}),
            _entry({"made.up_metric": 99.0}),
        ])
        assert ledger.check() == []

    def test_render_names_the_regression(self, tmp_path):
        ledger = _ledger(tmp_path, [
            _entry({"obs.guard_ns": 10.0}),
            _entry({"obs.guard_ns": 50.0}),
        ])
        findings = ledger.check()
        text = PerfLedger.render(findings)
        assert "REGRESSED" in text
        assert "obs.guard_ns" in text


class TestRegistry:
    def test_every_metric_declares_a_direction(self):
        for metric, (filename, path, direction) in HEADLINE_METRICS.items():
            assert direction in ("lower", "higher"), metric
            assert filename.startswith("BENCH_"), metric
            assert len(path) >= 2, metric
