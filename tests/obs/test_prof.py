"""Span profiler: nesting, self time, determinism, and the null path."""

import json

import pytest

from repro.obs.context import NULL_OBS, Observability
from repro.obs.prof import (
    NULL_PROFILER,
    NullSpanProfiler,
    ProfileReport,
    SpanProfiler,
)


def _rows_by_path(report):
    return {row["path"]: row for row in report.rows}


class TestSpanTree:
    def test_nested_spans_build_parent_child_rows(self):
        prof = SpanProfiler()
        with prof.span("outer"):
            with prof.span("inner"):
                pass
            with prof.span("inner"):
                pass
        rows = _rows_by_path(prof.report())
        assert set(rows) == {"outer", "outer/inner"}
        assert rows["outer"]["count"] == 1
        assert rows["outer/inner"]["count"] == 2
        assert rows["outer/inner"]["depth"] == 1

    def test_same_name_under_different_parents_is_two_nodes(self):
        prof = SpanProfiler()
        with prof.span("a"):
            with prof.span("shared"):
                pass
        with prof.span("b"):
            with prof.span("shared"):
                pass
        rows = _rows_by_path(prof.report())
        assert "a/shared" in rows and "b/shared" in rows

    def test_self_time_excludes_children(self):
        prof = SpanProfiler()
        with prof.span("outer"):
            with prof.span("inner"):
                pass
        rows = _rows_by_path(prof.report())
        outer = rows["outer"]
        inner = rows["outer/inner"]
        assert outer["self_ns"] == outer["cum_ns"] - inner["cum_ns"]
        assert outer["cum_ns"] >= inner["cum_ns"]

    def test_recursion_reuses_one_handle(self):
        prof = SpanProfiler()
        span = prof.span("recurse")

        def go(depth):
            with span:
                if depth:
                    go(depth - 1)

        go(3)
        rows = _rows_by_path(prof.report())
        # Each recursion level is a distinct tree node, one call each.
        assert rows["recurse"]["count"] == 1
        assert rows["recurse/recurse/recurse/recurse"]["count"] == 1

    def test_decorator_counts_calls_and_propagates_exceptions(self):
        prof = SpanProfiler()

        @prof.span("job")
        def job(fail=False):
            if fail:
                raise ValueError("boom")
            return 42

        assert job() == 42
        with pytest.raises(ValueError):
            job(fail=True)
        rows = _rows_by_path(prof.report())
        assert rows["job"]["count"] == 2
        # The stack unwound cleanly despite the exception.
        assert prof._current is prof._root

    def test_virtual_clock_accrues_simulated_seconds(self):
        clock = {"t": 0.0}
        prof = SpanProfiler(clock=lambda: clock["t"])
        with prof.span("step"):
            clock["t"] = 2.5
        rows = _rows_by_path(prof.report())
        assert rows["step"]["virtual_s"] == pytest.approx(2.5)

    def test_coverage_attributes_span_time(self):
        prof = SpanProfiler()
        with prof.span("work"):
            sum(range(10000))
        report = prof.report()
        assert 0.0 < report.coverage <= 1.0


class TestStructureDeterminism:
    def _run(self, order):
        prof = SpanProfiler()
        for name in order:
            with prof.span("run"):
                with prof.span(name):
                    pass
        return prof

    def test_same_call_sequence_same_digest(self):
        a = self._run(["x", "y", "x"])
        b = self._run(["x", "y", "x"])
        assert a.structure_digest() == b.structure_digest()
        assert a.structure() == b.structure()

    def test_different_counts_different_digest(self):
        a = self._run(["x", "y"])
        b = self._run(["x", "y", "y"])
        assert a.structure_digest() != b.structure_digest()

    def test_structure_is_json_canonicalizable(self):
        prof = self._run(["x"])
        text = json.dumps(prof.structure(), sort_keys=True)
        assert "cum_ns" not in text  # timing-free by construction

    def test_seeded_workload_runs_have_identical_structure(self):
        from repro.workload.scenarios import make_scenario, run_scale_scenario

        scenario = make_scenario("baseline", duration=5.0)

        def profiled_run():
            obs = Observability(profile=True)
            report = run_scale_scenario(
                scenario, seed=3, max_sessions=10, obs=obs
            )
            return report.checksum(), obs.prof.structure_digest()

        checksum_a, digest_a = profiled_run()
        checksum_b, digest_b = profiled_run()
        assert digest_a == digest_b
        assert checksum_a == checksum_b

    def test_profiling_does_not_change_report_checksum(self):
        from repro.workload.scenarios import make_scenario, run_scale_scenario

        scenario = make_scenario("baseline", duration=5.0)
        plain = run_scale_scenario(scenario, seed=3, max_sessions=10)
        profiled = run_scale_scenario(
            scenario,
            seed=3,
            max_sessions=10,
            obs=Observability(profile=True),
        )
        assert plain.checksum() == profiled.checksum()


class TestNullPath:
    def test_null_obs_profiler_is_disabled(self):
        assert NULL_OBS.prof.enabled is False
        assert NULL_OBS.prof is NULL_PROFILER

    def test_enabled_obs_defaults_to_null_profiler(self):
        obs = Observability()
        assert obs.prof is NULL_PROFILER
        obs = Observability(profile=True)
        assert isinstance(obs.prof, SpanProfiler)

    def test_null_span_is_inert_and_shared(self):
        prof = NullSpanProfiler()
        span = prof.span("anything")
        assert span is prof.span("other")
        with span:
            pass
        assert prof.report().rows == []

    def test_null_decorator_returns_function_unchanged(self):
        def fn():
            return 1

        assert NULL_PROFILER.span("x")(fn) is fn


class TestProfileReport:
    def _report(self):
        prof = SpanProfiler()
        with prof.span("svc.step"):
            with prof.span("cdf.update"):
                pass
        return prof.report()

    def test_subsystems_group_by_dotted_prefix(self):
        groups = self._report().subsystems()
        assert set(groups) == {"svc", "cdf"}
        assert groups["svc"]["calls"] == 1

    def test_roundtrips_through_dict(self):
        report = self._report()
        clone = ProfileReport.from_dict(report.to_dict())
        assert clone.rows == report.rows
        assert clone.structure_digest == report.structure_digest
        assert clone.total_wall_ns == report.total_wall_ns

    def test_export_json(self, tmp_path):
        path = tmp_path / "profile.json"
        self._report().export_json(path)
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        assert {r["path"] for r in data["spans"]} == {
            "svc.step",
            "svc.step/cdf.update",
        }

    def test_render_variants(self):
        report = self._report()
        assert "svc.step" in report.render()
        assert "| `svc.step` |" in report.render_markdown()
