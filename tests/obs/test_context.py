"""Observability context: enabled/disabled wiring and stream-ID joins."""

from repro.obs import (
    NULL_OBS,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTraceBus,
    Observability,
    TraceBus,
)


class TestConstruction:
    def test_enabled_context_gets_real_components(self):
        obs = Observability()
        assert obs.enabled is True
        assert isinstance(obs.trace, TraceBus)
        assert isinstance(obs.metrics, MetricsRegistry)

    def test_disabled_context_gets_null_components(self):
        obs = Observability(enabled=False)
        assert obs.enabled is False
        assert isinstance(obs.trace, NullTraceBus)
        assert isinstance(obs.metrics, NullMetricsRegistry)

    def test_disabled_classmethod_is_the_shared_null_context(self):
        assert Observability.disabled() is NULL_OBS
        assert NULL_OBS.enabled is False

    def test_trace_capacity_is_forwarded(self):
        obs = Observability(trace_capacity=4)
        assert obs.trace.capacity == 4


class TestStreamIds:
    def test_bind_and_lookup(self):
        obs = Observability()
        obs.bind_stream("gridftp", 1)
        obs.bind_streams({"video": 2, "audio": 3})
        assert obs.stream_id("gridftp") == 1
        assert obs.stream_id("video") == 2
        assert obs.stream_id("missing") is None
        assert obs.stream_ids() == {"gridftp": 1, "video": 2, "audio": 3}

    def test_stream_ids_returns_a_copy(self):
        obs = Observability()
        obs.bind_stream("a", 1)
        table = obs.stream_ids()
        table["b"] = 2
        assert obs.stream_id("b") is None

    def test_binding_into_null_context_is_a_silent_noop(self):
        # NULL_OBS is process-wide; it must never accumulate state.
        NULL_OBS.bind_stream("leak", 99)
        NULL_OBS.bind_streams({"leak2": 100})
        assert NULL_OBS.stream_id("leak") is None
        assert NULL_OBS.stream_ids() == {}
