"""The API-reference generator works and the committed copy is fresh."""

import sys
from pathlib import Path

ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import gen_api_docs  # noqa: E402


class TestGenerator:
    def test_renders_key_apis(self):
        text = gen_api_docs.render()
        for needle in (
            "class `PGOSScheduler`",
            "probabilistic_guarantee",
            "violation_bound",
            "class `EmpiricalCDF`",
            "make_figure8_testbed",
            "run_schedule_experiment",
            "class `DWCSScheduler`",
        ):
            assert needle in text, needle

    def test_every_section_has_summary_or_entries(self):
        text = gen_api_docs.render()
        # No empty headers: every '## `module`' block carries content.
        blocks = text.split("## ")[1:]
        for block in blocks:
            assert "- " in block or block.strip().count("\n") >= 1

    def test_committed_copy_is_current(self):
        committed = (ROOT / "docs" / "api.md").read_text(encoding="utf-8")
        assert committed == gen_api_docs.render(), (
            "docs/api.md is stale; regenerate with "
            "`python tools/gen_api_docs.py`"
        )
