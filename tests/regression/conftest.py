"""Shared canonical-run fixtures for the golden regression suite.

One session-scoped pass runs every canonical fast-mode figure through
the PR-3 runner (inline workers, content-addressed cache in a session
tmp dir) and hands the payloads to all regression tests — the suite
costs one fast sweep (~seconds), not one per test.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.runner import ResultCache, figure_suite, run_specs
from repro.runner.cache import payload_digest

GOLDENS_PATH = Path(__file__).parent / "goldens.json"


@pytest.fixture(scope="session")
def goldens() -> dict:
    data = json.loads(GOLDENS_PATH.read_text(encoding="utf-8"))
    assert data["schema"] == 1 and data["fast"] is True
    return data


@pytest.fixture(scope="session")
def canonical_payloads(tmp_path_factory) -> dict[str, dict]:
    """Payloads of every canonical fast figure, keyed by spec name."""
    cache = ResultCache(tmp_path_factory.mktemp("regression-cache"))
    report = run_specs(figure_suite(fast=True), workers=0, cache=cache)
    payloads = {}
    for outcome in report.outcomes:
        assert outcome.status == "ok", (
            f"{outcome.spec.name}: {outcome.status} ({outcome.error})"
        )
        payloads[outcome.spec.name] = outcome.payload
    return payloads


@pytest.fixture(scope="session")
def canonical_digests(canonical_payloads) -> dict[str, str]:
    return {
        name: payload_digest(payload)
        for name, payload in canonical_payloads.items()
    }


@pytest.fixture(scope="session")
def measured(canonical_payloads):
    """Accessor for a figure's measured-quantity dict."""

    def _get(figure: str) -> dict[str, float]:
        return canonical_payloads[f"{figure}-fast"]["measured"]

    return _get
