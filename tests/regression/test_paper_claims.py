"""Golden regression suite: the paper's headline claims, pinned.

Two layers of protection:

1. **Digest pinning** — every canonical fast-mode figure payload must
   hash to the digest recorded in ``goldens.json``.  Any code change
   that shifts a single byte of experiment output fails here; refresh
   intentionally with ``tools/refresh_goldens.py`` and explain the shift
   in the same commit.
2. **Ordering claims** — even if goldens are refreshed, the *qualitative*
   results the paper rests on must keep holding: PGOS beats the
   fair-queueing baselines on violation rate and stability, tracks the
   offline-optimal schedule (OptSched), and the IQ-Paths GridFTP client
   beats stock GridFTP on predictability.  These assert on the measured
   quantities themselves, so a refresh that flips a conclusion still
   fails loudly.
"""

import re

import pytest


class TestGoldenDigests:
    def test_every_canonical_figure_matches_golden(
        self, canonical_digests, goldens
    ):
        mismatches = {
            name: (digest, goldens["digests"].get(name))
            for name, digest in canonical_digests.items()
            if goldens["digests"].get(name) != digest
        }
        assert not mismatches, (
            "canonical payload digests diverged from goldens.json "
            f"(intentional? run tools/refresh_goldens.py): {mismatches}"
        )

    def test_golden_set_is_exactly_the_canonical_suite(
        self, canonical_digests, goldens
    ):
        assert set(goldens["digests"]) == set(canonical_digests)


class TestSchedulerOrderingClaims:
    """Figures 9-11 + ablations: PGOS vs WFQ/MSFQ and its own ablations."""

    def test_pgos_steadier_than_msfq(self, measured):
        fig11 = measured("fig11")
        assert fig11["pgos_bond1_std"] < fig11["msfq_bond1_std"]
        assert fig11["pgos_jitter_ms"] < fig11["msfq_jitter_ms"]

    def test_pgos_holds_target_rate_longer(self, measured):
        fig11 = measured("fig11")
        assert fig11["pgos_bond1_p95_time"] > fig11["msfq_bond1_p95_time"]
        fig10 = measured("fig10")
        assert (
            fig10["pgos_bond1_attainment_p95"]
            > fig10["msfq_bond1_attainment_p95"]
        )

    def test_pgos_violation_rate_below_baselines(self, measured):
        """The paper's core claim: guaranteed streams miss less under PGOS."""
        fig10 = measured("fig10")
        pgos_violations = 1.0 - fig10["pgos_bond1_attainment_p95"]
        msfq_violations = 1.0 - fig10["msfq_bond1_attainment_p95"]
        assert pgos_violations < msfq_violations
        assert pgos_violations <= 0.05  # within the requested P=0.95

    def test_cdf_placement_beats_mean_prediction(self, measured):
        abl = measured("ablations")
        assert (
            abl["pgos_crit_attainment_p95"]
            > abl["meanpred_crit_attainment_p95"]
        )

    def test_single_first_beats_even_split(self, measured):
        abl = measured("ablations")
        assert abl["single_first_bond1_std"] < abl["even_split_bond1_std"]
        assert abl["single_first_bond1_miss"] < abl["even_split_bond1_miss"]

    def test_ks_threshold_modulates_remap_frequency(self, measured):
        abl = measured("ablations")
        assert abl["remaps_at_ks_0.05"] > abl["remaps_at_ks_0.5"]


class TestOptSchedGap:
    """Figure 9: PGOS must track the offline-optimal schedule."""

    ROW = re.compile(
        r"^(WFQ|MSFQ|PGOS|OptSched)\s+"
        r"([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)\s*$"
    )

    def _stream_table(self, report: str) -> dict[str, dict[str, float]]:
        rows = {}
        for line in report.splitlines():
            m = self.ROW.match(line.strip())
            if m:
                algo, am, astd, bm, bstd, b2m = m.groups()
                rows[algo] = {
                    "atom_mean": float(am),
                    "atom_std": float(astd),
                    "bond1_mean": float(bm),
                    "bond1_std": float(bstd),
                    "bond2_mean": float(b2m),
                }
        return rows

    @pytest.fixture
    def table(self, canonical_payloads):
        rows = self._stream_table(canonical_payloads["fig9-fast"]["report"])
        assert {"WFQ", "MSFQ", "PGOS", "OptSched"} <= set(rows), (
            f"fig9 stream table missing rows: {sorted(rows)}"
        )
        return rows

    def test_pgos_mean_matches_optsched(self, table):
        for stream in ("atom_mean", "bond1_mean", "bond2_mean"):
            gap = abs(table["PGOS"][stream] - table["OptSched"][stream])
            assert gap <= 0.01 * max(table["OptSched"][stream], 1.0), (
                f"PGOS {stream} {table['PGOS'][stream]} vs OptSched "
                f"{table['OptSched'][stream]}"
            )

    def test_pgos_std_gap_to_optsched_bounded(self, table):
        # OptSched (offline, clairvoyant) lower-bounds the variance; PGOS
        # must stay within a small absolute gap of it on guaranteed streams
        # while MSFQ does not.
        for stream in ("atom_std", "bond1_std"):
            pgos_gap = table["PGOS"][stream] - table["OptSched"][stream]
            msfq_gap = table["MSFQ"][stream] - table["OptSched"][stream]
            assert 0.0 <= pgos_gap <= 0.5
            assert pgos_gap < msfq_gap

    def test_wfq_underdelivers_guaranteed_streams(self, table):
        assert table["WFQ"]["bond1_mean"] < table["OptSched"]["bond1_mean"]


class TestApplicationClaims:
    """Figures 12-13 + video: the paper's application-level results."""

    def test_iqpg_more_predictable_than_gridftp(self, measured):
        fig12 = measured("fig12")
        assert fig12["iqpg_dt1_std"] < fig12["gridftp_dt1_std"]
        fig13 = measured("fig13")
        assert (
            fig13["iqpg_dt1_attainment_p95"]
            > fig13["gridftp_dt1_attainment_p95"]
        )

    def test_video_stalls_and_quality_variance(self, measured):
        video = measured("video")
        assert video["pgos_stall_fraction"] < video["msfq_stall_fraction"]
        assert video["pgos_quality_std"] < video["msfq_quality_std"]

    def test_percentile_prediction_failure_controlled(self, measured):
        fig4 = measured("fig4")
        # Lemma-1 reads must fail at most ~the allowed rate; mean
        # prediction errors blow past 20% far more often.
        assert fig4["percentile_failure_rate_max"] <= 0.10
        assert (
            fig4["fraction_mean_errors_above_20pct"]
            > fig4["percentile_failure_rate_avg"]
        )

    def test_load_sweep_orderings(self, measured):
        sweep = measured("sweep")
        assert sweep["pgos_attainment_at_nominal_load"] >= 0.99
        assert (
            sweep["attainment_with_15pct_probe_noise"]
            < sweep["pgos_attainment_at_nominal_load"]
        )
