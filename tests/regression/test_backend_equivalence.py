"""The incremental CDF backend must not change one byte of any figure.

The canonical payload digests in ``goldens.json`` are produced with the
default (incremental) backend.  This test re-runs the whole canonical
fast suite in a subprocess with ``REPRO_CDF_BACKEND=batch`` — the seed's
re-sorting implementation — and requires the identical digests.  A
subprocess is required (not a monkeypatched env var) because figure
results are memoized in-process; the backend choice must be fixed before
any experiment code runs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

DIGEST_SCRIPT = """
import json
from repro.runner import figure_suite, run_specs
from repro.runner.cache import payload_digest

report = run_specs(figure_suite(fast=True), workers=0)
out = {}
for o in report.outcomes:
    assert o.status == "ok", (o.spec.name, o.status, o.error)
    out[o.spec.name] = payload_digest(o.payload)
print(json.dumps(out))
"""


def _digests_with_backend(backend: str) -> dict[str, str]:
    env = dict(os.environ)
    env["REPRO_CDF_BACKEND"] = backend
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", DIGEST_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, (
        f"backend={backend} run failed:\n{proc.stderr[-2000:]}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_batch_backend_reproduces_goldens(goldens):
    digests = _digests_with_backend("batch")
    assert digests == goldens["digests"], (
        "batch (seed) backend produced different figure payloads than the "
        "golden digests recorded with the incremental backend — the "
        "backends have diverged"
    )
