"""Property-based tests: resource-mapping invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AdmissionError
from repro.core.mapping import best_effort_mapping, compute_mapping
from repro.core.spec import StreamSpec
from repro.monitoring.cdf import EmpiricalCDF

# Random two-path environments: (mean, std) per path, seeded samples.
path_params = st.tuples(
    st.floats(min_value=5.0, max_value=80.0),
    st.floats(min_value=0.5, max_value=15.0),
)


def make_cdfs(params, seed):
    rng = np.random.default_rng(seed)
    return {
        f"P{i}": EmpiricalCDF(
            np.clip(mean + std * rng.standard_normal(400), 0.0, None)
        )
        for i, (mean, std) in enumerate(params)
    }


spec_params = st.tuples(
    st.floats(min_value=0.5, max_value=60.0),  # required_mbps
    st.floats(min_value=0.5, max_value=0.99),  # probability
)


@st.composite
def scenarios(draw):
    paths = draw(st.lists(path_params, min_size=1, max_size=3))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    specs = []
    for i, (mbps, p) in enumerate(
        draw(st.lists(spec_params, min_size=1, max_size=3))
    ):
        specs.append(
            StreamSpec(name=f"s{i}", required_mbps=mbps, probability=p)
        )
    add_elastic = draw(st.booleans())
    if add_elastic:
        specs.append(
            StreamSpec(name="elastic", elastic=True, nominal_mbps=10.0)
        )
    return make_cdfs(paths, seed), specs


class TestMappingInvariants:
    @given(scenarios())
    @settings(max_examples=60, deadline=None)
    def test_admitted_mappings_are_sound(self, scenario):
        cdfs, specs = scenario
        try:
            mapping = compute_mapping(specs, cdfs, tw=1.0)
        except AdmissionError:
            return  # rejection is a legal outcome; soundness is vacuous
        for spec in specs:
            if spec.elastic:
                continue
            # Rates conserve the requirement.
            assert mapping.total_rate(spec.name) >= spec.required_mbps - 1e-6
            # The reported guarantee honours the request.
            achieved = mapping.achieved_probability[spec.name]
            assert spec.probability - 1e-9 <= achieved <= 1.0
            # Packet counts cover the required rate.
            pkts = sum(mapping.packets[spec.name].values())
            assert pkts >= spec.packets_in_window(1.0) - 1
        # No stream is mapped onto unknown paths.
        for shares in mapping.rates_mbps.values():
            assert set(shares) <= set(cdfs)

    @given(scenarios())
    @settings(max_examples=60, deadline=None)
    def test_best_effort_never_raises_and_is_complete(self, scenario):
        cdfs, specs = scenario
        mapping = best_effort_mapping(specs, cdfs, tw=1.0)
        for spec in specs:
            if spec.elastic:
                continue
            assert mapping.total_rate(spec.name) >= spec.required_mbps - 1e-6
            assert 0.0 <= mapping.achieved_probability[spec.name] <= 1.0

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_best_effort_never_beats_honesty(self, scenario):
        """Best-effort reports at most what compute_mapping guarantees.

        When the strict mapping succeeds, its per-stream guarantees come
        from the same CDFs, so best-effort (single-path only) cannot
        report a *higher* probability for the most important stream than
        the strict mapping achieves for it.
        """
        cdfs, specs = scenario
        try:
            strict = compute_mapping(specs, cdfs, tw=1.0)
        except AdmissionError:
            return
        loose = best_effort_mapping(specs, cdfs, tw=1.0)
        first = max(
            (s for s in specs if not s.elastic),
            key=lambda s: (s.probability, s.required_mbps),
            default=None,
        )
        if first is None:
            return
        assert (
            loose.achieved_probability[first.name]
            <= strict.achieved_probability[first.name] + 1e-9
        )
