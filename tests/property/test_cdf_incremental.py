"""Differential property tests: incremental window vs batch EmpiricalCDF.

The incremental structure's contract is *bit-identity*, not approximate
agreement: every query on :class:`IncrementalWindowCDF` must return the
exact float a freshly rebuilt :class:`EmpiricalCDF` over the same window
contents would.  Hypothesis drives random update/extend sequences (with
duplicates, negative values, zeros, and tiny/huge magnitudes) against a
``deque(maxlen=window)`` mirror and compares every query class.

``derandomize=True`` keeps the suite reproducible run-to-run — these
tests also gate the golden regression suite's byte-identity claim, so
they must themselves be deterministic.
"""

from collections import deque

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring.cdf import EmpiricalCDF, ks_distance
from repro.monitoring.incremental import IncrementalWindowCDF

value_strategy = st.one_of(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
    st.sampled_from([0.0, -0.0, 1.0, 1.0, 50.0]),  # force collisions
)

stream_strategy = st.lists(value_strategy, min_size=1, max_size=120)

window_strategy = st.integers(min_value=2, max_value=30)


def _rebuild(mirror: deque) -> EmpiricalCDF:
    return EmpiricalCDF(list(mirror))


@settings(derandomize=True, max_examples=60)
@given(stream_strategy, window_strategy)
def test_window_contents_match_mirror(values, window):
    inc = IncrementalWindowCDF(window=window)
    mirror: deque = deque(maxlen=window)
    for v in values:
        inc.update(v)
        mirror.append(0.0 if v == 0.0 else float(v))
        assert sorted(mirror) == list(inc.sorted_view())


@settings(derandomize=True, max_examples=60)
@given(
    stream_strategy,
    window_strategy,
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
def test_evaluations_bit_identical(values, window, b):
    inc = IncrementalWindowCDF(window=window)
    mirror: deque = deque(maxlen=window)
    inc.extend(values)
    for v in values:
        mirror.append(0.0 if v == 0.0 else float(v))
    ref = _rebuild(mirror)
    assert inc.evaluate(b) == ref.evaluate(b)
    assert inc.evaluate_strict(b) == ref.evaluate_strict(b)
    assert inc.partial_mean_below(b) == ref.partial_mean_below(b)
    # Evaluate at the samples themselves: the step discontinuities.
    for s in list(mirror)[:10]:
        assert inc.evaluate(s) == ref.evaluate(s)
        assert inc.evaluate_strict(s) == ref.evaluate_strict(s)
        assert inc.partial_mean_below(s) == ref.partial_mean_below(s)


@settings(derandomize=True, max_examples=60)
@given(
    stream_strategy,
    window_strategy,
    st.floats(min_value=0.0, max_value=100.0),
)
def test_quantiles_bit_identical(values, window, q):
    inc = IncrementalWindowCDF(window=window)
    mirror: deque = deque(maxlen=window)
    inc.extend(values)
    for v in values:
        mirror.append(0.0 if v == 0.0 else float(v))
    ref = _rebuild(mirror)
    assert inc.percentile(q) == ref.percentile(q)
    assert inc.quantile(q / 100.0) == ref.quantile(q / 100.0)


@settings(derandomize=True, max_examples=60)
@given(stream_strategy, window_strategy)
def test_moments_and_extremes_bit_identical(values, window):
    inc = IncrementalWindowCDF(window=window)
    mirror: deque = deque(maxlen=window)
    inc.extend(values)
    for v in values:
        mirror.append(0.0 if v == 0.0 else float(v))
    ref = _rebuild(mirror)
    assert inc.mean() == ref.mean()
    assert inc.std() == ref.std()
    assert inc.min() == ref.min()
    assert inc.max() == ref.max()


@settings(derandomize=True, max_examples=40)
@given(stream_strategy, stream_strategy, window_strategy)
def test_ks_distance_bit_identical(a_values, b_values, window):
    a_inc = IncrementalWindowCDF(window=window)
    a_inc.extend(a_values)
    b_ref = EmpiricalCDF(b_values)
    a_mirror = [
        0.0 if v == 0.0 else float(v) for v in a_values
    ][-window:]
    expected = ks_distance(EmpiricalCDF(a_mirror), b_ref)
    assert a_inc.ks_distance(b_ref) == expected


@settings(derandomize=True, max_examples=40)
@given(stream_strategy, window_strategy)
def test_snapshot_equals_batch_construction(values, window):
    inc = IncrementalWindowCDF(window=window)
    mirror: deque = deque(maxlen=window)
    inc.extend(values)
    for v in values:
        mirror.append(0.0 if v == 0.0 else float(v))
    snap = inc.snapshot()
    ref = _rebuild(mirror)
    assert np.array_equal(snap.samples, ref.samples)
    # And the snapshot array is decoupled from further updates.
    frozen = snap.samples.copy()
    inc.update(123.456)
    assert np.array_equal(snap.samples, frozen)
