"""Property-based tests: relay and multicast conservation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.forwarding import RelayStream, run_relay_session
from repro.overlay.mesh import MeshRealization, OverlayMesh
from repro.overlay.multicast import MulticastTree, run_multicast_session
from repro.units import bytes_in_interval


@st.composite
def chain_realizations(draw):
    """A 2-3 hop chain with arbitrary per-link availability series."""
    hops = draw(st.integers(min_value=2, max_value=3))
    nodes = [f"N{i}" for i in range(hops + 1)]
    n_intervals = draw(st.integers(min_value=5, max_value=40))
    mesh = OverlayMesh()
    available = {}
    for a, b in zip(nodes[:-1], nodes[1:]):
        mesh.add_link(a, b, "calm")
        series = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
                min_size=n_intervals,
                max_size=n_intervals,
            )
        )
        available[(a, b)] = np.asarray(series)
    realization = MeshRealization(mesh=mesh, dt=0.1, available=available)
    rate = draw(st.floats(min_value=0.5, max_value=60.0, allow_nan=False))
    return realization, nodes, rate


class TestRelayProperties:
    @given(chain_realizations())
    @settings(max_examples=60, deadline=None)
    def test_bytes_conserved(self, scenario):
        """delivered + queued + dropped == injected, always."""
        realization, nodes, rate = scenario
        result = run_relay_session(
            realization,
            nodes,
            [RelayStream("s", rate)],
            router_buffer_bytes=500_000,
        )
        dt = realization.dt
        n = realization.n_intervals
        injected = bytes_in_interval(rate, dt) * n
        delivered = sum(
            bytes_in_interval(m, dt) for m in result.delivered_mbps["s"]
        )
        # Delivered + dropped can never exceed injected (no duplication);
        # the remainder sits queued inside the relay (the source queue is
        # unbounded, intermediate buffers are capped).
        assert delivered + result.dropped_bytes["s"] <= injected + 1e-6
        assert result.dropped_bytes["s"] >= 0.0
        for node in nodes[1:-1]:
            assert result.peak_queue_bytes[node] <= 500_000 + 1e-6

    @given(chain_realizations())
    @settings(max_examples=60, deadline=None)
    def test_delivery_bounded_by_bottleneck(self, scenario):
        realization, nodes, rate = scenario
        result = run_relay_session(
            realization, nodes, [RelayStream("s", rate)]
        )
        # Store-and-forward can beat the per-interval min composition
        # (queued bytes ship when a later hop opens), but the long-run
        # mean cannot beat any single hop's mean capacity nor the
        # injection rate.
        hop_means = [
            realization.link_series(a, b).mean()
            for a, b in zip(nodes[:-1], nodes[1:])
        ]
        assert result.delivered_mbps["s"].mean() <= (
            min(min(hop_means), rate) + 1e-6
        )


class TestMulticastProperties:
    @given(chain_realizations())
    @settings(max_examples=40, deadline=None)
    def test_single_branch_tree_matches_chain(self, scenario):
        """A degenerate (linear) multicast tree conserves bytes too."""
        realization, nodes, rate = scenario
        children = {
            node: (nxt,) for node, nxt in zip(nodes[:-1], nodes[1:])
        }
        children[nodes[-1]] = ()
        tree = MulticastTree(source=nodes[0], children=children)
        result = run_multicast_session(realization, tree, rate)
        leaf = nodes[-1]
        dt = realization.dt
        injected = bytes_in_interval(rate, dt) * realization.n_intervals
        delivered = sum(
            bytes_in_interval(m, dt)
            for m in result.delivered_mbps[leaf]
        )
        assert delivered <= injected + 1e-6
        assert np.all(result.delivered_mbps[leaf] >= 0)
