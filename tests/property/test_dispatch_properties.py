"""Property-based tests: packet dispatch conservation and honesty."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pgos import dispatch_window, make_packet_queue
from repro.core.vectors import build_schedule
from repro.transport.backoff import ExponentialBackoff
from repro.transport.service import PathService

PKT = 1000


@st.composite
def dispatch_scenarios(draw):
    """Random schedules, queue fills, and byte budgets."""
    n_paths = draw(st.integers(min_value=1, max_value=3))
    paths = [f"P{i}" for i in range(n_paths)]
    n_streams = draw(st.integers(min_value=1, max_value=3))
    mapping = {}
    for i in range(n_streams):
        shares = {}
        for p in paths:
            count = draw(st.integers(min_value=0, max_value=25))
            if count:
                shares[p] = count
        mapping[f"s{i}"] = shares
    # Queue fill may be below or above the scheduled quota.
    fills = {
        s: draw(st.integers(min_value=0, max_value=60)) for s in mapping
    }
    n_unscheduled = draw(st.integers(min_value=0, max_value=2))
    unscheduled_fills = {
        f"u{i}": draw(st.integers(min_value=0, max_value=40))
        for i in range(n_unscheduled)
    }
    budgets = {
        p: draw(st.integers(min_value=0, max_value=120)) * PKT for p in paths
    }
    return mapping, fills, unscheduled_fills, budgets


def run_dispatch(mapping, fills, unscheduled_fills, budgets):
    schedule = build_schedule(mapping, tw=1.0)
    queues = {
        s: make_packet_queue(s, n, 1.0, PKT) for s, n in fills.items()
    }
    unscheduled = {
        s: make_packet_queue(s, n, 1.0, PKT)
        for s, n in unscheduled_fills.items()
    }
    services = {}
    for p, budget in budgets.items():
        svc = PathService(
            p, backoff=ExponentialBackoff(base_delay=10.0, max_delay=10.0)
        )
        svc.begin_interval(0.0, budget)
        services[p] = svc
    result = dispatch_window(schedule, services, queues, unscheduled)
    return schedule, queues, unscheduled, services, result


class TestDispatchInvariants:
    @given(dispatch_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_conservation(self, scenario):
        """sent + still-queued == offered; nothing duplicated or lost."""
        mapping, fills, unscheduled_fills, budgets = scenario
        _, queues, unscheduled, _, result = run_dispatch(*scenario)
        for s, offered in fills.items():
            assert result.sent_total(s) + len(queues[s]) == offered
        for s, offered in unscheduled_fills.items():
            assert result.sent_total(s) + len(unscheduled[s]) == offered

    @given(dispatch_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_budgets_respected(self, scenario):
        """No path delivers more bytes than its interval budget."""
        mapping, fills, unscheduled_fills, budgets = scenario
        _, _, _, services, result = run_dispatch(*scenario)
        for p, svc in services.items():
            delivered = sum(svc.log.bytes_by_stream.values())
            assert delivered <= budgets[p] + 1e-9

    @given(dispatch_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_work_conservation(self, scenario):
        """If *sendable* packets remain queued, every path's budget is
        exhausted (below one packet) — the dispatcher never idles a
        usable path.  A scheduled packet beyond its stream's window quota
        is not sendable this window (rules 1/2 only move quota'd packets;
        rule 3 only moves unscheduled streams)."""
        mapping, fills, unscheduled_fills, budgets = scenario
        _, queues, unscheduled, services, result = run_dispatch(*scenario)
        sendable = sum(len(q) for q in unscheduled.values())
        for s, queue in queues.items():
            quota_left = sum(mapping[s].values()) - result.sent_total(s)
            sendable += max(0, min(len(queue), quota_left))
        if sendable > 0:
            for svc in services.values():
                assert svc.remaining_budget < PKT

    @given(dispatch_scenarios())
    @settings(max_examples=100, deadline=None)
    def test_quota_honored_under_ample_budget(self, scenario):
        """With unconstrained budgets, no sub-stream exceeds its quota by
        more than the cross-path (rule 2) reshuffling allows: total sent
        per stream <= min(offered, scheduled quota) for scheduled streams."""
        mapping, fills, unscheduled_fills, _ = scenario
        big_budgets = {p: 10_000 * PKT for p in
                       {pp for shares in mapping.values() for pp in shares} or
                       {"P0"}}
        schedule, queues, unscheduled, services, result = run_dispatch(
            mapping, fills, unscheduled_fills, big_budgets
        )
        for s, offered in fills.items():
            quota = sum(mapping[s].values())
            assert result.sent_total(s) == min(offered, quota)
        # All unscheduled packets flow once scheduled ones are done.
        for s, offered in unscheduled_fills.items():
            assert result.sent_total(s) == offered
