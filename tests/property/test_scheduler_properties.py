"""Property-based tests: water-filling and scheduling-vector invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapping import largest_remainder_split
from repro.core.scheduler import PathShareRequest, water_fill
from repro.core.vectors import build_schedule, path_lookup_vector

request_strategy = st.builds(
    PathShareRequest,
    stream=st.sampled_from(["s1", "s2", "s3", "s4", "s5"]),
    demand_mbps=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=200.0, allow_nan=False)
    ),
    weight=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    level=st.integers(min_value=0, max_value=3),
)


def unique_requests(requests):
    seen = {}
    for r in requests:
        seen.setdefault(r.stream, r)
    return list(seen.values())


class TestWaterFillProperties:
    @given(
        st.lists(request_strategy, min_size=1, max_size=5),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_never_exceeds_capacity_or_demand(self, requests, capacity):
        requests = unique_requests(requests)
        granted = water_fill(requests, capacity)
        assert sum(granted.values()) <= capacity + 1e-6
        for r in requests:
            assert granted[r.stream] >= 0.0
            if r.demand_mbps is not None:
                assert granted[r.stream] <= r.demand_mbps + 1e-6

    @given(
        st.lists(request_strategy, min_size=1, max_size=5),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_work_conserving(self, requests, capacity):
        """All capacity is used unless every demand is fully met."""
        requests = unique_requests(requests)
        granted = water_fill(requests, capacity)
        used = sum(granted.values())
        if used < capacity - 1e-6:
            for r in requests:
                assert r.demand_mbps is not None
                assert granted[r.stream] >= r.demand_mbps - 1e-6

    @given(
        st.lists(request_strategy, min_size=2, max_size=5),
        st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_priority_dominance(self, requests, capacity):
        """A lower level gets nothing only if every higher level is sated."""
        requests = unique_requests(requests)
        granted = water_fill(requests, capacity)
        levels = sorted({r.level for r in requests})
        for i, level in enumerate(levels[:-1]):
            lower = [r for r in requests if r.level > level]
            higher = [r for r in requests if r.level == level]
            if any(granted[r.stream] > 1e-6 for r in lower):
                # Some lower-priority stream got capacity: every bounded
                # higher-priority demand must be fully met.
                for r in higher:
                    if r.demand_mbps is not None:
                        assert granted[r.stream] >= r.demand_mbps - 1e-6
                    else:
                        # Unbounded high priority absorbs everything;
                        # lower levels could not have received any.
                        raise AssertionError(
                            "unbounded high-priority starved by lower level"
                        )


class TestLargestRemainderProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
    )
    def test_sums_exact_and_near_proportional(self, total, weights):
        parts = largest_remainder_split(total, weights)
        assert sum(parts) == total
        assert all(p >= 0 for p in parts)
        s = sum(weights)
        if s > 0:
            for part, w in zip(parts, weights):
                assert abs(part - total * w / s) < 1.0 + 1e-9


class TestVectorProperties:
    counts_strategy = st.dictionaries(
        st.sampled_from(["A", "B", "C", "D"]),
        st.integers(min_value=0, max_value=60),
        min_size=1,
        max_size=4,
    )

    @given(counts_strategy)
    def test_vp_preserves_counts(self, counts):
        vp = path_lookup_vector(counts, tw=1.0)
        for key, count in counts.items():
            assert vp.count(key) == count

    @given(counts_strategy)
    @settings(max_examples=100)
    def test_vp_prefix_proportionality(self, counts):
        """Any prefix of V_P visits each path within 1 + its fair share.

        This is the smoothness property virtual deadlines buy: the
        schedule never runs far ahead on one path.
        """
        vp = path_lookup_vector(counts, tw=1.0)
        total = len(vp)
        if total == 0:
            return
        running = {k: 0 for k in counts}
        for i, key in enumerate(vp, start=1):
            running[key] += 1
            for k, count in counts.items():
                fair = count * i / total
                assert running[k] <= fair + 1.0 + 1e-9

    @given(
        st.dictionaries(
            st.sampled_from(["s1", "s2", "s3"]),
            st.dictionaries(
                st.sampled_from(["A", "B"]),
                st.integers(min_value=0, max_value=30),
                max_size=2,
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_schedule_consistency(self, stream_path_packets):
        schedule = build_schedule(stream_path_packets, tw=1.0)
        # V_P length equals total packets; each V_S length equals the
        # path's packet count.
        assert len(schedule.vp) == schedule.total_packets
        for path, count in schedule.path_packets.items():
            assert len(schedule.vs[path]) == count
        # Per-stream totals agree with the input.
        for stream, shares in stream_path_packets.items():
            assert schedule.packets_for(stream) == sum(shares.values())
