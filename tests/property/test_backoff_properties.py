"""Property-based tests: exponential backoff invariants.

The health state machine gates re-admission of a failed path on this
backoff, so its invariants are load-bearing for fault tolerance: delays
must never shrink between consecutive failures, never exceed the cap,
and ``reset()`` must restore the base delay exactly.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.transport.backoff import ExponentialBackoff

params_strategy = st.tuples(
    st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),  # base
    st.floats(min_value=1.0, max_value=8.0, allow_nan=False),    # factor
    st.floats(min_value=1.0, max_value=1e4, allow_nan=False),    # max mult
)


def make_backoff(params) -> ExponentialBackoff:
    base, factor, max_mult = params
    return ExponentialBackoff(
        base_delay=base, factor=factor, max_delay=base * max_mult
    )


class TestBackoffInvariants:
    @given(params_strategy, st.integers(min_value=1, max_value=60))
    def test_delays_monotone_non_decreasing(self, params, n):
        backoff = make_backoff(params)
        delays = [backoff.next_delay() for _ in range(n)]
        assert all(a <= b for a, b in zip(delays, delays[1:]))

    @given(params_strategy, st.integers(min_value=1, max_value=60))
    def test_delays_within_bounds(self, params, n):
        backoff = make_backoff(params)
        for _ in range(n):
            delay = backoff.next_delay()
            assert backoff.base_delay <= delay <= backoff.max_delay

    @given(params_strategy, st.integers(min_value=0, max_value=60))
    def test_reset_returns_to_base_delay(self, params, n):
        backoff = make_backoff(params)
        for _ in range(n):
            backoff.next_delay()
        backoff.reset()
        assert backoff.failures == 0
        assert backoff.next_delay() == backoff.base_delay

    @given(params_strategy, st.integers(min_value=1, max_value=60))
    def test_first_delay_is_base(self, params, n):
        backoff = make_backoff(params)
        assert backoff.next_delay() == backoff.base_delay
        # ... and the failure count tracks every next_delay() call.
        for expected in range(1, n + 1):
            assert backoff.failures == expected
            backoff.next_delay()
