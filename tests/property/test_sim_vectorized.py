"""Differential battery: vectorized SoA delivery core vs the scalar loop.

The vectorized backend's contract is **bit-identity**, not approximate
agreement: for any seeded scenario, every observable artifact — workload
report checksums, trace digests, metrics digests, checkpoint snapshot
digests, merged cluster payloads — must be ``==`` to what the original
scalar per-stream loop produces.  Hypothesis drives both backends
through identical seeded scenarios (churn, flash-crowd chaos, mid-run
faults, checkpoint cuts with cross-backend resume, sharded cluster
equivalents) and compares bytes, never tolerances.

``derandomize=True`` keeps the battery reproducible run-to-run: it
*gates* the repo's byte-identity claims (golden suite, crash-resume,
cluster determinism all run under the vectorized default), so it must
itself be deterministic.
"""

import dataclasses
import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.smartpointer import smartpointer_streams
from repro.cluster.local import run_partitioned
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import FaultCampaign, correlated_outage
from repro.obs.context import Observability
from repro.runner.cache import payload_digest
from repro.transport.session import run_packet_session
from repro.workload.scenarios import (
    make_scale_run,
    make_scenario,
    run_scenario,
)

CHURN_SCENARIOS = ["baseline", "diurnal", "flash-crowd"]


def _trace_digest(obs: Observability) -> str:
    payload = "".join(e.to_json() + "\n" for e in obs.trace)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _observed_run(name: str, seed: int, backend: str, max_sessions: int):
    """One scenario run with full observability; returns its artifacts."""
    obs = Observability()
    report = run_scenario(
        name,
        seed=seed,
        max_sessions=max_sessions,
        obs=obs,
        sim_backend=backend,
    )
    return (
        report.checksum(),
        _trace_digest(obs),
        payload_digest(obs.metrics.to_dict()),
    )


class TestChurnIdentity:
    """Same seed, either backend: the workload report bytes agree."""

    @settings(derandomize=True, max_examples=12, deadline=None)
    @given(
        st.sampled_from(CHURN_SCENARIOS),
        st.integers(min_value=0, max_value=9),
    )
    def test_report_checksums_equal(self, name, seed):
        scalar = run_scenario(
            name, seed=seed, max_sessions=30, sim_backend="scalar"
        )
        vectorized = run_scenario(
            name, seed=seed, max_sessions=30, sim_backend="vectorized"
        )
        assert scalar.checksum() == vectorized.checksum()

    @settings(derandomize=True, max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=9))
    def test_flash_crowd_chaos_full_artifacts(self, seed):
        """Chaos (shed + downgrade + faults): reports, traces, metrics."""
        scalar = _observed_run("flash-crowd-chaos", seed, "scalar", 40)
        vectorized = _observed_run(
            "flash-crowd-chaos", seed, "vectorized", 40
        )
        assert scalar == vectorized


class TestCheckpointCuts:
    """Snapshots and resumes cross the backend boundary byte-for-byte."""

    @settings(derandomize=True, max_examples=5, deadline=None)
    @given(
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=0.25, max_value=0.75),
    )
    def test_cut_and_cross_backend_resume(self, seed, cut_frac):
        scenario = make_scenario("flash-crowd-chaos")
        total_steps = int(round(scenario.duration / 0.5))

        def fresh(backend):
            driver = make_scale_run(
                scenario, seed=seed, max_sessions=40, sim_backend=backend
            )
            driver.begin(scenario.duration)
            return driver

        cut = max(1, int(total_steps * cut_frac))
        scalar, vectorized = fresh("scalar"), fresh("vectorized")
        scalar.advance_to(cut)
        vectorized.advance_to(cut)
        snap_scalar = {
            "service": scalar.service.state_dict(),
            "driver": scalar.state_dict(),
        }
        snap_vectorized = {
            "service": vectorized.service.state_dict(),
            "driver": vectorized.state_dict(),
        }
        # Mid-run snapshots are backend-agnostic bytes.
        assert payload_digest(snap_scalar) == payload_digest(
            snap_vectorized
        )

        reference = fresh("vectorized")
        reference_report = reference.run(scenario.duration).to_dict()

        # Scalar snapshot resumed under the vectorized backend (and the
        # reverse) must finish exactly where the uninterrupted run does.
        for snapshot, backend in (
            (snap_scalar, "vectorized"),
            (snap_vectorized, "scalar"),
        ):
            resumed = fresh(backend)
            resumed.service.load_state_dict(snapshot["service"])
            resumed.load_state_dict(snapshot["driver"])
            steps = int(
                round(scenario.duration / resumed.service.dt)
            )
            resumed.advance_to(steps)
            report = resumed.finalize(scenario.duration).to_dict()
            assert payload_digest(report) == payload_digest(
                reference_report
            ), f"resume under {backend} diverged from uninterrupted run"


class TestClusterShards:
    """The shard-sliced runs agree across backends, partition by partition."""

    @settings(derandomize=True, max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=9))
    def test_partitioned_baseline_identical(self, seed):
        scalar = run_partitioned(
            "baseline", seed=seed, max_sessions=24, sim_backend="scalar"
        )
        vectorized = run_partitioned(
            "baseline",
            seed=seed,
            max_sessions=24,
            sim_backend="vectorized",
        )
        assert scalar.checksum() == vectorized.checksum()
        assert payload_digest(scalar.to_dict()) == payload_digest(
            vectorized.to_dict()
        )


class TestPacketSessionFaults:
    """Mid-run faults at packet granularity: SessionResult equality."""

    @settings(derandomize=True, max_examples=4, deadline=None)
    @given(
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=25.0, max_value=45.0),
    )
    def test_session_with_outage_equal(self, seed, outage_start):
        realization = make_figure8_testbed().realize(
            seed=seed, duration=90.0, dt=0.1
        )
        campaign = FaultCampaign(
            faults=tuple(
                correlated_outage(
                    ["A"], start=outage_start, duration=15.0
                )
            ),
            name="outage-A",
        )

        def run(backend):
            return run_packet_session(
                realization,
                smartpointer_streams(),
                tw=1.0,
                warmup_windows=30,
                campaign=campaign,
                sim_backend=backend,
            )

        scalar, vectorized = run("scalar"), run("vectorized")
        for field in dataclasses.fields(scalar):
            a = getattr(scalar, field.name)
            b = getattr(vectorized, field.name)
            if field.name == "health_transitions":
                a = [dataclasses.astuple(t) for t in a]
                b = [dataclasses.astuple(t) for t in b]
            assert a == b, f"SessionResult.{field.name} diverged"


class TestBackendPlumbing:
    def test_driver_reports_effective_backend(self):
        scenario = make_scenario("baseline")
        for backend in ("scalar", "vectorized"):
            driver = make_scale_run(
                scenario, seed=0, max_sessions=5, sim_backend=backend
            )
            assert driver.sim_backend == backend

    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        scenario = make_scenario("baseline")
        driver = make_scale_run(scenario, seed=0, max_sessions=5)
        assert driver.sim_backend == "vectorized"

    def test_env_override_selects_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "scalar")
        scenario = make_scenario("baseline")
        driver = make_scale_run(scenario, seed=0, max_sessions=5)
        assert driver.sim_backend == "scalar"
