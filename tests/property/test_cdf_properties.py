"""Property-based tests: empirical CDF invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.guarantees import (
    probabilistic_guarantee,
    violation_bound,
)
from repro.monitoring.cdf import EmpiricalCDF, SlidingWindowCDF, ks_distance

samples_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestCDFInvariants:
    @given(samples_strategy, st.floats(min_value=-10, max_value=1100))
    def test_bounded_between_zero_and_one(self, samples, b):
        cdf = EmpiricalCDF(samples)
        assert 0.0 <= cdf.evaluate(b) <= 1.0
        assert 0.0 <= cdf.evaluate_strict(b) <= 1.0

    @given(
        samples_strategy,
        st.floats(min_value=0, max_value=1000),
        st.floats(min_value=0, max_value=1000),
    )
    def test_monotone(self, samples, b1, b2):
        cdf = EmpiricalCDF(samples)
        lo, hi = min(b1, b2), max(b1, b2)
        assert cdf.evaluate(lo) <= cdf.evaluate(hi)

    @given(samples_strategy)
    def test_strict_below_or_equal_weak(self, samples):
        cdf = EmpiricalCDF(samples)
        for b in samples[:10]:
            assert cdf.evaluate_strict(b) <= cdf.evaluate(b)

    @given(samples_strategy, st.floats(min_value=0, max_value=100))
    def test_percentile_inverse(self, samples, q):
        cdf = EmpiricalCDF(samples)
        value = cdf.percentile(q)
        # numpy's percentile interpolates between order statistics, so the
        # step CDF at the percentile may sit one sample-weight below q.
        assert cdf.evaluate(value) >= q / 100.0 - 1.0 / cdf.n - 1e-9

    @given(samples_strategy)
    def test_partial_mean_monotone_and_bounded(self, samples):
        cdf = EmpiricalCDF(samples)
        lo = cdf.partial_mean_below(cdf.percentile(25))
        hi = cdf.partial_mean_below(cdf.percentile(75))
        assert 0.0 <= lo <= hi <= cdf.mean() + 1e-9

    @given(samples_strategy, samples_strategy)
    def test_ks_distance_is_metric_like(self, a_samples, b_samples):
        a, b = EmpiricalCDF(a_samples), EmpiricalCDF(b_samples)
        d = ks_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert abs(d - ks_distance(b, a)) < 1e-12
        assert ks_distance(a, a) == 0.0


class TestGuaranteeInvariants:
    @given(samples_strategy, st.floats(min_value=0, max_value=1200))
    def test_lemma1_is_probability(self, samples, required):
        cdf = EmpiricalCDF(samples)
        p = probabilistic_guarantee(cdf, required)
        assert 0.0 <= p <= 1.0

    @given(samples_strategy)
    def test_lemma1_antitone_in_requirement(self, samples):
        cdf = EmpiricalCDF(samples)
        p_small = probabilistic_guarantee(cdf, 1.0)
        p_large = probabilistic_guarantee(cdf, 500.0)
        assert p_small >= p_large

    @given(
        samples_strategy,
        st.integers(min_value=0, max_value=10_000),
    )
    def test_lemma2_bound_in_range(self, samples, x):
        cdf = EmpiricalCDF(samples)
        bound = violation_bound(cdf, x, 1500, 1.0)
        assert 0.0 <= bound <= x

    @given(samples_strategy, st.integers(min_value=1, max_value=5000))
    @settings(max_examples=50)
    def test_lemma2_never_below_exact_expectation(self, samples, x):
        """The bound dominates the exact expected shortfall on the same
        distribution (this is what makes it a *bound*)."""
        cdf = EmpiricalCDF(samples)
        bound = violation_bound(cdf, x, 1500, 1.0)
        arr = np.asarray(cdf.samples)
        served = np.minimum(arr * 1e6 / 8.0 / 1500, x)
        exact = float((x - served).mean())
        assert bound >= exact - 1e-6


class TestSlidingWindow:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=2, max_value=50),
    )
    def test_window_never_exceeds_capacity(self, values, window):
        swc = SlidingWindowCDF(window=window)
        swc.extend(values)
        assert len(swc) == min(len(values), window)
        assert list(swc.snapshot().samples) == sorted(values[-window:])
