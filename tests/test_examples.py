"""Every shipped example runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "smartpointer_collab.py",
        "gridftp_transfer.py",
        "path_selection.py",
        "video_streaming.py",
        "failure_recovery.py",
        "admission_control.py",
    } <= names
