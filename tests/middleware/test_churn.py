"""Session churn against the facade: reopen, shedding, ID monotonicity."""

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.core.spec import StreamSpec
from repro.middleware.service import IQPathsService
from repro.network.emulab import make_figure8_testbed
from repro.network.faults import FaultCampaign, PathFault
from repro.obs.context import Observability


def make_service(**kwargs):
    testbed = make_figure8_testbed(
        profile_a="abilene-moderate", profile_b="light"
    )
    realization = testbed.realize(seed=77, duration=150.0, dt=0.1)
    return IQPathsService(realization, warmup_intervals=200, **kwargs)


def critical(name="viz", mbps=20.0, p=0.95):
    return StreamSpec(name=name, required_mbps=mbps, probability=p)


def elastic(name="bulk", nominal=30.0):
    return StreamSpec(name=name, elastic=True, nominal_mbps=nominal)


class TestReopenChurn:
    def test_open_close_reopen_under_load(self):
        service = make_service()
        service.open_stream(elastic("background", nominal=40.0))
        first = service.open_stream(critical())
        service.advance(10.0)
        service.close_stream("viz")
        service.advance(5.0)
        second = service.open_stream(critical())
        service.advance(10.0)
        # The reopened stream is a new session: fresh, larger stream id.
        assert second.stream_id > first.stream_id
        assert second.open and not first.open
        report = service.report("viz")
        assert report.mean_mbps > 0.0

    def test_stream_ids_strictly_monotone_across_churn(self):
        service = make_service()
        seen = []
        for round_no in range(3):
            handle = service.open_stream(
                critical(f"viz{round_no}", mbps=5.0)
            )
            seen.append(handle.stream_id)
            service.advance(2.0)
            service.close_stream(handle.name)
        batch = service.open_streams(
            [elastic(f"b{i}", nominal=2.0) for i in range(3)]
        )
        seen.extend(h.stream_id for h in batch)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_remap_count_monotone_across_churn(self):
        service = make_service()
        counts = []
        service.open_stream(critical(mbps=10.0))
        service.advance(5.0)
        counts.append(service.scheduler.remap_count)
        service.open_stream(elastic())
        service.advance(5.0)
        counts.append(service.scheduler.remap_count)
        service.close_stream("viz")
        service.advance(5.0)
        counts.append(service.scheduler.remap_count)
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]


class TestLenientAdmission:
    def test_oversubscribed_open_degrades_not_raises(self):
        obs = Observability()
        service = make_service(strict_admission=False, obs=obs)
        service.open_stream(critical("big", mbps=60.0), tenant="gold")
        handle = service.open_stream(
            critical("huge", mbps=500.0), tenant="bronze"
        )
        assert not handle.admitted
        assert handle.open
        metrics = obs.metrics.to_dict()["current"]
        assert metrics["admission.degraded"]["value"] == 1
        assert (
            metrics["admission.degraded.tenant.bronze"]["value"] == 1
        )
        assert metrics["admission.admitted.tenant.gold"]["value"] == 1
        # The degraded session still participates in delivery.
        service.advance(10.0)
        assert service.report("huge").mean_mbps > 0.0

    def test_strict_admission_raises_and_counts(self):
        obs = Observability()
        service = make_service(obs=obs)
        with pytest.raises(AdmissionError):
            service.open_stream(critical("huge", mbps=500.0))
        metrics = obs.metrics.to_dict()["current"]
        assert metrics["admission.rejected"]["value"] == 1
        assert "huge" not in service.handles


class TestShedThenRecover:
    @pytest.fixture()
    def faulted_service(self):
        campaign = FaultCampaign(
            faults=(
                PathFault(path="A", start=10.0, end=25.0, severity=1.0),
            ),
            name="outage-A-churn",
        )
        return make_service(campaign=campaign)

    def test_elastic_shed_during_outage_then_restored(
        self, faulted_service
    ):
        service = faulted_service
        service.open_stream(critical(mbps=10.0))
        service.open_stream(elastic())
        service.advance(5.0)
        assert service.shed_streams == frozenset()
        # Ride into the outage: health quarantines A, elastic is shed.
        service.advance(10.0)
        assert "bulk" in service.shed_streams
        assert service.handles["bulk"].open
        # Ride out the outage plus the recovery probation (the backoff
        # ladder doubles 2 -> 4 -> 8 -> 16s, so the first successful
        # re-probe lands around t = 41s).
        service.advance(35.0)
        assert service.shed_streams == frozenset()
        assert service.report("bulk").mbps[-20:].mean() > 0.0

    def test_shed_stream_can_still_be_closed(self, faulted_service):
        service = faulted_service
        service.open_stream(critical(mbps=10.0))
        service.open_stream(elastic())
        service.advance(15.0)
        assert "bulk" in service.shed_streams
        handle = service.close_stream("bulk")
        assert not handle.open
        assert "bulk" not in service.shed_streams


class TestBatchOpen:
    def test_empty_batch_is_a_noop(self):
        service = make_service()
        assert service.open_streams([]) == []

    def test_strict_batch_is_all_or_nothing(self):
        service = make_service()
        specs = [
            critical("ok", mbps=5.0),
            critical("huge", mbps=500.0),
        ]
        with pytest.raises(AdmissionError) as err:
            service.open_streams(specs)
        assert "huge" in str(err.value)
        # Nothing opened: the batch failed atomically.
        assert not any(h.open for h in service.handles.values())

    def test_lenient_batch_opens_whole_batch_degraded(self):
        service = make_service(strict_admission=False)
        handles = service.open_streams(
            [critical("ok", mbps=5.0), critical("huge", mbps=500.0)],
            tenant="silver",
        )
        assert all(h.open for h in handles)
        assert all(not h.admitted for h in handles)
        assert all(h.tenant == "silver" for h in handles)

    def test_duplicate_in_batch_rejected(self):
        service = make_service()
        with pytest.raises(ConfigurationError):
            service.open_streams([elastic("x"), elastic("x")])

    def test_batch_against_already_open_stream_rejected(self):
        service = make_service()
        service.open_stream(elastic("x"))
        with pytest.raises(ConfigurationError):
            service.open_streams([elastic("x")])

    def test_feasible_batch_admitted_with_guarantees(self):
        service = make_service()
        handles = service.open_streams(
            [critical("a", mbps=5.0), critical("b", mbps=5.0)]
        )
        assert all(h.admitted for h in handles)
        service.advance(20.0)
        for name in ("a", "b"):
            assert service.report(name).attainment >= 0.9
