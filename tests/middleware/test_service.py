"""The middleware facade: dynamic joins/leaves, upcalls, reports."""

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.core.spec import StreamSpec
from repro.middleware.service import IQPathsService
from repro.network.emulab import make_figure8_testbed


@pytest.fixture()
def service():
    testbed = make_figure8_testbed()
    realization = testbed.realize(seed=77, duration=120.0, dt=0.1)
    return IQPathsService(realization, warmup_intervals=200)


def critical(name="viz", mbps=20.0, p=0.95):
    return StreamSpec(name=name, required_mbps=mbps, probability=p)


def elastic(name="bulk", nominal=30.0):
    return StreamSpec(name=name, elastic=True, nominal_mbps=nominal)


class TestLifecycle:
    def test_open_run_report(self, service):
        handle = service.open_stream(critical())
        assert handle.open
        assert handle.achieved_probability >= 0.95
        service.advance(40.0)
        report = service.report("viz")
        assert report.mean_mbps == pytest.approx(20.0, rel=0.02)
        assert report.attainment >= 0.95

    def test_join_triggers_remap(self, service):
        service.open_stream(critical())
        service.advance(10.0)
        before = service.scheduler.remap_count
        service.open_stream(elastic())
        service.advance(10.0)
        assert service.scheduler.remap_count > before

    def test_existing_guarantee_survives_join(self, service):
        service.open_stream(critical())
        service.at(30.0, lambda: service.open_stream(elastic()))
        service.advance(60.0)
        report = service.report("viz")
        assert report.attainment >= 0.95
        # The elastic stream actually flowed after joining.
        assert service.report("bulk").mean_mbps > 10.0

    def test_leave_frees_capacity_for_elastic(self, service):
        service.open_stream(critical("viz", 25.0))
        service.open_stream(elastic())
        service.advance(20.0)
        bulk_before = service.report("bulk").mbps[-50:].mean()
        service.close_stream("viz")
        service.advance(20.0)
        bulk_after = service.report("bulk").mbps[-50:].mean()
        assert bulk_after > bulk_before + 15.0

    def test_closed_stream_stops_accumulating(self, service):
        service.open_stream(critical())
        service.advance(5.0)
        handle = service.close_stream("viz")
        assert not handle.open
        n = service.report("viz").mbps.size
        service.advance(5.0)
        assert service.report("viz").mbps.size == n

    def test_double_open_rejected(self, service):
        service.open_stream(critical())
        with pytest.raises(ConfigurationError):
            service.open_stream(critical())

    def test_close_unknown_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.close_stream("ghost")

    def test_all_closed_then_reopen(self, service):
        service.open_stream(critical())
        service.advance(5.0)
        service.close_stream("viz")
        service.advance(5.0)  # idle intervals with no open streams
        handle = service.open_stream(critical("viz2", 15.0))
        service.advance(10.0)
        assert handle.achieved_probability >= 0.95
        assert service.report("viz2").mean_mbps == pytest.approx(
            15.0, rel=0.03
        )

    def test_reports_cover_all_opened_streams(self, service):
        service.open_stream(critical())
        service.open_stream(elastic())
        service.advance(5.0)
        service.close_stream("bulk")
        service.advance(5.0)
        reports = service.reports()
        assert set(reports) == {"viz", "bulk"}


class TestAdmission:
    def test_infeasible_open_raises_upcall(self, service):
        service.open_stream(critical())
        with pytest.raises(AdmissionError):
            service.open_stream(critical("monster", 120.0))
        assert service.upcalls  # the upcall was recorded
        # The rejected stream is not scheduled.
        assert "monster" not in {s.name for s in service.scheduler.streams}

    def test_lenient_mode_serves_degraded(self):
        testbed = make_figure8_testbed()
        realization = testbed.realize(seed=77, duration=80.0, dt=0.1)
        service = IQPathsService(
            realization, warmup_intervals=200, strict_admission=False
        )
        service.open_stream(critical("monster", 120.0))
        assert service.upcalls
        service.advance(20.0)
        # Degraded service still moves bytes.
        assert service.report("monster").mean_mbps > 0.0


class TestScheduling:
    def test_at_schedules_in_order(self, service):
        order = []
        service.at(5.0, lambda: order.append("b"))
        service.at(2.0, lambda: order.append("a"))
        service.advance(10.0)
        assert order == ["a", "b"]

    def test_at_in_past_rejected(self, service):
        service.advance(10.0)
        with pytest.raises(ConfigurationError):
            service.at(5.0, lambda: None)

    def test_advance_beyond_realization_rejected(self, service):
        with pytest.raises(ConfigurationError):
            service.advance(1e6)

    def test_now_advances(self, service):
        t0 = service.now
        service.advance(7.0)
        assert service.now == pytest.approx(t0 + 7.0)

    def test_report_unknown_stream(self, service):
        with pytest.raises(ConfigurationError):
            service.report("nope")
