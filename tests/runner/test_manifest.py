"""JSONL run manifest: streaming writes, loading, torn tails."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runner.manifest import ManifestWriter, load_manifest


def _write_sample(path):
    with ManifestWriter(path) as writer:
        writer.header(fingerprint="fp", workers=2, n_specs=2)
        writer.spec({"index": 1, "name": "b", "status": "ok"})
        writer.spec({"index": 0, "name": "a", "status": "cached"})
        writer.summary({"total": 2, "executed": 1, "cached": 1, "failed": 0})


class TestRoundTrip:
    def test_header_entries_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_sample(path)
        manifest = load_manifest(path)
        assert manifest.header["fingerprint"] == "fp"
        assert manifest.header["workers"] == 2
        assert len(manifest.entries) == 2
        assert manifest.summary["total"] == 2

    def test_submission_order_recovered(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_sample(path)
        manifest = load_manifest(path)
        # Entries were written in completion order (b before a) but the
        # index field recovers submission order.
        names = [
            e["name"] for e in manifest.entries_in_submission_order()
        ]
        assert names == ["a", "b"]

    def test_lines_are_flushed_as_written(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ManifestWriter(path) as writer:
            writer.header(fingerprint="fp", workers=1, n_specs=1)
            # Before close: the header line must already be on disk.
            assert path.read_text(encoding="utf-8").count("\n") == 1


class TestTornFiles:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_sample(path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text + '{"type": "spec", "ind', encoding="utf-8")
        manifest = load_manifest(path)
        assert len(manifest.entries) == 2

    def test_torn_middle_line_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_sample(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1][:10]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_manifest(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"type": "spec", "index": 0}\n', encoding="utf-8"
        )
        with pytest.raises(ConfigurationError):
            load_manifest(path)
