"""run_specs: fault handling, retries, caching, determinism.

Selftest specs exercise the executor's plumbing (crash/timeout/retry)
without paying for real experiments; the byte-equivalence tests on real
figures live in ``test_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.context import Observability
from repro.obs.events import Category
from repro.runner import ResultCache, RunSpec, load_manifest, run_specs


def echo_spec(name: str, value) -> RunSpec:
    return RunSpec(
        kind="selftest", name=name, params={"mode": "echo", "value": value}
    )


class TestHappyPath:
    def test_outcomes_in_submission_order(self):
        specs = [echo_spec(f"s{i}", i) for i in range(5)]
        report = run_specs(specs, workers=2, timeout_s=60.0)
        assert [o.spec.name for o in report.outcomes] == [
            s.name for s in specs
        ]
        assert [o.payload["value"] for o in report.outcomes] == list(
            range(5)
        )
        assert report.all_ok and report.executed == 5

    def test_inline_mode_matches_pool(self):
        specs = [echo_spec(f"s{i}", i) for i in range(3)]
        inline = run_specs(specs, workers=0)
        pooled = run_specs(specs, workers=2, timeout_s=60.0)
        assert [o.payload for o in inline.outcomes] == [
            o.payload for o in pooled.outcomes
        ]

    def test_duplicate_specs_rejected(self):
        spec = echo_spec("dup", 1)
        with pytest.raises(ConfigurationError):
            run_specs([spec, spec], workers=0)


class TestFaultPaths:
    def test_exception_fails_without_retry(self):
        spec = RunSpec(
            kind="selftest", name="boom", params={"mode": "raise"}
        )
        report = run_specs([spec], workers=1, retries=3, timeout_s=60.0)
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 1  # deterministic: no retry
        assert "RuntimeError" in outcome.error
        assert not report.all_ok

    def test_crash_exhausts_retries(self):
        spec = RunSpec(
            kind="selftest", name="crash", params={"mode": "crash"}
        )
        report = run_specs([spec], workers=1, retries=1, timeout_s=60.0)
        outcome = report.outcomes[0]
        assert outcome.status == "crashed"
        assert outcome.attempts == 2
        assert "exitcode" in outcome.error

    def test_crash_once_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "marker"
        spec = RunSpec(
            kind="selftest",
            name="flaky",
            params={
                "mode": "crash_once",
                "marker": str(marker),
                "value": "ok",
            },
        )
        report = run_specs([spec], workers=1, retries=1, timeout_s=60.0)
        outcome = report.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.payload["value"] == "ok"
        assert marker.exists()

    def test_timeout_terminates_worker(self):
        spec = RunSpec(
            kind="selftest",
            name="slow",
            params={"mode": "sleep", "sleep_s": 30.0},
        )
        report = run_specs([spec], workers=1, retries=0, timeout_s=0.5)
        outcome = report.outcomes[0]
        assert outcome.status == "timeout"
        assert "timeout" in outcome.error

    def test_one_failure_does_not_sink_the_run(self):
        specs = [
            echo_spec("good1", 1),
            RunSpec(kind="selftest", name="bad", params={"mode": "raise"}),
            echo_spec("good2", 2),
        ]
        report = run_specs(specs, workers=2, timeout_s=60.0)
        statuses = [o.status for o in report.outcomes]
        assert statuses == ["ok", "failed", "ok"]
        assert report.failed == 1


class TestCacheIntegration:
    def test_warm_rerun_is_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [echo_spec(f"s{i}", i) for i in range(3)]
        cold = run_specs(
            specs, workers=1, cache=cache, fingerprint="fp", timeout_s=60.0
        )
        assert cold.executed == 3 and cold.cached == 0
        warm = run_specs(
            specs, workers=1, cache=cache, fingerprint="fp", timeout_s=60.0
        )
        assert warm.executed == 0 and warm.cached == 3
        assert [o.payload for o in warm.outcomes] == [
            o.payload for o in cold.outcomes
        ]

    def test_fingerprint_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [echo_spec("s", 1)]
        run_specs(specs, workers=0, cache=cache, fingerprint="fp1")
        rerun = run_specs(specs, workers=0, cache=cache, fingerprint="fp2")
        assert rerun.executed == 1 and rerun.cached == 0

    def test_refresh_bypasses_reads_but_stores(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [echo_spec("s", 1)]
        run_specs(specs, workers=0, cache=cache, fingerprint="fp")
        forced = run_specs(
            specs, workers=0, cache=cache, fingerprint="fp", refresh=True
        )
        assert forced.executed == 1 and forced.cached == 0
        warm = run_specs(specs, workers=0, cache=cache, fingerprint="fp")
        assert warm.cached == 1

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(
            kind="selftest", name="bad", params={"mode": "raise"}
        )
        run_specs(
            [spec], workers=1, cache=cache, fingerprint="fp", timeout_s=60.0
        )
        assert cache.entry_count() == 0


class TestManifestAndObs:
    def test_manifest_narrates_the_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        specs = [echo_spec(f"s{i}", i) for i in range(3)]
        report = run_specs(
            specs,
            workers=2,
            fingerprint="fp",
            timeout_s=60.0,
            manifest_path=str(path),
        )
        manifest = load_manifest(path)
        assert manifest.header["fingerprint"] == "fp"
        assert manifest.header["n_specs"] == 3
        assert manifest.summary["executed"] == 3
        ordered = manifest.entries_in_submission_order()
        assert [e["name"] for e in ordered] == ["s0", "s1", "s2"]
        assert all(e["status"] == "ok" for e in ordered)
        assert report.summary_record()["total"] == 3

    def test_runner_events_stream_through_obs(self, tmp_path):
        obs = Observability()
        cache = ResultCache(tmp_path / "cache")
        specs = [echo_spec("s", 1)]
        run_specs(specs, workers=1, cache=cache, fingerprint="fp",
                  timeout_s=60.0, obs=obs)
        run_specs(specs, workers=1, cache=cache, fingerprint="fp",
                  timeout_s=60.0, obs=obs)
        names = [e.name for e in obs.trace.events(category=Category.RUNNER)]
        assert names.count("run_start") == 2
        assert names.count("run_end") == 2
        assert "spec_start" in names and "spec_end" in names
        assert "cache_hit" in names  # the second run hit

    def test_retry_event_emitted(self, tmp_path):
        obs = Observability()
        marker = tmp_path / "marker"
        spec = RunSpec(
            kind="selftest",
            name="flaky",
            params={"mode": "crash_once", "marker": str(marker)},
        )
        run_specs([spec], workers=1, retries=1, timeout_s=60.0, obs=obs)
        names = [e.name for e in obs.trace.events(category=Category.RUNNER)]
        assert "spec_retry" in names
