"""Serial vs parallel byte-equivalence on real figures, plus the CLI.

The runner's core promise: payloads are pure functions of their specs,
so worker count and completion order can never change a single byte of
output.  These tests pay for two real (fast-mode) figures once and
compare every execution/caching path against that baseline.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import ResultCache, figure_suite, run_specs
from repro.runner.cache import payload_digest
from repro.runner.cli import main as runner_main

#: Two cheap figures with different code paths (scheduling vs app ext).
FIGURES = ["fig10", "video"]


@pytest.fixture(scope="module")
def serial_report():
    specs = figure_suite(FIGURES, fast=True)
    return run_specs(specs, workers=1, timeout_s=300.0)


class TestByteEquivalence:
    def test_parallel_matches_serial(self, serial_report):
        specs = figure_suite(FIGURES, fast=True)
        parallel = run_specs(specs, workers=2, timeout_s=300.0)
        for serial_o, parallel_o in zip(
            serial_report.outcomes, parallel.outcomes
        ):
            assert serial_o.status == parallel_o.status == "ok"
            assert payload_digest(serial_o.payload) == payload_digest(
                parallel_o.payload
            )
            assert (
                serial_o.payload["report"] == parallel_o.payload["report"]
            )

    def test_inline_matches_serial(self, serial_report):
        specs = figure_suite(FIGURES, fast=True)
        inline = run_specs(specs, workers=0)
        for serial_o, inline_o in zip(
            serial_report.outcomes, inline.outcomes
        ):
            assert payload_digest(serial_o.payload) == payload_digest(
                inline_o.payload
            )

    def test_cached_payload_matches_fresh(self, serial_report, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = figure_suite(FIGURES, fast=True)
        cold = run_specs(
            specs, workers=2, cache=cache, fingerprint="fp",
            timeout_s=300.0,
        )
        warm = run_specs(
            specs, workers=2, cache=cache, fingerprint="fp",
            timeout_s=300.0,
        )
        assert warm.executed == 0 and warm.cached == len(FIGURES)
        for serial_o, warm_o in zip(serial_report.outcomes, warm.outcomes):
            assert payload_digest(serial_o.payload) == payload_digest(
                warm_o.payload
            )
        assert cold.executed == len(FIGURES)

    def test_canonical_seed_matches_harness_cli(self, serial_report):
        # The runner's figure report must be byte-identical to what
        # ``python -m repro.harness <figure> --fast`` renders.
        from repro.harness.figures import FIGURES as REGISTRY

        for outcome in serial_report.outcomes:
            name = outcome.spec.params["figure"]
            direct = REGISTRY[name](fast=True)
            assert outcome.payload["report"] == direct.render() + "\n"


class TestRunnerCli:
    def test_cold_then_warm(self, tmp_path, capsys):
        argv = [
            "fig10",
            "--fast",
            "--workers",
            "2",
            "--output-dir",
            str(tmp_path / "out"),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--manifest",
            str(tmp_path / "run.jsonl"),
            "--summary-json",
            str(tmp_path / "summary.json"),
        ]
        assert runner_main(argv) == 0
        cold = json.loads((tmp_path / "summary.json").read_text())
        assert cold["executed"] == 1 and cold["cached"] == 0
        report_path = tmp_path / "out" / "fig10-fast.txt"
        assert report_path.exists()
        cold_bytes = report_path.read_bytes()

        assert runner_main(argv) == 0
        warm = json.loads((tmp_path / "summary.json").read_text())
        assert warm["executed"] == 0 and warm["cached"] == 1
        assert report_path.read_bytes() == cold_bytes
        capsys.readouterr()  # silence the CLI chatter

    def test_unknown_figure_rejected(self, tmp_path, capsys):
        assert (
            runner_main(
                ["nope", "--cache-dir", str(tmp_path / "cache")]
            )
            == 2
        )
        capsys.readouterr()

    def test_list(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "video" in out

    def test_failure_exit_code(self, tmp_path, capsys):
        # Inject a failing spec through run_specs directly: the CLI's
        # exit-code contract is report.all_ok, which this exercises.
        from repro.runner import RunSpec

        report = run_specs(
            [RunSpec(kind="selftest", name="bad", params={"mode": "raise"})],
            workers=1,
            timeout_s=60.0,
        )
        assert not report.all_ok
        capsys.readouterr()
