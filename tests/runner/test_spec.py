"""RunSpec: content hashing, seed derivation, round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runner.spec import RunSpec, canonical_json, mix_seed


class TestContentHash:
    def test_stable_under_param_dict_ordering(self):
        a = RunSpec(kind="figure", name="f", params={"x": 1, "y": 2})
        b = RunSpec(kind="figure", name="f", params={"y": 2, "x": 1})
        assert a.content_hash == b.content_hash

    def test_changes_on_param_change(self):
        a = RunSpec(kind="figure", name="f", params={"x": 1})
        b = RunSpec(kind="figure", name="f", params={"x": 2})
        assert a.content_hash != b.content_hash

    def test_changes_on_seed_change(self):
        a = RunSpec(kind="figure", name="f", seed=1)
        b = RunSpec(kind="figure", name="f", seed=2)
        assert a.content_hash != b.content_hash

    def test_changes_on_kind_and_name(self):
        base = RunSpec(kind="figure", name="f")
        assert (
            base.content_hash
            != RunSpec(kind="chaos", name="f").content_hash
        )
        assert (
            base.content_hash
            != RunSpec(kind="figure", name="g").content_hash
        )

    def test_hash_is_hex_sha256(self):
        h = RunSpec(kind="figure", name="f").content_hash
        assert len(h) == 64
        int(h, 16)  # must parse as hex


class TestEffectiveSeed:
    def test_explicit_seed_wins(self):
        assert RunSpec(kind="f", name="n", seed=42).effective_seed() == 42

    def test_derived_seed_is_deterministic(self):
        a = RunSpec(kind="f", name="n", params={"x": 1})
        b = RunSpec(kind="f", name="n", params={"x": 1})
        assert a.effective_seed() == b.effective_seed()

    def test_derived_seed_varies_with_spec(self):
        a = RunSpec(kind="f", name="n", params={"x": 1})
        b = RunSpec(kind="f", name="n", params={"x": 2})
        assert a.effective_seed() != b.effective_seed()

    def test_derived_seed_is_31_bit(self):
        seed = RunSpec(kind="f", name="n").effective_seed()
        assert 0 <= seed < 2**31


class TestRoundTrip:
    def test_to_from_dict(self):
        spec = RunSpec(
            kind="figure",
            name="fig9",
            params={"figure": "fig9", "fast": True},
            seed=7,
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash == spec.content_hash


class TestValidation:
    def test_empty_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(kind="", name="n")

    def test_non_json_params_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(kind="f", name="n", params={"x": object()})


class TestHelpers:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_mix_seed_deterministic_and_distinct(self):
        assert mix_seed("a", "b") == mix_seed("a", "b")
        assert mix_seed("a", "b") != mix_seed("a", "c")
        assert 0 <= mix_seed("a") < 2**31
