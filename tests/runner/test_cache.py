"""ResultCache and code fingerprint: keying, hits, invalidation."""

from __future__ import annotations

import json

from repro.runner.cache import ResultCache, payload_digest
from repro.runner.fingerprint import code_fingerprint
from repro.runner.spec import RunSpec

SPEC = RunSpec(kind="selftest", name="t", params={"mode": "echo", "value": 1})
PAYLOAD = {"value": 1, "report": "selftest echo: 1\n"}


class TestFingerprint:
    def test_deterministic(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "a.py").write_text("x = 1\n")
        assert code_fingerprint([root]) == code_fingerprint([root])

    def test_content_change_changes_fingerprint(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "a.py").write_text("x = 1\n")
        before = code_fingerprint([root])
        (root / "a.py").write_text("x = 2\n")
        assert code_fingerprint([root]) != before

    def test_new_file_changes_fingerprint(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "a.py").write_text("x = 1\n")
        before = code_fingerprint([root])
        (root / "b.py").write_text("y = 2\n")
        assert code_fingerprint([root]) != before

    def test_pycache_ignored(self, tmp_path):
        root = tmp_path / "pkg"
        (root / "__pycache__").mkdir(parents=True)
        (root / "a.py").write_text("x = 1\n")
        before = code_fingerprint([root])
        (root / "__pycache__" / "a.cpython-311.pyc").write_text("junk")
        (root / "__pycache__" / "b.py").write_text("junk")
        assert code_fingerprint([root]) == before

    def test_live_package_fingerprint(self):
        fp = code_fingerprint()
        assert len(fp) == 64 and fp == code_fingerprint()


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(SPEC.content_hash, "fp") is None
        cache.put(SPEC, "fp", PAYLOAD, 0.1)
        entry = cache.get(SPEC.content_hash, "fp")
        assert entry is not None
        assert entry["payload"] == PAYLOAD
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_miss_on_param_change(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(SPEC, "fp", PAYLOAD, 0.1)
        other = RunSpec(
            kind="selftest", name="t", params={"mode": "echo", "value": 2}
        )
        assert cache.get(other.content_hash, "fp") is None

    def test_miss_on_fingerprint_change(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(SPEC, "fp-old", PAYLOAD, 0.1)
        assert cache.get(SPEC.content_hash, "fp-new") is None
        assert cache.get(SPEC.content_hash, "fp-old") is not None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(SPEC, "fp", PAYLOAD, 0.1)
        key = cache.key_for(SPEC.content_hash, "fp")
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(SPEC.content_hash, "fp") is None

    def test_tampered_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(SPEC, "fp", PAYLOAD, 0.1)
        key = cache.key_for(SPEC.content_hash, "fp")
        path = cache.path_for(key)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["payload"]["value"] = 999
        path.write_text(json.dumps(record), encoding="utf-8")
        assert cache.get(SPEC.content_hash, "fp") is None

    def test_entry_count_and_purge(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(SPEC, "fp1", PAYLOAD, 0.1)
        cache.put(SPEC, "fp2", PAYLOAD, 0.1)
        assert cache.entry_count() == 2
        cache.purge()
        assert cache.entry_count() == 0
        assert cache.get(SPEC.content_hash, "fp1") is None


class TestPayloadDigest:
    def test_order_independent(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )

    def test_value_sensitive(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})
