"""Shared fixtures for the IQ-Paths reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.monitoring.cdf import EmpiricalCDF
from repro.network.emulab import make_figure8_testbed
from repro.sim.random import RandomStreams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for one test."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic named-stream factory."""
    return RandomStreams(seed=99)


@pytest.fixture
def gaussian_cdf(rng) -> EmpiricalCDF:
    """An empirical CDF of N(50, 5) bandwidth samples."""
    return EmpiricalCDF(50.0 + 5.0 * rng.standard_normal(2000))


@pytest.fixture(scope="session")
def testbed():
    """The Figure-8 testbed (stateless; safe to share)."""
    return make_figure8_testbed()


@pytest.fixture(scope="session")
def realization(testbed):
    """A short shared realization for driver-level tests."""
    return testbed.realize(seed=5, duration=60.0, dt=0.1)
