"""Legacy shim so editable installs work offline (no `wheel` package).

All real metadata lives in pyproject.toml; this exists only so
``pip install -e . --no-use-pep517`` (setup.py develop) is possible in
environments without network access to fetch build backends.
"""

from setuptools import setup

setup()
