"""Observability overhead benchmark: disabled tracing must be ~free.

Runs the reference packet session (figure-8 testbed, SmartPointer
streams — the same workload as ``bench_session.py``) in interleaved
rounds: a fixed pure-Python calibration spin, the session with
observability disabled (``obs=None`` → the shared ``NULL_OBS`` context,
so every hot-path guard is a single attribute lookup), and the session
with a fully enabled :class:`repro.obs.Observability`.

Three gates, ordered from most to least deterministic:

1. **Simulation parity** — the instrumented run must be bit-identical to
   the uninstrumented one (observability must never perturb results).
2. **Guard microbenchmark** — the measured cost of one disabled hot-path
   guard (``if obs.enabled:`` against ``NULL_OBS``) must stay below
   :data:`MAX_GUARD_NS`.  This is the stable, machine-noise-immune check
   that disabled observability stays near-zero: it catches a ``NULL_OBS``
   accidentally made expensive (a property, a dict lookup, a real bus)
   regardless of wall-clock jitter.
3. **Wall-clock trend** — the calibration-normalized disabled-session
   time is compared against the recorded
   ``benchmarks/results/BENCH_obs.json`` baseline with a
   :data:`MAX_DISABLED_OVERHEAD` (3 %) budget.  Wall clocks on shared
   machines are noisy, so the budget widens to twice the larger of the
   two runs' own observed spreads when that noise floor exceeds 3 %: on
   a quiet machine this is a true 3 % gate, on a noisy one it degrades
   toward a gross-regression check instead of a coin flip.

The enabled-mode overhead is recorded for trend-watching but not gated —
it pays for the trace.

Environment knobs:

* ``OBS_BENCH_ITERS``  — rounds per run (default 3; CI smoke uses 1, which
  skips the spread estimate and widens the trend gate accordingly).
* ``OBS_BENCH_RECORD`` — set to 1 to re-record the baseline instead of
  asserting against it (after an intentional perf-relevant change).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.apps.smartpointer import smartpointer_streams
from repro.fsutil import atomic_write_json
from repro.network.emulab import make_figure8_testbed
from repro.obs import NULL_OBS, Observability
from repro.transport.session import run_packet_session

#: Budget for the calibration-normalized disabled-session slowdown vs.
#: the recorded baseline (gate 3), before the noise-floor widening.
MAX_DISABLED_OVERHEAD = 0.03
ABS_EPSILON_S = 0.05

#: Ceiling for one disabled hot-path guard (gate 2).  A plain attribute
#: lookup on ``NULL_OBS`` measures ~10-60 ns across CPython builds; 200
#: leaves headroom for slow machines while still failing loudly if the
#: guard ever grows a property, descriptor, or allocation.
MAX_GUARD_NS = 200.0

ITERATIONS = max(1, int(os.environ.get("OBS_BENCH_ITERS", "3")))
BASELINE_NAME = "BENCH_obs.json"

WORKLOAD = {
    "testbed": "figure8",
    "seed": 17,
    "duration_s": 60.0,
    "dt": 0.1,
    "warmup_windows": 15,
    "streams": "smartpointer",
}


@pytest.fixture(scope="module")
def realization():
    testbed = make_figure8_testbed()
    return testbed.realize(
        seed=WORKLOAD["seed"],
        duration=WORKLOAD["duration_s"],
        dt=WORKLOAD["dt"],
    )


def _run_session(realization, obs):
    return run_packet_session(
        realization,
        smartpointer_streams(),
        warmup_windows=WORKLOAD["warmup_windows"],
        obs=obs,
    )


def _time_once(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


class _SpinBox:
    """Calibration workload: attribute lookups + method calls + float
    arithmetic, the same cost profile as the session's hot loop."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def bump(self, x):
        self.value += x * 0.5


def _calibration_spin():
    box = _SpinBox()
    for i in range(400_000):
        box.bump(i & 0xFF)
    return box.value


def _guard_cost_ns() -> float:
    """Best-of-5 cost of one ``if obs.enabled:`` guard on ``NULL_OBS``."""
    obs = NULL_OBS
    n = 200_000
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(n):
            if obs.enabled:
                raise AssertionError("NULL_OBS must be disabled")
        guarded = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n):
            pass
        empty = time.perf_counter() - t0
        best = min(best, max(0.0, guarded - empty))
    return best / n * 1e9


def _spread(values) -> float:
    """Relative max-min spread; 0.0 when only one sample exists."""
    lo, hi = min(values), max(values)
    return (hi - lo) / lo if len(values) > 1 and lo > 0 else 0.0


def _total_sent(result) -> int:
    return sum(
        sum(series)
        for per_path in result.sent.values()
        for series in per_path.values()
    )


def test_obs_overhead_disabled(results_dir, realization):
    rounds = []  # (calibration_s, disabled_s, enabled_s) per round
    disabled_result = enabled_result = None
    for _ in range(ITERATIONS):
        calib_s, _ = _time_once(_calibration_spin)
        dis_s, disabled_result = _time_once(
            lambda: _run_session(realization, obs=None)
        )
        en_s, enabled_result = _time_once(
            lambda: _run_session(realization, Observability())
        )
        rounds.append((calib_s, dis_s, en_s))

    # Gate 1: observability must never perturb the simulation itself.
    assert disabled_result.n_windows == enabled_result.n_windows
    assert _total_sent(disabled_result) == _total_sent(enabled_result)
    assert disabled_result.remap_count == enabled_result.remap_count

    # Gate 2: the disabled guard itself stays near-zero.
    guard_ns = _guard_cost_ns()
    assert guard_ns <= MAX_GUARD_NS, (
        f"one disabled observability guard costs {guard_ns:.0f} ns "
        f"(budget {MAX_GUARD_NS:.0f} ns); NULL_OBS.enabled must stay a "
        f"plain attribute"
    )

    disabled_s = min(d for _, d, _ in rounds)
    enabled_s = min(e for _, _, e in rounds)
    norm_ratios = [d / c for c, d, _ in rounds]
    measurement = {
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "overhead_enabled": round(enabled_s / disabled_s - 1.0, 4),
        "calibration_s": round(min(c for c, _, _ in rounds), 6),
        "norm_disabled": round(min(norm_ratios), 4),
        "spread": round(_spread(norm_ratios), 4),
        "guard_ns": round(guard_ns, 1),
        "iterations": ITERATIONS,
        "n_windows": disabled_result.n_windows,
        "packets_sent": _total_sent(disabled_result),
    }

    baseline_path = results_dir / BASELINE_NAME
    record = os.environ.get("OBS_BENCH_RECORD") == "1"
    if baseline_path.exists() and not record:
        data = json.loads(baseline_path.read_text(encoding="utf-8"))
        baseline = data["baseline"]
        data["latest"] = measurement
        atomic_write_json(baseline_path, data)
        # Gate 3: calibration-normalized wall-clock trend, widened to the
        # noise floor when either run's own spread exceeds the 3 % budget.
        base_norm = baseline.get("norm_disabled")
        if base_norm:
            slowdown = min(norm_ratios) / base_norm - 1.0
            noise = 2.0 * max(
                _spread(norm_ratios), baseline.get("spread", 0.0)
            )
            budget = max(MAX_DISABLED_OVERHEAD, noise)
            assert slowdown <= budget + ABS_EPSILON_S, (
                f"disabled-observability session is {slowdown:.1%} slower "
                f"(normalized) than the recorded baseline, over the "
                f"{budget:.1%} budget; if the slowdown is intentional, "
                f"re-record with OBS_BENCH_RECORD=1"
            )
    else:
        data = {
            "schema": 2,
            "workload": WORKLOAD,
            "baseline": measurement,
            "latest": measurement,
        }
        atomic_write_json(baseline_path, data)
