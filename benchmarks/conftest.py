"""Benchmark-suite helpers.

Every figure bench runs its experiment once under pytest-benchmark (the
timing is the cost of regenerating the figure) and writes the rendered
paper-vs-measured report to ``benchmarks/results/<figure>.txt`` so the
numbers survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    """Write a FigureResult's rendering next to the benchmark data."""

    def _save(result) -> None:
        from repro.harness.report import write_report

        write_report(results_dir / f"{result.figure_id}.txt", result.render())

    return _save
