"""Figure 12 bench: GridFTP vs IQPG-GridFTP throughput time series."""

from repro.harness.figures import fig12


def test_fig12_gridftp(benchmark, save_report):
    result = benchmark.pedantic(
        fig12.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    m = result.measured
    # IQPG holds the 25 records/s real-time requirement for DT1 and DT2.
    assert abs(m["iqpg_dt1_records_per_s"] - 25.0) < 0.3
    assert abs(m["iqpg_dt2_records_per_s"] - 25.0) < 0.3
    # Paper: DT1 std 1.4297 (GridFTP) vs 0.4040 (IQPG).
    assert m["iqpg_dt1_std"] < m["gridftp_dt1_std"] / 2
    # Means land near the paper's (33.94 / 34.55 Mbps).
    assert abs(m["gridftp_dt1_mean"] - 33.94) / 33.94 < 0.05
    assert abs(m["iqpg_dt1_mean"] - 34.55) / 34.55 < 0.02
