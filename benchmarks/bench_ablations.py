"""Ablation bench: what each PGOS design choice contributes."""

from repro.harness.figures import ablations


def test_ablations(benchmark, save_report):
    result = benchmark.pedantic(
        ablations.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    m = result.measured
    # Statistical prediction is the load-bearing choice: on the deceptive
    # path pair, mean prediction routes the critical stream to the
    # higher-mean (but heavy-tailed) path and breaks its guarantee.
    assert m["pgos_crit_attainment_p95"] >= 0.99
    assert m["meanpred_crit_attainment_p95"] < m["pgos_crit_attainment_p95"]
    # Single-path-first placement keeps the critical stream at least as
    # steady as a forced even split across the noisy path.
    assert m["single_first_bond1_std"] <= m["even_split_bond1_std"] + 1e-9
    # A twitchier remap trigger causes at least as many remaps.
    assert m["remaps_at_ks_0.05"] >= m["remaps_at_ks_0.5"]
