"""Figure 11 bench: per-stream summary (target/mean/95%/99%/std) + jitter."""

from repro.harness.figures import fig11


def test_fig11_summary(benchmark, save_report):
    result = benchmark.pedantic(
        fig11.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    m = result.measured
    assert m["pgos_atom_p95_time"] >= 3.249 * 0.99
    assert m["pgos_bond1_p95_time"] >= 22.148 * 0.99
    assert m["msfq_bond1_p95_time"] < 22.148 * 0.95
    # Jitter ordering: paper reports 1.4 ms (PGOS) vs 2.0 ms (MSFQ).
    assert m["pgos_jitter_ms"] < m["msfq_jitter_ms"]
