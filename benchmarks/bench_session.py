"""Packet-session benchmark: the event-driven middleware loop's cost.

Measures virtual-seconds-per-CPU-second of the packet-accurate session
(producers + remap checks + V_P/V_S dispatch + delivery accounting) on
the SmartPointer workload — the whole Figure-3 node loop, not just the
dispatch inner loop.
"""

from repro.apps.smartpointer import smartpointer_streams
from repro.network.emulab import make_figure8_testbed
from repro.transport.session import run_packet_session


def test_packet_session_throughput(benchmark):
    testbed = make_figure8_testbed()
    realization = testbed.realize(seed=17, duration=60.0, dt=0.1)

    result = benchmark.pedantic(
        lambda: run_packet_session(
            realization, smartpointer_streams(), warmup_windows=15
        ),
        rounds=1,
        iterations=1,
    )
    assert result.n_windows == 45
    # 45 virtual seconds of ~5500 pkt/s traffic must simulate in well
    # under real time on one core.
    assert benchmark.stats["mean"] < 45.0
