"""Fast-path microbenchmarks: the "full bandwidth utilization" claim.

The paper argues PGOS "has sufficiently low runtime overheads to satisfy
the needs of even high bandwidth wide area network links".  At 1500-byte
packets, a 100 Mbps link carries ~8.3k packets/s and a 1 Gbps link ~83k.
These benches measure, at Python speed:

* packets dispatched per second through the V_P/V_S fast path;
* scheduling-vector compilation cost (the slow path, run only on remaps);
* the per-interval fluid allocation (PGOS allocate + water_fill).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.mapping import compute_mapping
from repro.fsutil import atomic_write_json
from repro.core.pgos import PGOSScheduler, dispatch_window, make_packet_queue
from repro.core.scheduler import water_fill
from repro.core.spec import StreamSpec
from repro.core.vectors import build_schedule
from repro.monitoring.cdf import EmpiricalCDF
from repro.transport.backoff import ExponentialBackoff
from repro.transport.service import PathService

PKT = 1500


def _schedule(n_packets: int):
    per_stream = n_packets // 2
    return build_schedule(
        {
            "crit": {"A": per_stream},
            "data": {"A": per_stream // 2, "B": per_stream // 2},
        },
        tw=1.0,
        stream_order=["crit", "data"],
        path_order=["A", "B"],
    )


def _dispatch_once(schedule, n_packets):
    queues = {
        "crit": make_packet_queue("crit", n_packets // 2, 1.0, PKT),
        "data": make_packet_queue("data", n_packets // 2, 1.0, PKT),
    }
    services = {}
    for name in ("A", "B"):
        svc = PathService(
            name, backoff=ExponentialBackoff(base_delay=10.0, max_delay=10.0)
        )
        svc.begin_interval(0.0, 1e12)
        services[name] = svc
    return dispatch_window(schedule, services, queues)


def test_dispatch_throughput(benchmark):
    """Packets/second through the Table-1 fast path (one 8k-pkt window)."""
    n = 8000  # one second of a saturated 100 Mbps link
    schedule = _schedule(n)
    result = benchmark(lambda: _dispatch_once(schedule, n))
    assert result.sent_total("crit") == n // 2
    # The claim: dispatching one second's packets takes well under one
    # second even in pure Python (so the scheduler is not the bottleneck
    # at the paper's link rates).
    assert benchmark.stats["mean"] < 1.0


def test_schedule_compilation(benchmark):
    """Cost of rebuilding V_P/V_S on a remap (paper: runs rarely)."""
    rng = np.random.default_rng(1)
    cdfs = {
        "A": EmpiricalCDF(np.clip(50 + 4 * rng.standard_normal(1000), 0, None)),
        "B": EmpiricalCDF(np.clip(30 + 9 * rng.standard_normal(1000), 0, None)),
    }
    specs = [
        StreamSpec(name="crit", required_mbps=20.0, probability=0.95),
        StreamSpec(name="data", required_mbps=10.0, probability=0.90),
        StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
    ]

    def remap():
        mapping = compute_mapping(specs, cdfs, tw=1.0)
        return mapping.compile(
            stream_order=["crit", "data", "bulk"], path_order=["A", "B"]
        )

    schedule = benchmark(remap)
    assert schedule.total_packets > 0


def test_monitor_update_rate(benchmark):
    """Sliding-window CDF updates/s: monitoring's per-sample cost."""
    from repro.monitoring.cdf import SlidingWindowCDF

    window = SlidingWindowCDF(window=500)
    rng = np.random.default_rng(3)
    samples = (50 + 5 * rng.standard_normal(2000)).tolist()

    def feed():
        for s in samples:
            window.update(s)
        return window.snapshot().percentile(10)

    result = benchmark(feed)
    assert result > 0
    # 2000 samples = 200 s of monitoring at 0.1 s intervals; it must cost
    # a tiny fraction of that.
    assert benchmark.stats["mean"] < 0.1


#: Required incremental-over-batch speedup of the windowed update+query
#: cycle at W=500.  The incremental backend measures ~7× here; 5× leaves
#: slack for noisy boxes.
CDF_MIN_SPEEDUP = 5.0

#: Window size and cycle count of the windowed CDF bench.
CDF_BENCH_WINDOW = 500
CDF_BENCH_CYCLES = int(os.environ.get("CDF_BENCH_CYCLES", "2500"))

CDF_RESULTS_NAME = "BENCH_cdf.json"


def _windowed_cycle(backend: str, samples) -> tuple[float, float]:
    """Time the monitoring hot loop; returns (seconds, query checksum)."""
    from repro.monitoring.cdf import SlidingWindowCDF

    swc = SlidingWindowCDF(window=CDF_BENCH_WINDOW, backend=backend)
    warm = CDF_BENCH_WINDOW
    for s in samples[:warm]:
        swc.update(s)
    t0 = time.perf_counter()
    acc = 0.0
    for s in samples[warm:]:
        swc.update(s)
        acc += swc.evaluate(45.0)          # Lemma 1 read
        acc += swc.partial_mean_below(45.0)  # Lemma 2 read
        acc += swc.percentile(10.0)        # guaranteed-rate read
    return time.perf_counter() - t0, acc


def test_windowed_cdf_update_query(results_dir: Path):
    """Incremental vs batch SlidingWindowCDF on the update+query cycle.

    Two gates, following ``bench_runner_scaling``:

    1. **Bit-identity** (always) — the checksum of every query result
       must match between backends; the incremental structure is only a
       fast path if it changes nothing.
    2. **Speedup** (environment-gated) — the incremental backend must be
       at least :data:`CDF_MIN_SPEEDUP`× faster per cycle.  Set
       ``CDF_BENCH_GATE=0`` to record without asserting (shared/loaded
       boxes where Python microbenchmarks are noise).

    ``CDF_BENCH_RECORD=1`` (re)records ``benchmarks/results/BENCH_cdf.json``.
    """
    rng = np.random.default_rng(5)
    samples = (
        50 + 5 * rng.standard_normal(CDF_BENCH_WINDOW + CDF_BENCH_CYCLES)
    ).tolist()

    batch_s, batch_acc = min(
        _windowed_cycle("batch", samples) for _ in range(3)
    )
    inc_s, inc_acc = min(
        _windowed_cycle("incremental", samples) for _ in range(3)
    )

    # Gate 1: the backends must agree bit-for-bit on every query.
    assert inc_acc == batch_acc, (
        f"incremental checksum {inc_acc!r} != batch {batch_acc!r}"
    )

    speedup = batch_s / inc_s if inc_s > 0 else float("inf")
    measurement = {
        "window": CDF_BENCH_WINDOW,
        "cycles": CDF_BENCH_CYCLES,
        "batch_us_per_cycle": round(batch_s * 1e6 / CDF_BENCH_CYCLES, 3),
        "incremental_us_per_cycle": round(inc_s * 1e6 / CDF_BENCH_CYCLES, 3),
        "speedup": round(speedup, 3),
        "bit_identical": True,
    }

    results_path = results_dir / CDF_RESULTS_NAME
    record = os.environ.get("CDF_BENCH_RECORD") == "1"
    if results_path.exists() and not record:
        data = json.loads(results_path.read_text(encoding="utf-8"))
        data["latest"] = measurement
    else:
        data = {
            "schema": 1,
            "workload": (
                f"W={CDF_BENCH_WINDOW}, {CDF_BENCH_CYCLES} cycles of "
                "update + evaluate + partial_mean_below + percentile"
            ),
            "baseline": measurement,
            "latest": measurement,
        }
    atomic_write_json(results_path, data)

    # Gate 2: skip only when explicitly told the box cannot measure it.
    if os.environ.get("CDF_BENCH_GATE") != "0":
        assert speedup >= CDF_MIN_SPEEDUP, (
            f"incremental backend only {speedup:.2f}x faster than batch "
            f"(< {CDF_MIN_SPEEDUP}x): batch {batch_s:.3f}s vs "
            f"incremental {inc_s:.3f}s over {CDF_BENCH_CYCLES} cycles"
        )


def test_percentile_failure_scoring(benchmark):
    """Vectorized Figure-4 scoring throughput (thousands of predictions)."""
    from repro.monitoring.errors import percentile_prediction_failure_rate

    rng = np.random.default_rng(4)
    series = 50 + 5 * rng.standard_normal(20_000)

    rate = benchmark(
        lambda: percentile_prediction_failure_rate(
            series, q=10, history=500, horizon=5
        )
    )
    assert 0.0 <= rate <= 1.0


def test_interval_allocation(benchmark):
    """Per-interval cost of PGOS fluid allocation plus water-filling."""
    rng = np.random.default_rng(2)
    scheduler = PGOSScheduler(min_history=30)
    scheduler.setup(
        [
            StreamSpec(name="crit", required_mbps=20.0, probability=0.95),
            StreamSpec(name="bulk", elastic=True, nominal_mbps=30.0),
        ],
        ["A", "B"],
        dt=0.1,
        tw=1.0,
    )
    scheduler.seed_history(
        {
            "A": 50 + 4 * rng.standard_normal(200),
            "B": 30 + 9 * rng.standard_normal(200),
        }
    )
    backlog = {"crit": 20.0, "bulk": None}

    def one_interval():
        requests = scheduler.allocate(0, backlog)
        return {
            p: water_fill(reqs, 50.0) for p, reqs in requests.items()
        }

    granted = benchmark(one_interval)
    assert granted["A"]["crit"] > 0
    # 0.1 s intervals: allocation must cost a small fraction of that.
    assert benchmark.stats["mean"] < 0.01
