"""Layered-video bench (the tech-report extension experiment)."""

from repro.harness.figures import video_ext


def test_video_layers(benchmark, save_report):
    result = benchmark.pedantic(
        video_ext.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    m = result.measured
    # PGOS protects the base layer at least as well as MSFQ.
    assert m["pgos_stall_fraction"] <= m["msfq_stall_fraction"] + 1e-9
    assert m["pgos_stall_fraction"] <= 0.05
