"""Topology benchmark: per-fabric capacity envelopes and traffic shift.

Three measurements, recorded to ``benchmarks/results/BENCH_topo.json``:

1. **Per-preset envelope** — the full capacity-envelope search on each
   headline fabric (``fat_tree_k4``, ``leaf_spine_4x8``) under the
   default NLANR traffic rotation.  ``envelope_sessions_per_sec`` (the
   max sustainable arrival rate) is the ledger headline; wall-clock
   seconds per search ride along as telemetry.
2. **Backend identity** — each preset's churn run executed under the
   vectorized and scalar delivery backends in one process; the report
   checksums must be **bit-identical** and that asserts
   unconditionally, exactly like ``bench_scale``.
3. **Traffic shift** — the same reduced envelope on ``fat_tree_k4``
   under ``nlanr`` vs ``dc-incast`` vs ``dc-hotrack``: the calibrated
   datacenter scenarios must *move* the envelope (incast collapses it,
   hot-rack skew caps it below the WAN baseline).  The shift asserts
   unconditionally — it is a modeling property, not a timing.

Performance gating follows the repo convention: numbers are always
recorded, but the envelope floor asserts only when ``TOPO_BENCH_GATE=1``
— shared CI runners measure the neighbours, not the code.

Environment knobs:

* ``TOPO_BENCH_ITERATIONS`` — bisection steps per search (default 4).
* ``TOPO_BENCH_PROBE_S``    — seconds of churn per probe (default 20).
* ``TOPO_BENCH_SESSIONS``   — per-probe session cap (default 400).
* ``TOPO_BENCH_GATE``       — set to 1 to assert the envelope floors.
* ``TOPO_BENCH_RECORD``     — set to 1 to (re)record the JSON baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.fsutil import atomic_write_json
from repro.workload.envelope import estimate_envelope
from repro.workload.scenarios import run_scenario

RESULTS_NAME = "BENCH_topo.json"

#: The ledger-headline fabrics; one envelope search each.
HEADLINE_PRESETS = ("fat_tree_k4", "leaf_spine_4x8")

#: Envelope floors (sessions/sec), asserted only under
#: ``TOPO_BENCH_GATE=1``.  The recorded baselines are ~17.9 (fat-tree,
#: two disjoint paths) and 256 (leaf-spine, four paths, bracket-capped);
#: the floors are deliberately slack so only a real regression trips.
MIN_ENVELOPE_RATE = {"fat_tree_k4": 8.0, "leaf_spine_4x8": 64.0}

ITERATIONS = int(os.environ.get("TOPO_BENCH_ITERATIONS", "4"))
PROBE_S = float(os.environ.get("TOPO_BENCH_PROBE_S", "20"))
MAX_SESSIONS = int(os.environ.get("TOPO_BENCH_SESSIONS", "400"))

_SEARCH = dict(
    seed=0,
    iterations=ITERATIONS,
    probe_duration=PROBE_S,
    max_sessions=MAX_SESSIONS,
    hi_scale=16.0,
)


def _update_results(results_dir: Path, section: str, measurement: dict):
    """Merge one section's measurement into the shared results file."""
    results_path = results_dir / RESULTS_NAME
    if results_path.exists():
        data = json.loads(results_path.read_text(encoding="utf-8"))
    else:
        data = {"schema": 1}
    entry = data.get(section)
    record = os.environ.get("TOPO_BENCH_RECORD") == "1"
    if entry is None or record:
        entry = {"baseline": measurement, "latest": measurement}
    else:
        entry["latest"] = measurement
    data[section] = entry
    atomic_write_json(results_path, data)


def _search(topology: str):
    t0 = time.perf_counter()
    envelope = estimate_envelope("baseline", topology=topology, **_SEARCH)
    return envelope, time.perf_counter() - t0


def test_preset_envelopes(results_dir: Path):
    for preset in HEADLINE_PRESETS:
        envelope, wall_s = _search(preset)
        measurement = {
            "topology": preset,
            "iterations": ITERATIONS,
            "probe_duration_s": PROBE_S,
            "max_sessions": MAX_SESSIONS,
            "envelope_sessions_per_sec": round(
                envelope.max_sustainable_rate, 4
            ),
            "max_sustainable_scale": round(
                envelope.max_sustainable_scale, 4
            ),
            "probes": len(envelope.probes),
            "search_wall_s": round(wall_s, 3),
            "checksum": envelope.checksum(),
        }
        _update_results(results_dir, preset, measurement)
        if os.environ.get("TOPO_BENCH_GATE") == "1":
            assert (
                envelope.max_sustainable_rate >= MIN_ENVELOPE_RATE[preset]
            ), (
                f"{preset} envelope regressed: "
                f"{envelope.max_sustainable_rate} sessions/s"
            )


def test_backend_identity(results_dir: Path):
    # Determinism is the contract, not a timing: the vectorized and
    # scalar backends must produce bit-identical reports on every
    # generated fabric, asserted unconditionally.
    checksums = {}
    for preset in HEADLINE_PRESETS + ("repetita_wan_s0",):
        run = dict(
            seed=0, duration=10.0, max_sessions=60, topology=preset
        )
        vectorized = run_scenario(
            "baseline", sim_backend="vectorized", **run
        )
        scalar = run_scenario("baseline", sim_backend="scalar", **run)
        assert vectorized.checksum() == scalar.checksum(), (
            f"{preset}: backends diverged"
        )
        checksums[preset] = vectorized.checksum()
    _update_results(
        results_dir,
        "identity",
        {"byte_identical": True, "checksums": checksums},
    )


def test_traffic_shift(results_dir: Path):
    rates = {}
    walls = {}
    bracket_cap = None
    for traffic in ("nlanr", "dc-incast", "dc-hotrack"):
        envelope, wall_s = _search(f"fat_tree_k4:{traffic}")
        rates[traffic] = envelope.max_sustainable_rate
        walls[traffic] = round(wall_s, 3)
        bracket_cap = envelope.base_rate * _SEARCH["hi_scale"]

    measurement = {
        "topology": "fat_tree_k4",
        "envelope_sessions_per_sec": {
            traffic: round(rate, 4) for traffic, rate in rates.items()
        },
        "search_wall_s": walls,
    }
    _update_results(results_dir, "traffic_shift", measurement)

    # The calibrated datacenter scenarios must measurably shift the
    # envelope relative to the WAN baseline (acceptance criterion).
    assert rates["dc-incast"] < rates["nlanr"], (
        f"incast did not shrink the envelope: {rates}"
    )
    # Hot-rack skew caps the envelope below the WAN baseline — but when
    # a reduced smoke run right-censors *both* searches at the bracket
    # ceiling, the comparison carries no information; only assert
    # strictly when the baseline landed inside the bracket.
    assert rates["dc-hotrack"] <= rates["nlanr"], (
        f"hot-rack skew raised the envelope: {rates}"
    )
    if rates["nlanr"] < bracket_cap:
        assert rates["dc-hotrack"] < rates["nlanr"], (
            f"hot-rack skew left the envelope unchanged: {rates}"
        )
