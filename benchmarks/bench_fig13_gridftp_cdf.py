"""Figure 13 bench: GridFTP vs IQPG-GridFTP throughput CDFs."""

from repro.harness.figures import fig13


def test_fig13_gridftp_cdf(benchmark, save_report):
    result = benchmark.pedantic(
        fig13.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    m = result.measured
    # IQPG's DT1 CDF is a near-vertical step at the requirement.
    assert m["iqpg_dt1_attainment_p95"] >= 0.99
    # GridFTP's is smeared below it.
    assert m["gridftp_dt1_attainment_p95"] < m["iqpg_dt1_attainment_p95"]
