"""Figure 4 bench: mean prediction error vs percentile failure rate.

Regenerates the prediction-error sweep over measurement windows 0.1-1.0 s
and checks the paper's headline gap: average predictors err ~20 % while
the percentile prediction fails only a few percent of the time.
"""

from repro.harness.figures import fig4


def test_fig4_prediction(benchmark, save_report):
    result = benchmark.pedantic(
        fig4.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    measured = result.measured
    # The figure's shape: percentile prediction fails far less often than
    # mean prediction errs.
    assert (
        measured["percentile_failure_rate_avg"]
        < measured["mean_prediction_error_avg"] / 2
    )
    assert measured["percentile_failure_rate_max"] < 0.08
