"""Cluster scale-out benchmark: sessions/sec at shard counts 1, 2, 4.

One measurement per shard count, recorded to
``benchmarks/results/BENCH_cluster.json``.  Each shard count spawns a
fleet once, runs a warmup job (amortizing interpreter start and module
imports — the fleet is reusable across jobs by design), then times a
second identical job; wall-clock sessions/sec of the timed job is
recorded.  The merged report checksum must be **bit-identical** across
every shard count and to the in-process partitioned baseline, and that
asserts unconditionally — determinism is the contract, timing is
telemetry.

Performance gating follows the repo convention: numbers are always
recorded, but the >= 1.5x speedup floor at 4 shards asserts only when
``CLUSTER_BENCH_GATE=1``.  Scale-out needs cores: on a single-CPU
container every worker shares one core and the speedup is ~1x by
physics, so the recorded measurement carries ``cpus`` to make the
baseline self-describing.  Shared CI runners measure the neighbours,
not the code.

Environment knobs:

* ``CLUSTER_BENCH_SESSIONS`` — truncate the churn plan (0 = full run;
  CI smoke uses a small count).
* ``CLUSTER_BENCH_DURATION`` — simulated seconds per job (default 60).
* ``CLUSTER_BENCH_GATE``     — set to 1 to assert the 4-shard speedup.
* ``CLUSTER_BENCH_RECORD``   — set to 1 to (re)record the baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cluster import run_partitioned
from repro.cluster.master import ClusterMaster
from repro.fsutil import atomic_write_json

RESULTS_NAME = "BENCH_cluster.json"

SHARD_COUNTS = (1, 2, 4)

#: 4-shard speedup floor over the 1-shard cluster run, asserted only
#: under ``CLUSTER_BENCH_GATE=1``.  The stock catalog's three tenants
#: land on three distinct workers at 4 shards; with >= 4 real cores the
#: slice imbalance caps ideal speedup near 1.8x, and 1.5 leaves slack
#: for scheduler noise.
MIN_SPEEDUP_4 = 1.5

MAX_SESSIONS = int(os.environ.get("CLUSTER_BENCH_SESSIONS", "0"))
DURATION = float(os.environ.get("CLUSTER_BENCH_DURATION", "60"))
EPOCH_S = 5.0


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _update_results(results_dir: Path, section: str, measurement: dict):
    """Merge one section's measurement into the shared results file."""
    results_path = results_dir / RESULTS_NAME
    if results_path.exists():
        data = json.loads(results_path.read_text(encoding="utf-8"))
    else:
        data = {"schema": 1}
    entry = data.get(section)
    record = os.environ.get("CLUSTER_BENCH_RECORD") == "1"
    if entry is None or record:
        entry = {"baseline": measurement, "latest": measurement}
    else:
        entry["latest"] = measurement
    data[section] = entry
    atomic_write_json(results_path, data)


def test_cluster_scaleout(results_dir: Path):
    max_sessions = MAX_SESSIONS if MAX_SESSIONS > 0 else None

    baseline = run_partitioned(
        "baseline", seed=0, duration=DURATION, max_sessions=max_sessions
    )
    expect = baseline.checksum()

    runs = {}
    for shards in SHARD_COUNTS:
        with ClusterMaster(
            scenario="baseline",
            seed=0,
            shards=shards,
            epoch_s=EPOCH_S,
            max_sessions=max_sessions,
        ) as master:
            master.run(duration=DURATION)  # warmup: spawn + imports
            t0 = time.perf_counter()
            report = master.run(duration=DURATION)
            wall_s = time.perf_counter() - t0

        # The cluster contract: shard count never changes the bytes —
        # always asserted, regardless of gating.
        checksum = report.checksum()
        assert checksum == expect, (
            f"{shards}-shard merge diverged from the in-process "
            f"baseline: {checksum[:12]} vs {expect[:12]}"
        )
        runs[shards] = {
            "workers": report.telemetry["workers"],
            "offered": report.offered,
            "wall_s": round(wall_s, 3),
            "sessions_per_sec": round(report.offered / wall_s, 2),
        }

    speedup_2 = runs[2]["sessions_per_sec"] / runs[1]["sessions_per_sec"]
    speedup_4 = runs[4]["sessions_per_sec"] / runs[1]["sessions_per_sec"]
    measurement = {
        "scenario": "baseline",
        "seed": 0,
        "duration": DURATION,
        "max_sessions": MAX_SESSIONS,
        "epoch_s": EPOCH_S,
        "cpus": _cpus(),
        "byte_identical": True,
        "checksum": expect,
        "shards": {str(n): runs[n] for n in SHARD_COUNTS},
        "speedup_2": round(speedup_2, 2),
        "speedup_4": round(speedup_4, 2),
        "sessions_per_sec_4": runs[4]["sessions_per_sec"],
    }
    _update_results(results_dir, "scaleout", measurement)

    if os.environ.get("CLUSTER_BENCH_GATE") == "1":
        assert speedup_4 >= MIN_SPEEDUP_4, (
            f"4-shard scale-out regressed: {speedup_4:.2f}x "
            f"< {MIN_SPEEDUP_4}x over the 1-shard run"
        )
