"""Scale benchmark: session churn throughput and 1k-concurrent stepping.

Two measurements, recorded to ``benchmarks/results/BENCH_scale.json``:

1. **Churn throughput** — the full ``baseline`` workload scenario
   (>= 1000 sessions arriving, living, and departing against the
   middleware) run twice with the same seed: once under the vectorized
   delivery backend, once under the scalar loop, in one process.  The
   wall-clock sessions/sec and steps/sec are recorded; the two runs'
   report checksums must be **bit-identical**, and that asserts
   unconditionally — determinism (and the vectorized core's equality
   contract) is the contract, timing is telemetry.
2. **Concurrent population** — :meth:`IQPathsService.open_streams`
   stands up ``SCALE_BENCH_STREAMS`` (default 1000) streams in one
   batch admission decision, then the delivery loop advances 10 s of
   session time; steps/sec at that standing population is recorded.

Performance gating follows the repo convention: numbers are always
recorded, but the sessions/sec floor asserts only when
``SCALE_BENCH_GATE=1`` — shared CI runners measure the neighbours, not
the code.

Environment knobs:

* ``SCALE_BENCH_SESSIONS`` — truncate the churn plan (0 = full run;
  CI smoke uses a small count).
* ``SCALE_BENCH_STREAMS``  — concurrent-population size (default 1000).
* ``SCALE_BENCH_GATE``     — set to 1 to assert the sessions/sec floor.
* ``SCALE_BENCH_RECORD``   — set to 1 to (re)record the JSON baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.fsutil import atomic_write_json
from repro.middleware.service import IQPathsService
from repro.network.emulab import make_figure8_testbed
from repro.runner.spec import mix_seed
from repro.workload import (
    default_catalog,
    plan_concurrent_batch,
    run_scenario,
)

RESULTS_NAME = "BENCH_scale.json"

#: Churn throughput floor, asserted only under ``SCALE_BENCH_GATE=1``.
#: The recorded baseline sustains ~95 sessions/s; 30 is deliberately
#: slack so only a real regression (not scheduler noise) trips it.
MIN_SESSIONS_PER_SEC = 30.0

MAX_SESSIONS = int(os.environ.get("SCALE_BENCH_SESSIONS", "0"))
N_STREAMS = int(os.environ.get("SCALE_BENCH_STREAMS", "1000"))

#: Session seconds the concurrent-population measurement advances.
ADVANCE_S = 10.0


def _update_results(results_dir: Path, section: str, measurement: dict):
    """Merge one section's measurement into the shared results file."""
    results_path = results_dir / RESULTS_NAME
    if results_path.exists():
        data = json.loads(results_path.read_text(encoding="utf-8"))
    else:
        data = {"schema": 1}
    entry = data.get(section)
    record = os.environ.get("SCALE_BENCH_RECORD") == "1"
    if entry is None or record:
        entry = {"baseline": measurement, "latest": measurement}
    else:
        entry["latest"] = measurement
    data[section] = entry
    atomic_write_json(results_path, data)


def test_churn_throughput(results_dir: Path):
    max_sessions = MAX_SESSIONS if MAX_SESSIONS > 0 else None

    t0 = time.perf_counter()
    report = run_scenario(
        "baseline", seed=0, max_sessions=max_sessions,
        sim_backend="vectorized",
    )
    wall_s = time.perf_counter() - t0
    rerun = run_scenario(
        "baseline", seed=0, max_sessions=max_sessions,
        sim_backend="scalar",
    )

    # The scale contract: same seed, same bytes — asserted across the
    # two delivery backends *in one process*, so the checksum pins both
    # the seed-determinism and the vectorized core's bit-identity.
    checksum = report.checksum()
    assert checksum == rerun.checksum(), (
        "vectorized and scalar baseline runs diverged: "
        f"{checksum[:12]} vs {rerun.checksum()[:12]}"
    )
    if max_sessions is None:
        assert report.offered >= 1000, (
            f"full baseline offered only {report.offered} sessions"
        )

    steps = int(round(report.duration / report.dt))
    sessions_per_sec = report.offered / wall_s
    measurement = {
        "scenario": "baseline",
        "seed": 0,
        "max_sessions": MAX_SESSIONS,
        "offered": report.offered,
        "peak_concurrent": report.peak_concurrent,
        "wall_s": round(wall_s, 3),
        "sessions_per_sec": round(sessions_per_sec, 2),
        "steps_per_sec": round(steps / wall_s, 2),
        "byte_identical": True,
        "checksum": checksum,
    }
    _update_results(results_dir, "churn", measurement)

    if os.environ.get("SCALE_BENCH_GATE") == "1":
        assert sessions_per_sec >= MIN_SESSIONS_PER_SEC, (
            f"churn throughput regressed: {sessions_per_sec:.1f} "
            f"sessions/s < {MIN_SESSIONS_PER_SEC}"
        )


def test_concurrent_population(results_dir: Path):
    specs = plan_concurrent_batch(default_catalog(), N_STREAMS, seed=0)
    realization = make_figure8_testbed().realize(
        seed=mix_seed(0, "bench-scale-concurrent"),
        duration=10.0 + ADVANCE_S + 5.0,
        dt=0.1,
    )
    # Lenient admission: N_STREAMS will not all fit the overlay's
    # guarantee budget, and this measurement is about stepping cost at a
    # standing population, not about admission verdicts.
    service = IQPathsService(
        realization, warmup_intervals=100, strict_admission=False
    )

    t0 = time.perf_counter()
    handles = service.open_streams(specs)
    open_s = time.perf_counter() - t0
    assert len(handles) == N_STREAMS
    assert all(h.open for h in handles)
    ids = [h.stream_id for h in handles]
    assert ids == sorted(ids) and len(set(ids)) == N_STREAMS

    t0 = time.perf_counter()
    service.advance(ADVANCE_S)
    wall_s = time.perf_counter() - t0
    steps = int(round(ADVANCE_S / service.dt))

    delivered_total = sum(
        r.mean_mbps for r in service.reports().values()
    )
    assert delivered_total > 0.0, "no stream delivered anything"

    measurement = {
        "streams": N_STREAMS,
        "open_s": round(open_s, 3),
        "advance_s": ADVANCE_S,
        "steps": steps,
        "wall_s": round(wall_s, 3),
        "steps_per_sec": round(steps / wall_s, 2),
        "delivered_mbps_total": round(delivered_total, 2),
    }
    _update_results(results_dir, "concurrent", measurement)
