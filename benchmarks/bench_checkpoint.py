"""Checkpoint benchmark: snapshot overhead and resume identity.

Two measurements, recorded to
``benchmarks/results/BENCH_checkpoint.json``:

1. **Snapshot overhead** — the ``baseline`` workload scenario run
   plain, then run again under
   :func:`~repro.checkpoint.run_scale_scenario_checkpointed` with
   periodic digest-verified snapshots.  Both report checksums must be
   **bit-identical** (asserted unconditionally — checkpointing must
   never perturb the simulation); the wall-clock overhead percentage
   is recorded, and asserts the <5% ceiling only under
   ``CHECKPOINT_BENCH_GATE=1`` (shared CI runners measure the
   neighbours, not the code).
2. **Snapshot cost** — count, mean latency, and byte size of the
   snapshots the checkpointed run wrote.

Environment knobs:

* ``CHECKPOINT_BENCH_SESSIONS`` — truncate the churn plan
  (0 = full run; CI smoke uses a small count).
* ``CHECKPOINT_BENCH_EVERY``    — virtual seconds between snapshots
  (default 5.0, the production default).
* ``CHECKPOINT_BENCH_GATE``     — set to 1 to assert the overhead
  ceiling.
* ``CHECKPOINT_BENCH_RECORD``   — set to 1 to (re)record the JSON
  baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    run_scale_scenario_checkpointed,
)
from repro.fsutil import atomic_write_json
from repro.workload.scenarios import make_scenario, run_scale_scenario

RESULTS_NAME = "BENCH_checkpoint.json"

#: Snapshot overhead ceiling (fraction of plain wall time), asserted
#: only under ``CHECKPOINT_BENCH_GATE=1``.
MAX_OVERHEAD_FRAC = 0.05

MAX_SESSIONS = int(os.environ.get("CHECKPOINT_BENCH_SESSIONS", "0"))
EVERY_S = float(os.environ.get("CHECKPOINT_BENCH_EVERY", "5.0"))


def _update_results(results_dir: Path, section: str, measurement: dict):
    """Merge one section's measurement into the shared results file."""
    results_path = results_dir / RESULTS_NAME
    if results_path.exists():
        data = json.loads(results_path.read_text(encoding="utf-8"))
    else:
        data = {"schema": 1}
    entry = data.get(section)
    record = os.environ.get("CHECKPOINT_BENCH_RECORD") == "1"
    if entry is None or record:
        entry = {"baseline": measurement, "latest": measurement}
    else:
        entry["latest"] = measurement
    data[section] = entry
    atomic_write_json(results_path, data)


class _CountingStore(CheckpointStore):
    """CheckpointStore that tallies save count, latency, and bytes."""

    def __init__(self, root):
        super().__init__(root)
        self.saves = 0
        self.save_s = 0.0
        self.last_bytes = 0

    def save(self, payload, *, fingerprint, meta=None):
        t0 = time.perf_counter()
        super().save(payload, fingerprint=fingerprint, meta=meta)
        self.save_s += time.perf_counter() - t0
        self.saves += 1
        self.last_bytes = self.path.stat().st_size


def test_checkpoint_overhead(results_dir: Path, tmp_path: Path):
    max_sessions = MAX_SESSIONS if MAX_SESSIONS > 0 else None
    scenario = make_scenario("baseline")

    t0 = time.perf_counter()
    plain = run_scale_scenario(scenario, seed=0, max_sessions=max_sessions)
    plain_s = time.perf_counter() - t0

    store = _CountingStore(tmp_path / "ckpt")
    t0 = time.perf_counter()
    checkpointed = run_scale_scenario_checkpointed(
        scenario,
        store,
        seed=0,
        max_sessions=max_sessions,
        config=CheckpointConfig(every_s=EVERY_S),
        resume=False,
    )
    ckpt_s = time.perf_counter() - t0

    # Identity is the contract and always asserts: periodic snapshots
    # must never perturb the simulation they observe.
    assert plain.checksum() == checkpointed.checksum(), (
        "checkpointing changed the report bytes: "
        f"{plain.checksum()[:12]} vs {checkpointed.checksum()[:12]}"
    )
    assert store.saves > 0, "checkpointed run never snapshotted"

    overhead = (ckpt_s - plain_s) / plain_s if plain_s > 0 else 0.0
    measurement = {
        "scenario": "baseline",
        "seed": 0,
        "max_sessions": MAX_SESSIONS,
        "every_s": EVERY_S,
        "offered": plain.offered,
        "plain_wall_s": round(plain_s, 3),
        "checkpointed_wall_s": round(ckpt_s, 3),
        "overhead_frac": round(overhead, 4),
        "byte_identical": True,
        "checksum": plain.checksum(),
    }
    _update_results(results_dir, "overhead", measurement)

    snapshot = {
        "saves": store.saves,
        "mean_save_ms": round(1000.0 * store.save_s / store.saves, 3),
        "snapshot_bytes": store.last_bytes,
    }
    _update_results(results_dir, "snapshot", snapshot)

    if os.environ.get("CHECKPOINT_BENCH_GATE") == "1":
        assert overhead < MAX_OVERHEAD_FRAC, (
            f"snapshot overhead {overhead:.1%} exceeds "
            f"{MAX_OVERHEAD_FRAC:.0%} of the plain run "
            f"({plain_s:.2f}s -> {ckpt_s:.2f}s)"
        )
