"""Figure 10 bench: throughput CDFs of the four algorithms."""

from repro.harness.figures import fig10


def test_fig10_cdf(benchmark, save_report):
    result = benchmark.pedantic(
        fig10.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    m = result.measured
    # Paper: PGOS >= 99.5 % of required bandwidth 95 % of the time;
    # MSFQ only ~87 %.
    assert m["pgos_bond1_attainment_p95"] >= 0.97
    assert m["msfq_bond1_attainment_p95"] < 0.95
    assert m["msfq_bond1_p95_time_mbps"] < m["pgos_bond1_p95_time_mbps"]
