"""Figure 9 bench: SmartPointer throughput time series, four algorithms."""

from repro.harness.figures import fig9


def test_fig9_timeseries(benchmark, save_report):
    result = benchmark.pedantic(
        fig9.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    save_report(result)
    m = result.measured
    # PGOS pins the critical streams at their targets...
    assert abs(m["pgos_atom_mean"] - 3.249) / 3.249 < 0.02
    assert abs(m["pgos_bond1_mean"] - 22.148) / 22.148 < 0.02
    # ...far more stably than MSFQ...
    assert m["pgos_bond1_std"] < m["msfq_bond1_std"] / 2
    # ...without compromising the best-effort stream.
    assert abs(m["bond2_mean_ratio_pgos_over_msfq"] - 1.0) < 0.05
