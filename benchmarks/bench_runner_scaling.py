"""Runner scaling benchmark: parallel must be faster AND identical.

Fans a multi-seed figure sweep (distinct derived seeds, so every spec
is real work with its own cache key) through :func:`repro.runner.run_specs`
twice — serial (``workers=1``) and parallel (``workers=min(4, cores)``)
— both cold, and records the wall-clock ratio to
``benchmarks/results/BENCH_runner.json``.

Two gates:

1. **Byte-identity** (always) — every spec's payload digest must match
   between the serial and parallel runs.  This is the runner's core
   promise and is machine-independent, so it asserts unconditionally.
2. **Speedup** (hardware-gated) — with ``workers`` actual cores
   available the parallel run must be at least :data:`MIN_SPEEDUP`×
   faster than serial.  On boxes without enough cores (the recorded
   baseline here was taken on a 1-core container, speedup ~1×) the
   number is recorded but not asserted: a speedup gate on hardware
   that cannot express parallelism measures the scheduler, not us.

Environment knobs:

* ``RUNNER_BENCH_SPECS``  — sweep width (default 4; CI smoke can use 2).
* ``RUNNER_BENCH_RECORD`` — set to 1 to (re)record the JSON baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.fsutil import atomic_write_json
from repro.runner import run_specs, seed_sweep_suite
from repro.runner.cache import payload_digest

RESULTS_NAME = "BENCH_runner.json"

#: Required parallel-over-serial speedup when the hardware has at least
#: as many cores as workers.  2× with 4 workers is deliberately slack —
#: it absorbs fork/pickle overhead and one straggler spec.
MIN_SPEEDUP = 2.0

N_SPECS = int(os.environ.get("RUNNER_BENCH_SPECS", "4"))


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_runner_scaling(results_dir: Path):
    specs = seed_sweep_suite("fig4", n_seeds=N_SPECS, fast=True)
    cores = _cores()
    workers = min(4, max(2, cores))

    t0 = time.perf_counter()
    serial = run_specs(specs, workers=1, timeout_s=600.0)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_specs(specs, workers=workers, timeout_s=600.0)
    parallel_s = time.perf_counter() - t0

    assert serial.all_ok and parallel.all_ok

    # Gate 1: worker count must never change a byte of any payload.
    digests = []
    for serial_o, parallel_o in zip(serial.outcomes, parallel.outcomes):
        d_serial = payload_digest(serial_o.payload)
        d_parallel = payload_digest(parallel_o.payload)
        assert d_serial == d_parallel, (
            f"{serial_o.spec.name}: parallel payload diverged from serial "
            f"({d_serial[:12]} vs {d_parallel[:12]})"
        )
        digests.append(d_serial)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    measurement = {
        "n_specs": len(specs),
        "workers": workers,
        "cores": cores,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "byte_identical": True,
        "payload_digests": digests,
    }

    results_path = results_dir / RESULTS_NAME
    record = os.environ.get("RUNNER_BENCH_RECORD") == "1"
    if results_path.exists() and not record:
        data = json.loads(results_path.read_text(encoding="utf-8"))
        data["latest"] = measurement
    else:
        data = {
            "schema": 1,
            "workload": f"{N_SPECS}x fig4-fast, derived seeds, cold cache",
            "baseline": measurement,
            "latest": measurement,
        }
    atomic_write_json(results_path, data)

    # Gate 2: only meaningful when the cores to parallelize over exist.
    if cores >= workers:
        assert speedup >= MIN_SPEEDUP, (
            f"{workers} workers on {cores} cores gave only "
            f"{speedup:.2f}x over serial (< {MIN_SPEEDUP}x): "
            f"serial {serial_s:.1f}s vs parallel {parallel_s:.1f}s"
        )
