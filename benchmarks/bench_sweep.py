"""Cross-traffic intensity sweep: the guarantee envelope.

Not a paper figure — maps where the SmartPointer workload's guarantees
live as the shared network's load grows, including the admission
crossover (the point where IQ-Paths' upcall tells the application to
lower its requirements).
"""

from pathlib import Path

from repro.harness.report import write_report
from repro.harness.sweep import (
    admission_crossover,
    render_sweep,
    sweep_cross_traffic,
)

SCALES = (0.6, 1.0, 1.4, 1.8)


def test_cross_traffic_sweep(benchmark, results_dir: Path):
    points = benchmark.pedantic(
        sweep_cross_traffic,
        kwargs={"scales": SCALES, "duration": 60.0, "warmup_intervals": 150},
        rounds=1,
        iterations=1,
    )
    write_report(
        results_dir / "sweep.txt",
        render_sweep(points)
        + f"\nadmission crossover at scale: {admission_crossover(points)}",
    )
    by_scale = {p.scale: p for p in points}
    # Light load: everything admitted, PGOS attains its guarantee.
    assert by_scale[0.6].admitted
    assert by_scale[0.6].attainment["PGOS"] >= 0.95
    assert by_scale[1.0].attainment["PGOS"] >= 0.95
    # PGOS never attains less than MSFQ anywhere on the sweep.
    for point in points:
        assert (
            point.attainment["PGOS"] >= point.attainment["MSFQ"] - 0.02
        ), point.scale
    # Heavy load: the workload is no longer admittable at 95 %.
    crossover = admission_crossover(points)
    assert crossover is not None and crossover <= SCALES[-1]
