"""Delivery-core benchmark: vectorized SoA stepping vs the scalar loop.

One measurement, recorded to ``benchmarks/results/BENCH_sim_core.json``:
both backends advance the *same* standing population of
``SIM_BENCH_STREAMS`` (default 2000, always 1000+) concurrent streams
through ``ADVANCE_S`` seconds of session time in one process.  Two
assertions with very different standing:

* **Identity** — the per-stream delivered-throughput reports of the two
  backends must digest identically.  Asserted **unconditionally**:
  bit-identity is the vectorized core's contract, timing is telemetry.
* **Speedup** — the vectorized backend must step at ≥ ``MIN_SPEEDUP``×
  the scalar backend's rate.  Asserted only under ``SIM_BENCH_GATE=1``
  (repo convention: shared CI runners measure the neighbours, not the
  code), but the measured ratio is always recorded.

Environment knobs:

* ``SIM_BENCH_STREAMS`` — standing population (default 2000).
* ``SIM_BENCH_GATE``    — set to 1 to assert the speedup floor.
* ``SIM_BENCH_RECORD``  — set to 1 to (re)record the JSON baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.fsutil import atomic_write_json
from repro.middleware.service import IQPathsService
from repro.network.emulab import make_figure8_testbed
from repro.runner.cache import payload_digest
from repro.runner.spec import mix_seed
from repro.workload import default_catalog, plan_concurrent_batch

RESULTS_NAME = "BENCH_sim_core.json"

#: Vectorized/scalar steps-per-second ratio floor, asserted only under
#: ``SIM_BENCH_GATE=1``.  Measured ~11x at the default population; 10 is
#: the issue's floor, not a slack bound — population size buys margin.
MIN_SPEEDUP = 10.0

N_STREAMS = int(os.environ.get("SIM_BENCH_STREAMS", "2000"))

#: Session seconds each backend advances the standing population.
ADVANCE_S = 10.0


def _update_results(results_dir: Path, section: str, measurement: dict):
    """Merge one section's measurement into the shared results file."""
    results_path = results_dir / RESULTS_NAME
    if results_path.exists():
        data = json.loads(results_path.read_text(encoding="utf-8"))
    else:
        data = {"schema": 1}
    entry = data.get(section)
    record = os.environ.get("SIM_BENCH_RECORD") == "1"
    if entry is None or record:
        entry = {"baseline": measurement, "latest": measurement}
    else:
        entry["latest"] = measurement
    data[section] = entry
    atomic_write_json(results_path, data)


def _advance_population(backend: str, specs) -> tuple[float, int, str]:
    """Stand up the population under one backend; returns timing + digest."""
    realization = make_figure8_testbed().realize(
        seed=mix_seed(0, "bench-sim-core"),
        duration=10.0 + ADVANCE_S + 5.0,
        dt=0.1,
    )
    service = IQPathsService(
        realization,
        warmup_intervals=100,
        strict_admission=False,
        sim_backend=backend,
    )
    handles = service.open_streams(specs)
    assert len(handles) == N_STREAMS
    assert service.sim_backend == backend

    t0 = time.perf_counter()
    service.advance(ADVANCE_S)
    wall_s = time.perf_counter() - t0

    steps = int(round(ADVANCE_S / service.dt))
    digest = payload_digest(
        {name: r.mbps.tolist() for name, r in service.reports().items()}
    )
    return wall_s, steps, digest


def _best_of(backend: str, specs, repeats: int = 2):
    """Min wall over repeats (standard noise floor); digests must agree."""
    walls, steps, digests = [], None, set()
    for _ in range(repeats):
        wall, steps, digest = _advance_population(backend, specs)
        walls.append(wall)
        digests.add(digest)
    assert len(digests) == 1, f"{backend} runs disagreed with themselves"
    return min(walls), steps, digests.pop()


def test_vectorized_core(results_dir: Path):
    assert N_STREAMS >= 1000, "the contract is 1000+ concurrent streams"
    specs = plan_concurrent_batch(default_catalog(), N_STREAMS, seed=0)

    scalar_wall, steps, scalar_digest = _best_of("scalar", specs)
    vec_wall, vec_steps, vec_digest = _best_of("vectorized", specs)
    assert steps == vec_steps

    # The core contract: same streams, same realization, same bytes —
    # always asserted, in one process, before any timing claim.
    assert scalar_digest == vec_digest, (
        "vectorized backend diverged from scalar at "
        f"{N_STREAMS} streams: {scalar_digest[:12]} vs {vec_digest[:12]}"
    )

    speedup = scalar_wall / vec_wall
    measurement = {
        "streams": N_STREAMS,
        "advance_s": ADVANCE_S,
        "steps": steps,
        "scalar_wall_s": round(scalar_wall, 3),
        "scalar_steps_per_sec": round(steps / scalar_wall, 2),
        "wall_s": round(vec_wall, 3),
        "steps_per_sec": round(steps / vec_wall, 2),
        "speedup": round(speedup, 2),
        "byte_identical": True,
        "checksum": scalar_digest,
    }
    _update_results(results_dir, "delivery_core", measurement)

    if os.environ.get("SIM_BENCH_GATE") == "1":
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized core regressed: {speedup:.1f}x < "
            f"{MIN_SPEEDUP}x at {N_STREAMS} streams"
        )
