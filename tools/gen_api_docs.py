#!/usr/bin/env python
"""Generate docs/api.md: a public-API reference from live docstrings.

Walks every ``repro`` module, collects public classes and functions (the
module's ``__all__`` where defined, else non-underscore top-level names
defined in that module), and emits each with its signature and the first
paragraph of its docstring.

Run:  python tools/gen_api_docs.py [output_path]
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

import repro


def first_paragraph(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n\n", 1)[0].replace("\n", " ").strip()


def public_names(module) -> list[str]:
    if hasattr(module, "__all__"):
        return list(module.__all__)
    return sorted(
        name
        for name, value in vars(module).items()
        if not name.startswith("_")
        and getattr(value, "__module__", None) == module.__name__
        and (inspect.isclass(value) or inspect.isfunction(value))
    )


def try_signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield importlib.import_module(info.name)


def render() -> str:
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `tools/gen_api_docs.py` — regenerate "
        "after changing public APIs.",
        "",
    ]
    for module in iter_modules():
        names = public_names(module)
        entries = []
        for name in names:
            obj = getattr(module, name, None)
            if obj is None:
                continue
            # Skip re-exports: document each object where it is defined.
            defined_in = getattr(obj, "__module__", module.__name__)
            if inspect.ismodule(obj) or defined_in != module.__name__:
                continue
            if inspect.isclass(obj):
                entries.append(
                    f"- **class `{name}`** — {first_paragraph(obj)}"
                )
                for mname, method in sorted(vars(obj).items()):
                    if mname.startswith("_") or not callable(method):
                        continue
                    entries.append(
                        f"  - `.{mname}{try_signature(method)}` — "
                        f"{first_paragraph(method)}"
                    )
            elif inspect.isfunction(obj):
                entries.append(
                    f"- **`{name}{try_signature(obj)}`** — "
                    f"{first_paragraph(obj)}"
                )
        if not entries:
            continue
        lines.append(f"## `{module.__name__}`")
        lines.append("")
        summary = first_paragraph(module)
        if summary:
            lines.append(summary)
            lines.append("")
        lines.extend(entries)
        lines.append("")
    return "\n".join(lines) + "\n"


def main(argv: list[str]) -> int:
    out = Path(argv[1]) if len(argv) > 1 else (
        Path(__file__).parent.parent / "docs" / "api.md"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render(), encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
