#!/usr/bin/env python
"""Regenerate tests/regression/goldens.json from the canonical fast runs.

The golden regression suite (``tests/regression/``) pins the payload
digest of every canonical fast-mode figure run.  When an *intentional*
change shifts experiment output (new figure content, a changed canonical
seed, a modelling fix), rerun this script and commit the updated
goldens together with the change that explains them:

    PYTHONPATH=src python tools/refresh_goldens.py

Never refresh goldens to silence an unexplained diff — a digest shift
with no intentional cause is exactly the regression the suite exists to
catch.

Run:  python tools/refresh_goldens.py [output_path]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.runner import figure_suite, run_specs
from repro.runner.cache import payload_digest

GOLDENS_PATH = Path(__file__).resolve().parent.parent / (
    "tests/regression/goldens.json"
)


def compute_digests() -> dict[str, str]:
    """Run every canonical fast figure inline and digest its payload."""
    report = run_specs(figure_suite(fast=True), workers=0)
    digests = {}
    for outcome in report.outcomes:
        if outcome.status != "ok":
            raise SystemExit(
                f"{outcome.spec.name}: {outcome.status} ({outcome.error})"
            )
        digests[outcome.spec.name] = payload_digest(outcome.payload)
    return digests


def main(argv: list[str]) -> int:
    out_path = Path(argv[1]) if len(argv) > 1 else GOLDENS_PATH
    data = {
        "schema": 1,
        "fast": True,
        "digests": compute_digests(),
    }
    out_path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {out_path} ({len(data['digests'])} digests)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
