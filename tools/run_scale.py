#!/usr/bin/env python
"""Run a multi-tenant workload scenario (or its capacity envelope).

A thin wrapper over ``python -m repro.workload`` runnable straight from
a checkout::

    PYTHONPATH=src python tools/run_scale.py --scenario baseline --seed 0
    python tools/run_scale.py --scenario baseline --envelope
    python tools/run_scale.py --scenario flash-crowd-chaos \\
        --trace-out trace.jsonl --metrics-out metrics.json

Prints the deterministic workload report (same seed, same bytes — the
printed ``checksum`` line is the proof) plus wall-clock sessions/sec
and steps/sec.  All arguments are shared with the module CLI; see
``--help``.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.workload.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
