#!/usr/bin/env python
"""Append benchmark headline metrics to the perf ledger and gate on them.

Subcommands::

    python tools/perf_ledger.py append [--results-dir DIR] [--note TEXT]
    python tools/perf_ledger.py check  [--window N] [--threshold F]
    python tools/perf_ledger.py show   [--metric NAME]

``append`` harvests the headline metric of every
``benchmarks/results/BENCH_*.json`` present (run the benchmarks first)
into one JSONL entry on ``benchmarks/results/LEDGER.jsonl``, stamped
with the machine fingerprint, git revision, and code fingerprint.

``check`` compares the newest entry against the trailing window of
entries from the same machine and exits 1 on any direction-aware
regression beyond the noise-widened budget; a ledger with no history
passes vacuously, so a freshly started ledger self-checks green.

``show`` prints the trajectory of one metric (or the entry summaries).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.ledger import (  # noqa: E402
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    PerfLedger,
    make_entry,
)

_REPO_ROOT = Path(__file__).resolve().parent.parent
_DEFAULT_RESULTS = _REPO_ROOT / "benchmarks" / "results"
_DEFAULT_LEDGER = _DEFAULT_RESULTS / "LEDGER.jsonl"


def _cmd_append(args: argparse.Namespace) -> int:
    entry = make_entry(
        args.results_dir, note=args.note, repo_root=_REPO_ROOT
    )
    if not entry["metrics"]:
        print(
            f"no BENCH_*.json headline metrics found under "
            f"{args.results_dir}; run the benchmarks first",
            file=sys.stderr,
        )
        return 1
    PerfLedger(args.ledger).append(entry)
    print(
        f"appended {len(entry['metrics'])} metric(s) to {args.ledger} "
        f"(machine {entry['machine']['id']}, "
        f"rev {(entry['git_rev'] or 'unknown')[:12]})"
    )
    for name in sorted(entry["metrics"]):
        print(f"  {name:<32} {entry['metrics'][name]}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    ledger = PerfLedger(args.ledger)
    if not ledger.entries():
        print(f"ledger {args.ledger} is empty; nothing to check")
        return 0
    findings = ledger.check(
        window=args.window, threshold=args.threshold
    )
    print(PerfLedger.render(findings))
    return 1 if any(f.regressed for f in findings) else 0


def _cmd_show(args: argparse.Namespace) -> int:
    entries = PerfLedger(args.ledger).entries()
    if not entries:
        print(f"ledger {args.ledger} is empty")
        return 0
    if args.metric:
        for entry in entries:
            value = (entry.get("metrics") or {}).get(args.metric)
            if value is None:
                continue
            print(
                f"{entry.get('recorded_at', '?'):<26} "
                f"{(entry.get('git_rev') or 'unknown')[:12]:<12} "
                f"{value}"
            )
        return 0
    for entry in entries:
        metrics = entry.get("metrics") or {}
        print(
            f"{entry.get('recorded_at', '?'):<26} "
            f"{(entry.get('git_rev') or 'unknown')[:12]:<12} "
            f"machine {(entry.get('machine') or {}).get('id', '?')} "
            f"{len(metrics)} metric(s)"
            + (f"  # {entry['note']}" if entry.get("note") else "")
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark perf ledger: append, check, show."
    )
    parser.add_argument(
        "--ledger", type=Path, default=_DEFAULT_LEDGER,
        help=f"ledger JSONL path (default: {_DEFAULT_LEDGER})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser(
        "append", help="harvest BENCH_*.json headlines into one entry"
    )
    p_append.add_argument(
        "--results-dir", type=Path, default=_DEFAULT_RESULTS,
        help=f"benchmark results directory (default: {_DEFAULT_RESULTS})",
    )
    p_append.add_argument(
        "--note", default="", help="free-form annotation for the entry"
    )
    p_append.set_defaults(fn=_cmd_append)

    p_check = sub.add_parser(
        "check", help="gate the newest entry against its trailing window"
    )
    p_check.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"trailing entries to compare against (default: "
        f"{DEFAULT_WINDOW})",
    )
    p_check.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"relative regression budget before noise widening "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    p_check.set_defaults(fn=_cmd_check)

    p_show = sub.add_parser("show", help="print the ledger trajectory")
    p_show.add_argument(
        "--metric", default=None,
        help="print one metric's trajectory instead of entry summaries",
    )
    p_show.set_defaults(fn=_cmd_show)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
