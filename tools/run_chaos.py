#!/usr/bin/env python
"""Smoke-run one seeded chaos campaign end-to-end and print the report.

Builds the figure-8 testbed with a viable backup path, generates a
seeded campaign (link flapping + a correlated outage + a monitor
blackout) and drives it through the full middleware
(:func:`repro.harness.chaos.run_chaos_campaign`).

Run:  PYTHONPATH=src python tools/run_chaos.py [--seed N]

``--trace-out`` / ``--metrics-out`` export the run's observability
artifacts (JSONL trace, metrics snapshots) for ``tools/trace_report.py``.

Exit status is non-zero if the campaign was not detected or the overlay
never recovered — so this doubles as a CI smoke check.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.harness.chaos import standard_chaos_run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--duration", type=float, default=80.0,
        help="campaign window in seconds (session time)",
    )
    parser.add_argument(
        "--trace-out", type=Path, default=None,
        help="export the run's trace as JSONL (for tools/trace_report.py)",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="export the run's metrics snapshots here",
    )
    parser.add_argument(
        "--metrics-format", choices=("auto", "json", "prometheus"),
        default="auto",
        help=(
            "metrics export format; auto picks prometheus exposition "
            "text for a .prom extension, JSON otherwise (default: auto)"
        ),
    )
    args = parser.parse_args(argv)

    report = standard_chaos_run(seed=args.seed, duration=args.duration)
    print(
        f"campaign {report.campaign}: detect "
        f"{report.time_to_detect}, recover {report.time_to_recover}"
    )
    if args.trace_out is not None:
        n = report.obs.trace.export_jsonl(args.trace_out)
        print(f"wrote {n} trace events to {args.trace_out}")
    if args.metrics_out is not None:
        from repro.obs.prom import export_metrics

        fmt = export_metrics(
            report.obs.metrics, args.metrics_out, fmt=args.metrics_format
        )
        print(f"wrote metrics snapshots to {args.metrics_out} ({fmt})")
    print(report.summary())
    print("health transitions:")
    for transition in report.transitions:
        print(f"  {transition}")
    if not report.detected:
        print("FAIL: campaign was never detected", file=sys.stderr)
        return 1
    if not report.recovered:
        print("FAIL: overlay never recovered", file=sys.stderr)
        return 1
    print("OK: detected and recovered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
