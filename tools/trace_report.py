#!/usr/bin/env python
"""Answer "why did stream X miss its guarantee in window k" from a trace.

Loads a JSONL trace exported by :class:`repro.obs.TraceBus` (plus an
optional metrics-snapshot JSON) and correlates scheduler, health, and
transport events into ordered causal chains: for each per-window
guarantee shortfall it reports the health transition that quarantined a
path, the quarantine application, the remap that re-routed the mapping,
and the shortfall itself, in time order.  When the trace carries
admission upcalls (e.g. from a workload churn run) it also splits the
rejections into health-correlated vs. load-driven, naming the health
transition that preceded each.

Run::

    PYTHONPATH=src python tools/trace_report.py trace.jsonl
    PYTHONPATH=src python tools/trace_report.py trace.jsonl \\
        --stream gridftp --window 12 --metrics metrics.json

Without ``--stream``/``--window`` it explains the first shortfall of
every stream.  Exit status is 1 when a requested shortfall cannot be
found, so scripted runs fail loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.events import Category  # noqa: E402
from repro.obs.introspect import (  # noqa: E402
    detection_latency_from_trace,
    explain_shortfall,
    guarantee_violations,
    recovery_latency_from_trace,
    render_chain,
    summarize,
    summarize_dict,
)
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.obs.trace import TraceBus  # noqa: E402


def _campaign_stats(events) -> Optional[dict]:
    """Trace-derived robustness figures, when the trace has a campaign."""
    starts = [
        e
        for e in events
        if e.category == Category.HARNESS and e.name == "campaign_start"
    ]
    if not starts:
        return None
    start = starts[0]
    paths = sorted(
        {e.path for e in events if e.path is not None}
    )
    return {
        "campaign": start.fields.get("campaign"),
        "first_onset": start.fields["first_onset"],
        "last_end": start.fields["last_end"],
        "time_to_detect": detection_latency_from_trace(
            events, paths, start.fields["first_onset"]
        ),
        "time_to_recover": recovery_latency_from_trace(
            events, paths, start.fields["last_end"]
        ),
    }


def _campaign_overview(events) -> list[str]:
    stats = _campaign_stats(events)
    if stats is None:
        return []

    def fmt(v):
        return f"{v:.2f}s" if v is not None else "never"

    return [
        f"campaign {stats['campaign']!r}: "
        f"onset {stats['first_onset']:.1f}s, "
        f"end {stats['last_end']:.1f}s",
        f"  time to detect (from trace) : {fmt(stats['time_to_detect'])}",
        f"  time to recover (from trace): {fmt(stats['time_to_recover'])}",
    ]


def _admission_stats(events, lookback: float = 30.0) -> Optional[dict]:
    """Correlate admission rejections with preceding health transitions.

    An ``admission_upcall`` fired while a path was degraded/failed (or
    shortly after a transition) means capacity loss — not offered load —
    drove the rejection.  For each upcall this finds the most recent
    health transition within ``lookback`` seconds, and splits the total
    into health-correlated vs. pure-load rejections.
    """
    upcalls = [
        e
        for e in events
        if e.category == Category.SERVICE and e.name == "admission_upcall"
    ]
    if not upcalls:
        return None
    transitions = [
        e
        for e in events
        if e.category == Category.HEALTH and e.name == "transition"
    ]
    correlated: list[dict] = []
    for upcall in upcalls:
        cause = None
        for tr in transitions:
            if tr.sim_time > upcall.sim_time:
                break
            if upcall.sim_time - tr.sim_time <= lookback:
                cause = tr
        if cause is not None and cause.fields.get("new") != "healthy":
            correlated.append(
                {
                    "t": upcall.sim_time,
                    "stream": upcall.fields.get("stream"),
                    "after_s": upcall.sim_time - cause.sim_time,
                    "path": cause.path,
                    "old": cause.fields.get("old"),
                    "new": cause.fields.get("new"),
                    "reason": cause.fields.get("reason"),
                }
            )
    return {
        "upcalls": len(upcalls),
        "health_correlated": len(correlated),
        "load_driven": len(upcalls) - len(correlated),
        "lookback": lookback,
        "correlated": correlated,
    }


def _admission_overview(events, lookback: float = 30.0) -> list[str]:
    stats = _admission_stats(events, lookback=lookback)
    if stats is None:
        return []
    lines = [f"admission rejections ({stats['upcalls']} upcalls):"]
    lines.append(
        f"  health-correlated: {stats['health_correlated']}  "
        f"load-driven: {stats['load_driven']}  "
        f"(lookback {lookback:.0f}s)"
    )
    details = [
        f"  t={c['t']:7.2f}s {c['stream']!r} rejected "
        f"{c['after_s']:.1f}s after path {c['path']} went "
        f"{c['old']} -> {c['new']} ({c['reason']})"
        for c in stats["correlated"][:5]
    ]
    lines.extend(details)
    if stats["health_correlated"] > len(details):
        lines.append(
            f"  ... and {stats['health_correlated'] - len(details)} more"
        )
    return lines


def _metrics_overview(path: Path) -> list[str]:
    data = MetricsRegistry.load_json(path)
    current = data.get("current", {})
    lines = [f"metrics snapshot ({len(current)} instruments):"]
    for name in sorted(current):
        snap = current[name]
        if snap.get("type") == "histogram":
            mean = (
                snap["sum"] / snap["count"] if snap.get("count") else None
            )
            mean_s = f"{mean:.4f}" if mean is not None else "n/a"
            lines.append(
                f"  {name:<34s} n={snap.get('count', 0)} mean={mean_s}"
            )
        else:
            lines.append(f"  {name:<34s} {snap.get('value')}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Reconstruct causal chains from an IQ-Paths trace."
    )
    parser.add_argument("trace", type=Path, help="JSONL trace file")
    parser.add_argument(
        "--metrics", type=Path, default=None,
        help="metrics-snapshot JSON exported alongside the trace",
    )
    parser.add_argument(
        "--stream", default=None,
        help="explain shortfalls of this stream only (name)",
    )
    parser.add_argument(
        "--window", type=int, default=None,
        help="explain the shortfall in this window (requires --stream)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="explain every shortfall instead of the first per stream",
    )
    parser.add_argument(
        "--lookback", type=float, default=None,
        help="only consider causes within this many seconds of a shortfall",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format: human text (default) or one JSON document",
    )
    parser.add_argument(
        "--profile", type=Path, default=None,
        help="profile JSON exported by the run (--profile-out); "
        "included in the report",
    )
    args = parser.parse_args(argv)

    events = TraceBus.load_jsonl(args.trace)

    violations = guarantee_violations(events, stream=args.stream)
    if args.window is not None:
        if args.stream is None:
            parser.error("--window requires --stream")
        violations = [
            e for e in violations if e.fields.get("window") == args.window
        ]
        if not violations:
            print(
                f"no shortfall of stream {args.stream!r} in window "
                f"{args.window}",
                file=sys.stderr,
            )
            return 1
    if violations and not args.all and args.window is None:
        # First shortfall per stream: the onset of each violation episode.
        first: dict[object, object] = {}
        for e in violations:
            first.setdefault(e.stream_id or e.fields.get("stream"), e)
        violations = list(first.values())

    lookback = args.lookback if args.lookback else 30.0
    profile = (
        json.loads(args.profile.read_text(encoding="utf-8"))
        if args.profile is not None
        else None
    )

    if args.format == "json":
        report = {
            "summary": summarize_dict(events),
            "campaign": _campaign_stats(events),
            "admission": _admission_stats(events, lookback=lookback),
            "metrics": (
                MetricsRegistry.load_json(args.metrics).get("current")
                if args.metrics is not None
                else None
            ),
            "shortfalls": [
                {
                    "stream": shortfall.fields.get("stream"),
                    "stream_id": shortfall.stream_id,
                    "window": shortfall.fields.get("window"),
                    "t": shortfall.sim_time,
                    "chain": [
                        json.loads(e.to_json())
                        for e in explain_shortfall(
                            events, shortfall, lookback=args.lookback
                        )
                    ],
                }
                for shortfall in violations
            ],
            "profile": profile,
        }
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    print(summarize(events))
    for line in _campaign_overview(events):
        print(line)
    for line in _admission_overview(events, lookback=lookback):
        print(line)
    if args.metrics is not None:
        for line in _metrics_overview(args.metrics):
            print(line)
    if profile is not None:
        from repro.obs.prof import ProfileReport

        print()
        print(ProfileReport.from_dict(profile).render())

    if not violations:
        target = f" for stream {args.stream!r}" if args.stream else ""
        print(f"no guarantee shortfalls in this trace{target}")
        return 0

    print(f"\nexplaining {len(violations)} shortfall(s):")
    for shortfall in violations:
        print(
            f"\nstream {shortfall.fields.get('stream')!r} "
            f"(id {shortfall.stream_id}) window "
            f"{shortfall.fields.get('window')} "
            f"at t={shortfall.sim_time:.2f}s:"
        )
        chain = explain_shortfall(events, shortfall, lookback=args.lookback)
        print(render_chain(chain))
    return 0


if __name__ == "__main__":
    sys.exit(main())
