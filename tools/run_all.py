#!/usr/bin/env python
"""Regenerate the entire EXPERIMENTS.md evaluation in one command.

A thin wrapper over ``python -m repro.runner`` with the full-evaluation
defaults baked in: every figure at canonical seeds, the chaos campaign,
and the scale suite (every workload scenario plus the baseline capacity
envelope), results cached under ``.repro-cache``, reports written to
``reports/``.  A warm rerun with unchanged code is pure cache hits.

Run:  PYTHONPATH=src python tools/run_all.py [--workers N] [...]

Any extra arguments are forwarded to the runner CLI verbatim, so e.g.
``tools/run_all.py --fast --workers 4`` works as expected.
"""

from __future__ import annotations

import sys

from repro.runner.cli import main

if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--with-chaos" not in argv:
        argv = ["--with-chaos", *argv]
    if "--with-scale" not in argv:
        argv = ["--with-scale", *argv]
    sys.exit(main(argv))
