#!/usr/bin/env python
"""Kill-injection crash test: SIGKILL workers, resume, compare bytes.

Drives :func:`repro.harness.crash.run_crash_test`: computes the
uninterrupted golden workload report, then runs the identical
simulation through the supervised executor with seeded SIGKILL points
armed, letting the supervisor restart the worker from its last
verified checkpoint after every kill.  Exits nonzero unless every
survivor report is byte-identical to its golden.

By default the test runs twice — serial (``--workers 1``) and parallel
(``--workers 2``) executors must both reproduce the golden bytes::

    PYTHONPATH=src python tools/run_crashtest.py
    python tools/run_crashtest.py --scenario flash-crowd-chaos --kills 5
    python tools/run_crashtest.py --workers 4 --manifest crash.jsonl

Pass ``--workers N`` to pin a single executor width instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.harness.crash import run_crash_test  # noqa: E402
from repro.workload.scenarios import SCENARIOS  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/run_crashtest.py",
        description=(
            "SIGKILL workload workers at seeded points, resume them "
            "from checkpoints, and assert byte-identical reports."
        ),
    )
    parser.add_argument(
        "--scenario", default="baseline", choices=sorted(SCENARIOS),
        help="workload scenario to crash-test (default: baseline)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the run and its kill points (default: 0)",
    )
    parser.add_argument(
        "--kills", type=int, default=3,
        help="seeded SIGKILL points per run (default: 3)",
    )
    parser.add_argument(
        "--duration", type=float, default=20.0,
        help="virtual seconds per run (default: 20)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=150,
        help="session-plan truncation (default: 150; 0 = unlimited)",
    )
    parser.add_argument(
        "--rate-scale", type=float, default=1.0,
        help="arrival-rate multiplier (default: 1.0)",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=2.0,
        help="virtual seconds between snapshots (default: 2)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "pin one executor width; default runs serial (1) and "
            "parallel (2) back to back"
        ),
    )
    parser.add_argument(
        "--manifest", type=Path, default=None, metavar="PATH",
        help="stream the survivor runs' JSONL manifest(s) to PATH",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None, metavar="PATH",
        help="write the full crash-test summaries (JSON) here",
    )
    return parser


def _render(summary: dict) -> str:
    verdict = "IDENTICAL" if summary["identical"] else "MISMATCH"
    lines = [
        f"crash test [{verdict}] scenario={summary['scenario']!r} "
        f"seed={summary['seed']} workers={summary['workers']}",
        f"  kill points: "
        f"{', '.join(f'{t:.3f}s' for t in summary['kill_points'])}",
        f"  survivor: status={summary['status']} "
        f"attempts={summary['attempts']}",
        f"  golden   checksum {summary['golden_checksum']}",
        f"  survivor checksum {summary['survivor_checksum']}",
    ]
    if summary["error"]:
        lines.append(f"  error: {summary['error']}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    widths = [args.workers] if args.workers is not None else [1, 2]
    max_sessions = args.max_sessions if args.max_sessions > 0 else None

    summaries = []
    for workers in widths:
        manifest = None
        if args.manifest is not None:
            manifest = (
                args.manifest
                if len(widths) == 1
                else args.manifest.with_suffix(
                    f".w{workers}{args.manifest.suffix}"
                )
            )
        summary = run_crash_test(
            scenario=args.scenario,
            seed=args.seed,
            kills=args.kills,
            duration=args.duration,
            max_sessions=max_sessions,
            checkpoint_every=args.checkpoint_every,
            workers=workers,
            rate_scale=args.rate_scale,
            manifest_path=manifest,
        )
        summaries.append(summary)
        print(_render(summary))

    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(summaries, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.json_out}")

    if all(s["identical"] for s in summaries):
        print(f"PASS: {len(summaries)} crash-test run(s) byte-identical")
        return 0
    print("FAIL: survivor diverged from golden", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
