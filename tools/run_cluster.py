#!/usr/bin/env python
"""Run a sharded master/worker cluster job (or its capacity envelope).

A thin wrapper over ``python -m repro.cluster`` runnable straight from
a checkout::

    PYTHONPATH=src python tools/run_cluster.py --scenario baseline --shards 2
    python tools/run_cluster.py --scenario baseline --shards 4 --check-identity
    python tools/run_cluster.py --scenario baseline --shards 2 \\
        --checkpoint-dir /tmp/ckpt --kill-shard-at 0:1

Prints the merged cluster report (byte-identical to the in-process
partitioned baseline for any shard count — ``--check-identity`` proves
it inline) plus per-run telemetry.  All arguments are shared with the
module CLI; see ``--help``.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a checkout without PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.cluster.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
